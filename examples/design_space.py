#!/usr/bin/env python3
"""Hardware design-space exploration with the simulator.

The paper argues for *co-designing* hardware and offload routines.
With a parameterized simulator we can ask the follow-up questions a
hardware architect would:

- how does the baseline's optimum cluster count move as the dispatch
  path gets slower or faster? (the co-design pressure)
- how much shared memory bandwidth does the DAXPY offload actually
  need before compute becomes the bottleneck?
- what does each extension contribute on its own? (A1 ablation)

Run with::

    python examples/design_space.py
"""

from repro import ManticoreSystem, SoCConfig, offload_daxpy
from repro.analysis.tables import Table
from repro.experiments import ablation_dispatch, ablation_features


def bandwidth_exploration() -> None:
    """Runtime vs shared-channel width at full fabric width."""
    table = Table(["read channel [B/cycle]", "runtime [cycles]",
                   "read-channel busy [cycles]"],
                  title="DAXPY n=4096, M=32: shared-bandwidth sensitivity")
    for width in (16, 32, 64, 128, 256):
        config = SoCConfig.extended(mem_read_width_bytes=width,
                                    mem_write_width_bytes=width)
        system = ManticoreSystem(config)
        result = offload_daxpy(system, n=4096, num_clusters=32)
        table.add_row([width, result.runtime_cycles,
                       system.read_channel.busy_cycles])
    print(table.render())
    print("doubling bandwidth past 64 B/cycle stops paying once the "
          "constant overhead and compute dominate.\n")


def dispatch_exploration() -> None:
    """Where the baseline's sweet spot sits vs dispatch cost (A2)."""
    ablation = ablation_dispatch(n=1024, occupancies=(2, 4, 8, 16, 32))
    print(ablation.render())
    print("slower dispatch pushes the baseline's optimum toward fewer "
          "clusters — exactly the co-design pressure the paper's "
          "multicast extension removes.\n")


def feature_contributions() -> None:
    """What each extension buys on its own (A1)."""
    ablation = ablation_features(n=1024, m_values=(4, 16, 32))
    print(ablation.render())
    runtimes = ablation.runtimes
    saved_mcast = runtimes["baseline"][32] - runtimes["multicast_only"][32]
    saved_sync = runtimes["baseline"][32] - runtimes["hw_sync_only"][32]
    print(f"at M=32, multicast alone saves {saved_mcast} cycles and the "
          f"sync unit alone saves {saved_sync}; the dispatch path is the "
          "dominant overhead at scale.\n")


def main() -> None:
    bandwidth_exploration()
    dispatch_exploration()
    feature_contributions()


if __name__ == "__main__":
    main()
