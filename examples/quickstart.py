#!/usr/bin/env python3
"""Quickstart: offload one DAXPY job and inspect where the cycles go.

This is the paper's core scenario in ~30 lines: build a Manticore-class
MPSoC with the multicast + sync-unit extensions, offload ``y = a*x + y``
to 8 of its 32 clusters, check the result against NumPy, and print the
phase breakdown of the measured runtime.

Run with::

    python examples/quickstart.py
"""

import numpy

from repro import ManticoreSystem, SoCConfig, offload_daxpy


def main() -> None:
    # A 32-cluster fabric with the paper's extensions (multicast
    # dispatch + credit-counter completion interrupt).
    system = ManticoreSystem(SoCConfig.extended())

    n = 1024
    rng = numpy.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)

    result = offload_daxpy(system, n=n, num_clusters=8, a=2.0,
                           inputs={"x": x, "y": y})

    print(result)  # kernel, shape, variant, measured cycles
    print(f"functionally verified: {result.verified}")
    numpy.testing.assert_allclose(result.outputs["y"], 2.0 * x + y)

    print("\nwhere the cycles went:")
    for phase, cycles in result.trace.phase_summary().items():
        print(f"  {phase:16s} {cycles:6d} cycles")

    # The same job on the unextended baseline design, for contrast.
    baseline = ManticoreSystem(SoCConfig.baseline())
    base_result = offload_daxpy(baseline, n=n, num_clusters=8, a=2.0,
                                inputs={"x": x, "y": y})
    speedup = base_result.runtime_cycles / result.runtime_cycles
    print(f"\nbaseline design: {base_result.runtime_cycles} cycles "
          f"-> extensions give {100 * (speedup - 1):.1f} % speedup")


if __name__ == "__main__":
    main()
