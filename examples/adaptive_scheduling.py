#!/usr/bin/env python3
"""Model-driven job placement on a fine-grained workload stream.

The paper closes by showing its runtime model "can be used to derive
optimal offloading parameters".  This example takes that to workload
scale — the setting the introduction motivates, where an application
issues a stream of small, mixed data-parallel jobs:

1. characterize the platform once: fit the Eq.-1 offload model and a
   host-execution model per kernel, from measurements;
2. for every incoming job, decide host vs accelerator (and the offload
   width) from the models;
3. compare against the static policies a model-less system would use.

Run with::

    python examples/adaptive_scheduling.py
"""

import collections

from repro import ManticoreSystem, SoCConfig
from repro.energy import EnergyMeter
from repro.workload import (
    AlwaysHost,
    AlwaysOffload,
    characterize_platform,
    generate_workload,
    run_workload,
)


def main() -> None:
    config = SoCConfig.extended()
    kernels = ("daxpy", "memcpy", "scale", "dot")

    print("characterizing the platform (one-time, offline)...")
    adaptive = characterize_platform(config, kernels)
    for kernel, model in adaptive.offload_models.items():
        print(f"  {kernel:7s} {model.describe()}")

    jobs = generate_workload(num_jobs=60, kernels=kernels, min_n=16,
                             max_n=4096, seed=11)
    sizes = sorted(job.n for job in jobs)
    print(f"\nworkload: {len(jobs)} jobs, sizes {sizes[0]}..{sizes[-1]} "
          f"(median {sizes[len(sizes) // 2]})")

    print(f"\n{'policy':20s} {'makespan':>10} {'offloaded':>10} "
          f"{'energy [uJ]':>12}")
    for policy in (AlwaysHost(), AlwaysOffload(32), adaptive):
        system = ManticoreSystem(config)
        meter = EnergyMeter(system)
        meter.start()
        result = run_workload(system, jobs, policy)
        energy = meter.stop()
        print(f"{policy.name:20s} {result.makespan_cycles:10d} "
              f"{result.offloaded_jobs:10d} {energy.total / 1e6:12.2f}")

    # Where did the adaptive policy draw the line?
    system = ManticoreSystem(config)
    result = run_workload(system, jobs, adaptive)
    boundary = collections.defaultdict(list)
    for outcome in result.outcomes:
        key = "offload" if outcome.placement.offload else "host"
        boundary[key].append(outcome.spec.n)
    print(f"\nadaptive placement boundary: host jobs up to "
          f"n={max(boundary['host'])}, offloads from "
          f"n={min(boundary['offload'])} — the offload-overhead floor "
          "in action")


if __name__ == "__main__":
    main()
