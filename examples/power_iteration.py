#!/usr/bin/env python3
"""A multi-kernel application: power iteration on the accelerator.

The paper's introduction motivates *fine-grained* heterogeneous
execution: real applications interleave many small data-parallel jobs,
and per-job offload overhead decides whether acceleration pays off at
all.  This example runs the classic power-iteration eigensolver as a
sequence of offloaded jobs on one system —

    repeat:  w = A @ v        (gemv)
             partials = w . w (dot, two-level reduction)
             v = (1/||w||) w  (scale)

— checks convergence against NumPy, and reports how the offload
overhead splits across the iteration's three kernels, plus what the
host-vs-accelerator decision model says about each of them.

Run with::

    python examples/power_iteration.py
"""

import numpy

from repro import ManticoreSystem, SoCConfig, offload
from repro.core.decision import HostExecutionModel, decide_offload
from repro.core.model import OffloadModel
from repro.core.sweep import sweep


def power_iteration(system, matrix, iterations=15, num_clusters=8):
    """Run power iteration entirely through offloaded kernels."""
    n = matrix.shape[0]
    v = numpy.ones(n) / numpy.sqrt(n)
    cycles = {"gemv": 0, "dot": 0, "scale": 0}
    for _step in range(iterations):
        gemv = offload(system, "gemv", n, num_clusters,
                       inputs={"A": matrix.ravel(), "x": v})
        w = gemv.outputs["y"]
        dot = offload(system, "dot", n, num_clusters,
                      inputs={"x": w, "y": w})
        norm = numpy.sqrt(dot.outputs["partials"].sum())
        scale = offload(system, "scale", n, num_clusters,
                        scalars={"a": 1.0 / norm}, inputs={"x": w})
        v = scale.outputs["y"]
        cycles["gemv"] += gemv.runtime_cycles
        cycles["dot"] += dot.runtime_cycles
        cycles["scale"] += scale.runtime_cycles
    return v, norm, cycles


def main() -> None:
    n = 96
    rng = numpy.random.default_rng(42)
    # A symmetric matrix with a well-separated dominant eigenvalue.
    basis = rng.normal(size=(n, n))
    matrix = basis @ basis.T + n * numpy.eye(n)

    system = ManticoreSystem(SoCConfig.extended())
    v, eigenvalue, cycles = power_iteration(system, matrix)

    reference = numpy.linalg.eigvalsh(matrix).max()
    error = abs(eigenvalue - reference) / reference
    print(f"dominant eigenvalue: {eigenvalue:.4f} "
          f"(numpy: {reference:.4f}, rel. error {error:.2e})")

    total = sum(cycles.values())
    print(f"\naccelerator cycles over 15 iterations: {total}")
    for kernel, spent in cycles.items():
        print(f"  {kernel:6s} {spent:8d} cycles ({100 * spent / total:4.1f} %)")

    # Would the model have offloaded the vector kernels at all?
    # (GEMV's cost scales with N^2, outside Eq. 1's linear family — the
    # fit would rightly refuse it — so it is compared by measurement.)
    print("\nhost-vs-accelerator decision per kernel at this size:")
    for kernel, host_cpe in (("dot", 4.0), ("scale", 3.0)):
        grid = sweep(SoCConfig.extended(), kernel,
                     n_values=(256, 512, 1024), m_values=(1, 2, 4, 8, 16))
        model = OffloadModel.fit(grid.triples(), label=kernel)
        decision = decide_offload(
            model, HostExecutionModel(cycles_per_element=host_cpe), n=n,
            max_clusters=32)
        choice = (f"offload to {decision.num_clusters} clusters"
                  if decision.offload else "run on the host")
        print(f"  {kernel:6s} -> {choice:24s} "
              f"(predicted {decision.predicted_cycles:7.0f} vs host "
              f"{decision.host_cycles:7.0f} cycles)")
    gemv_host = HostExecutionModel(cycles_per_element=3.0 * n).predict(n)
    gemv_measured = offload(ManticoreSystem(SoCConfig.extended()), "gemv",
                            n, 8, verify=False).runtime_cycles
    choice = ("offload to 8 clusters" if gemv_measured < gemv_host
              else "run on the host")
    print(f"  gemv   -> {choice:24s} (measured  {gemv_measured:7.0f} vs "
          f"host {gemv_host:7.0f} cycles)")


if __name__ == "__main__":
    main()
