#!/usr/bin/env python3
"""Offload sizing for a latency-critical control loop (the Eq. 3 use case).

Scenario: a controller must apply a 1024-element DAXPY update inside a
fixed cycle budget, and wants to reserve as few accelerator clusters as
possible for it (the rest of the fabric serves other tenants).  This is
exactly the paper's offload decision problem:

1. characterize the platform once — measure an (N, M) sweep and fit the
   runtime model (Eq. 1);
2. invert the model under the deadline (Eq. 3) with a guard band equal
   to the model's validated error (<1 %, Eq. 2);
3. verify the decision by running the chosen configuration.

Run with::

    python examples/deadline_tuning.py
"""

from repro import ManticoreSystem, SoCConfig, min_clusters_for_deadline, offload_daxpy
from repro.analysis.fitting import fit_report
from repro.core.model import OffloadModel
from repro.core.sweep import sweep
from repro.errors import DecisionError


def main() -> None:
    config = SoCConfig.extended()

    # --- 1. Platform characterization (done once, offline) -------------
    print("characterizing the platform (24-point sweep)...")
    measurements = sweep(config, "daxpy", n_values=(256, 512, 768, 1024),
                         m_values=(1, 2, 4, 8, 16, 32))
    model = OffloadModel.fit(measurements.triples(), label="platform model")
    report = fit_report(model, measurements.triples())
    print(report.summary())

    # --- 2 + 3. Decide and verify for a range of deadlines --------------
    n = 1024
    print(f"\nsizing the offload for a {n}-element update:")
    print(f"{'deadline':>10} {'M_min':>6} {'predicted':>10} "
          f"{'measured':>9} {'ok':>3}")
    for deadline in (1100.0, 900.0, 800.0, 750.0, 700.0, 660.0, 640.0):
        guarded = deadline * 0.99  # Eq. 2's error bound as a guard band
        try:
            m_min = min_clusters_for_deadline(model, n, guarded,
                                              max_clusters=32)
        except DecisionError as error:
            print(f"{deadline:10.0f} {'--':>6} {'--':>10} {'--':>9}  "
                  f"infeasible ({error})")
            continue
        measured = offload_daxpy(ManticoreSystem(config), n=n,
                                 num_clusters=m_min).runtime_cycles
        ok = "yes" if measured <= deadline else "NO"
        print(f"{deadline:10.0f} {m_min:6d} "
              f"{model.predict(m_min, n):10.1f} {measured:9d} {ok:>3}")

    floor = model.serial_cycles(n)
    print(f"\nserial floor at N={n}: {floor:.0f} cycles — no cluster "
          "count can beat it (Amdahl).")


if __name__ == "__main__":
    main()
