"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at API boundaries while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The simulation ran out of events while processes were still waiting."""


class CycleLimitError(SimulationError):
    """A bounded run would have advanced past its cycle budget."""


class QuiescenceError(SimulationError):
    """A system failed its boot-state audit (reset/reuse of a dirty SoC).

    Carries the offending :class:`repro.sim.diag.QuiescenceReport` on the
    ``report`` attribute when raised by the audit machinery.
    """


class ProtocolError(ReproError):
    """A runtime protocol violation observed at a device (MMIO misuse).

    Distinct from :class:`ConfigError`, which covers construction-time
    validation: a ``ProtocolError`` means simulated software drove a
    peripheral outside its contract *during* a run — e.g. writing an
    invalid threshold to the sync unit, storing to a read-only register,
    or (in strict mode) ringing a doorbell nobody is listening to.
    """


class TraceError(ReproError):
    """Trace post-processing could not attribute markers to an offload."""


class MemoryError_(ReproError):
    """A memory access fell outside a mapped region or was malformed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`, which has a different meaning (allocator
    exhaustion) and must remain reachable.
    """


class ConfigError(ReproError):
    """An SoC or runtime configuration failed validation."""


class OffloadError(ReproError):
    """An offload request was malformed or could not be serviced."""


class WorkloadError(OffloadError):
    """A job failed mid-stream while executing a workload.

    Subclasses :class:`OffloadError` so existing stream-level handlers
    keep working; adds the failing job's context on the ``job``,
    ``job_index`` and ``placement`` attributes, and chains the
    simulation post-mortem on ``report`` when one was available.
    """


class TrafficError(ReproError):
    """A traffic-engine request was malformed or could not be serviced
    (invalid arrival process, over-capacity reservation, or a job
    whose kernel the platform was never characterized for)."""


class ModelError(ReproError):
    """A runtime-model operation failed (fit, prediction, or inversion)."""


class DecisionError(ModelError):
    """No feasible offload configuration satisfies the given constraints."""


class KernelError(ReproError):
    """A device kernel was invoked with invalid arguments."""


class ExperimentError(ReproError):
    """An experiment's measured result fell outside its accepted band."""
