"""Command-line interface: regenerate any paper experiment.

Usage::

    repro list                  # what can be run
    repro fig1-left             # Fig. 1 (left)
    repro fig1-right            # Fig. 1 (right)
    repro fit                   # Eq. 1 model fit
    repro mape                  # Eq. 2 validation
    repro decision              # Eq. 3 deadline scenarios
    repro fabric                # E12 heterogeneous fabric selection
    repro traffic               # E13 admission under timestamped traffic
    repro ablation-features     # A1
    repro ablation-dispatch     # A2
    repro kernels               # A3
    repro ablation-poll         # A4
    repro all                   # everything above, in order
    repro offload --kernel daxpy --n 1024 --clusters 8   # one job

Every experiment accepts ``--clusters`` to size the fabric and
``--jobs/-j`` to fan its measurement sweeps out over worker processes
(``-j 0`` = one per core; results are bit-identical to serial).  The
``sweep`` command additionally caches measured points on disk
(``--no-cache`` disables; ``REPRO_CACHE_DIR`` relocates).  Numbers are
cycle counts at the paper's 1 GHz (1 cycle = 1 ns).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import typing

from repro import experiments
from repro.core.offload import offload
from repro.errors import ReproError
from repro.kernels.registry import kernel_names
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem

_EXPERIMENTS: typing.Dict[str, typing.Tuple[str, typing.Callable]] = {
    "fig1-left": ("Fig. 1 (left): DAXPY runtime vs cluster count",
                  experiments.fig1_left),
    "fig1-right": ("Fig. 1 (right): speedup grid over (N, M)",
                   experiments.fig1_right),
    "fit": ("Eq. 1: fitted runtime-model coefficients",
            experiments.fit_model),
    "mape": ("Eq. 2: per-N model error (MAPE)",
             experiments.mape_experiment),
    "decision": ("Eq. 3: minimum clusters under a deadline",
                 experiments.decision_experiment),
    "crossover": ("E7: smallest N where offloading beats the host",
                  experiments.crossover_experiment),
    "energy": ("E8: offload energy, baseline vs extended",
               experiments.energy_experiment),
    "fabric": ("E12: fabric selection — tile class and width under a "
               "deadline", experiments.fabric_experiment),
    "scheduler": ("E9: placement policies on a fine-grained job stream",
                  experiments.scheduler_experiment),
    "traffic": ("E13: admission policies under timestamped traffic",
                experiments.traffic_experiment),
    "concurrency": ("E10: space-shared concurrent jobs vs time sharing",
                    experiments.concurrency_experiment),
    "overlap": ("E11: host work overlapped with an offload",
                experiments.overlap_experiment),
    "ablation-features": ("A1: multicast vs sync-unit contributions",
                          experiments.ablation_features),
    "ablation-dispatch": ("A2: dispatch-cost sensitivity",
                          experiments.ablation_dispatch),
    "kernels": ("A3: model generality across kernels",
                experiments.kernel_generality),
    "ablation-poll": ("A4: poll-period sensitivity",
                      experiments.ablation_poll),
    "ablation-dbuf": ("A5: double-buffered vs phased device execution",
                      experiments.ablation_double_buffer),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Optimizing Offload Performance in "
                    "Heterogeneous MPSoCs' (DATE 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--jobs", "-j", type=int, default=1, metavar="N",
            help="worker processes for measurement sweeps "
                 "(default 1 = serial, 0 = all cores)")
        cmd.add_argument(
            "--stats", action="store_true",
            help="print sweep execution statistics (throughput, cache/"
                 "pool reuse, batch-plan hit rate) after the command")

    sub.add_parser("list", help="list available experiments")

    for name, (help_text, _fn) in _EXPERIMENTS.items():
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--clusters", type=int, default=32,
                         help="fabric size (default 32)")
        add_jobs_flag(cmd)
        if name == "traffic":
            cmd.add_argument("--num-jobs", type=int, default=160,
                             help="jobs per arrival scenario (default 160)")
            cmd.add_argument("--tenants", type=int, default=3,
                             help="tenants sharing the fabric (default 3)")
            cmd.add_argument("--slack", type=float, default=3.0,
                             help="deadline = slack x predicted host time "
                                  "(default 3.0)")
            cmd.add_argument("--seed", type=int, default=7,
                             help="scenario seed (default 7)")
            cmd.add_argument("--csv", metavar="PATH",
                             help="also write the metrics table to this "
                                  "file as CSV")

    run_all = sub.add_parser("all", help="run every experiment in order")
    run_all.add_argument("--clusters", type=int, default=32)
    add_jobs_flag(run_all)

    sweep_cmd = sub.add_parser(
        "sweep", help="measure an (N, M) grid and export it as CSV")
    sweep_cmd.add_argument("--kernel", default="daxpy",
                           choices=kernel_names())
    sweep_cmd.add_argument("--n", type=int, nargs="+",
                           default=[256, 512, 768, 1024],
                           help="problem sizes")
    sweep_cmd.add_argument("--m", type=int, nargs="+",
                           default=[1, 2, 4, 8, 16, 32],
                           help="cluster counts")
    sweep_cmd.add_argument("--clusters", type=int, default=32,
                           help="fabric size")
    sweep_cmd.add_argument("--variant", default="auto",
                           choices=["auto", "baseline", "multicast_only",
                                    "hw_sync_only", "extended"])
    sweep_cmd.add_argument("--csv", metavar="PATH",
                           help="write the grid to this file "
                                "(default: stdout)")
    add_jobs_flag(sweep_cmd)
    sweep_cmd.add_argument("--no-cache", action="store_true",
                           help="always re-simulate; do not read or "
                                "write the on-disk sweep cache")

    report_cmd = sub.add_parser(
        "report", help="run every experiment and write a markdown report")
    report_cmd.add_argument("--out", metavar="PATH", required=True)
    report_cmd.add_argument("--clusters", type=int, default=32)
    add_jobs_flag(report_cmd)

    one = sub.add_parser("offload", help="run and time a single offload")
    one.add_argument("--kernel", default="daxpy", choices=kernel_names())
    one.add_argument("--n", type=int, default=1024, help="problem size")
    one.add_argument("--clusters", type=int, default=8,
                     help="offload width M")
    one.add_argument("--fabric", type=int, default=32, help="fabric size")
    one.add_argument("--variant", default="auto",
                     choices=["auto", "baseline", "multicast_only",
                              "hw_sync_only", "extended"])
    one.add_argument("--exec-mode", default="phased",
                     choices=["phased", "double_buffered"],
                     help="device execution protocol")
    one.add_argument("--report", action="store_true",
                     help="print resource utilization after the offload")
    one.add_argument("--vcd", metavar="PATH",
                     help="write the trace as a VCD waveform file")
    return parser


def _run_experiment(name: str, clusters: int, out: typing.TextIO,
                    jobs: int = 1) -> None:
    _help, fn = _EXPERIMENTS[name]
    kwargs: typing.Dict[str, typing.Any] = {"num_clusters": clusters}
    # Experiments whose cost is sweep-shaped take a ``jobs`` fan-out
    # parameter; single-offload experiments (crossover, energy, ...)
    # have nothing to parallelize and no such parameter.
    if "jobs" in inspect.signature(fn).parameters:
        kwargs["jobs"] = jobs
    result = fn(**kwargs)
    out.write(result.render() + "\n")


def _run_sweep(args, out: typing.TextIO) -> None:
    from repro.analysis.export import sweep_to_csv
    from repro.core.cache import SweepCache, default_cache_dir
    from repro.core.executor import SweepExecutor

    config = SoCConfig.extended(num_clusters=args.clusters)
    if args.variant == "baseline":
        config = SoCConfig.baseline(num_clusters=args.clusters)
    cache = None if args.no_cache else SweepCache(default_cache_dir())
    executor = SweepExecutor(jobs=args.jobs, cache=cache)
    result = executor.run(config, args.kernel, args.n, args.m,
                          variant=args.variant)
    csv_text = sweep_to_csv(result)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(csv_text)
        out.write(f"{len(result)} points written to {args.csv}\n")
        if cache is not None:
            # Keep bare stdout pure CSV; stats only accompany --csv runs.
            measured = executor.simulated_points + executor.planned_points
            out.write(f"cache: {executor.cache_hits} hits, "
                      f"{measured} measured "
                      f"({cache.directory})\n")
    else:
        out.write(csv_text)


def _run_report(args, out: typing.TextIO) -> None:
    lines = [
        "# Reproduction report",
        "",
        "Generated by `repro report`; every section regenerated live on "
        "the simulator.  See EXPERIMENTS.md for the paper comparison.",
        "",
    ]
    for name, (help_text, fn) in _EXPERIMENTS.items():
        kwargs: typing.Dict[str, typing.Any] = {"num_clusters": args.clusters}
        if "jobs" in inspect.signature(fn).parameters:
            kwargs["jobs"] = args.jobs
        lines.append(f"## {name} — {help_text}")
        lines.append("")
        lines.append("```")
        lines.append(fn(**kwargs).render())
        lines.append("```")
        lines.append("")
    with open(args.out, "w") as handle:
        handle.write("\n".join(lines))
    out.write(f"report with {len(_EXPERIMENTS)} sections written to "
              f"{args.out}\n")


def _run_traffic(args, out: typing.TextIO) -> None:
    """E13 with its scenario knobs (and optional CSV artifact)."""
    result = experiments.traffic_experiment(
        num_jobs=args.num_jobs, tenants=args.tenants,
        num_clusters=args.clusters, seed=args.seed, slack=args.slack,
        jobs=args.jobs)
    out.write(result.render() + "\n")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(result.to_csv())
        out.write(f"\nmetrics written to {args.csv}\n")


def _run_offload(args, out: typing.TextIO) -> None:
    config = SoCConfig.extended(num_clusters=args.fabric)
    if args.variant == "baseline":
        config = SoCConfig.baseline(num_clusters=args.fabric)
    system = ManticoreSystem(config)
    result = offload(system, args.kernel, args.n, args.clusters,
                     variant=args.variant, exec_mode=args.exec_mode)
    out.write(f"{result}\n")
    for phase, cycles in result.trace.phase_summary().items():
        out.write(f"  {phase:16s} {cycles:8d} cycles\n")
    if args.report:
        from repro.analysis.utilization import utilization_report
        out.write("\n" + utilization_report(system) + "\n")
    if args.vcd:
        from repro.analysis.vcd import write_vcd
        write_vcd(system.trace, args.vcd)
        out.write(f"\ntrace written to {args.vcd}\n")


def _print_run_stats(out: typing.TextIO) -> None:
    """Aggregate and print the sweep summaries ``--stats`` collected.

    Figures cover the executors this process ran (the in-process serial
    path fully; a ``--jobs`` fan-out only reports the parent's share —
    worker pools live in their own processes).
    """
    from repro.core.executor import drain_run_stats

    runs = drain_run_stats()
    if not runs:
        out.write("\nsweep statistics: no sweeps executed\n")
        return
    # tile_group/tile_class are labels, not counters — aggregated in
    # the per-class breakdown below instead of the numeric totals.
    skip = ("points_per_second", "batch_plan_hit_rate", "tile_group",
            "tile_class")
    total = {key: sum(run[key] for run in runs)
             for key in runs[0] if key not in skip}
    rate = (total["points"] / total["elapsed_seconds"]
            if total["elapsed_seconds"] > 0 else float("inf"))
    predictable = total["planned_points"] + total["batch_fallback_points"]
    hit_rate = (100.0 * total["planned_points"] / predictable
                if predictable else 0.0)
    out.write(
        f"\nsweep statistics ({len(runs)} sweep"
        f"{'s' if len(runs) != 1 else ''}):\n"
        f"  points      {total['points']} in "
        f"{total['elapsed_seconds']:.2f}s ({rate:.1f} points/s)\n"
        f"  cache       {total['cache_hits']} hits, "
        f"{total['cache_misses']} misses\n"
        f"  batch plan  {total['planned_points']} planned, "
        f"{total['simulated_points']} simulated, "
        f"{total['batch_fallback_points']} fallbacks "
        f"(hit rate {hit_rate:.1f}%)\n"
        f"  m-predict   {total['prefixes_predicted']} prefixes predicted, "
        f"{total['prefixes_calibrated']} calibrated, "
        f"{total['mmodels_fitted']} models fitted, "
        f"{total['holdout_fallbacks']} holdout fallbacks\n"
        f"  calib store {total['calibration_store_hits']} hits, "
        f"{total['calibration_store_misses']} misses, "
        f"{total['cache_evictions']} disk evictions\n"
        f"  pool        {total['pool_hits']} reused "
        f"({total['pool_restores']} snapshot restores), "
        f"{total['pool_builds']} built, {total['pool_dropped']} dropped\n"
        f"  resumes     {total['sim_resumes']} process wake-ups in the "
        f"event engine\n")
    by_class: typing.Dict[str, typing.Dict[str, float]] = {}
    for run in runs:
        label = run.get("tile_class") or "default"
        bucket = by_class.setdefault(
            label, {"sweeps": 0, "points": 0, "planned_points": 0,
                    "simulated_points": 0, "batch_fallback_points": 0,
                    "prefixes_calibrated": 0})
        bucket["sweeps"] += 1
        for key in ("points", "planned_points", "simulated_points",
                    "batch_fallback_points", "prefixes_calibrated"):
            bucket[key] += run.get(key, 0)
    if len(by_class) > 1 or "default" not in by_class:
        out.write("  per tile class:\n")
        for label in sorted(by_class):
            bucket = by_class[label]
            covered = (bucket["planned_points"]
                       + bucket["batch_fallback_points"])
            engagement = (100.0 * bucket["planned_points"] / covered
                          if covered else 0.0)
            out.write(
                f"    {label:12s} {int(bucket['sweeps'])} sweeps, "
                f"{int(bucket['points'])} points, "
                f"{int(bucket['planned_points'])} planned, "
                f"{int(bucket['batch_fallback_points'])} fallbacks, "
                f"{int(bucket['prefixes_calibrated'])} calibrated "
                f"(engagement {engagement:.1f}%)\n")


def main(argv: typing.Optional[typing.Sequence[str]] = None,
         out: typing.TextIO = sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    want_stats = getattr(args, "stats", False)
    if want_stats:
        from repro.core.executor import collect_run_stats
        collect_run_stats()
    try:
        if args.command == "list":
            for name, (help_text, _fn) in _EXPERIMENTS.items():
                out.write(f"{name:20s} {help_text}\n")
        elif args.command == "all":
            for name in _EXPERIMENTS:
                out.write(f"\n=== {name} {'=' * max(0, 60 - len(name))}\n")
                _run_experiment(name, args.clusters, out, jobs=args.jobs)
        elif args.command == "traffic":
            _run_traffic(args, out)
        elif args.command == "offload":
            _run_offload(args, out)
        elif args.command == "sweep":
            _run_sweep(args, out)
        elif args.command == "report":
            _run_report(args, out)
        else:
            _run_experiment(args.command, args.clusters, out, jobs=args.jobs)
        if want_stats:
            _print_run_stats(out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
