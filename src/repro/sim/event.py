"""One-shot events and wait combinators for the simulation kernel."""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Event:
    """A one-shot notification that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`trigger` (optionally
    with a value) schedules every waiting process to resume on the same
    cycle, in the order they began waiting.  Triggering twice is an
    error: hardware wires that pulse repeatedly should allocate a fresh
    event per pulse (see e.g. :class:`repro.cluster.barrier.Barrier`).

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Optional label used in ``repr`` and trace records.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: typing.Any = None
        self._triggered = False
        self._callbacks: list = []

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> typing.Any:
        """The value passed to :meth:`trigger`.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if not self._triggered:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    def trigger(self, value: typing.Any = None) -> "Event":
        """Fire the event, resuming all waiters on the current cycle.

        Returns the event itself so peripherals can ``return
        event.trigger()`` in one statement.
        """
        if self._triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        # Triggering is the kernel's hottest schedule site; append to the
        # zero-delay FIFO directly (same ordering as sim.schedule(0, ...)).
        append = self.sim._now_queue.append
        for callback in callbacks:
            append((callback, self))
        return self

    def add_callback(self, callback) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event already fired, the callback is scheduled for the
        current cycle (it still runs *through the event queue*, never
        synchronously, to keep ordering deterministic).
        """
        if self._triggered:
            self.sim.schedule(0, callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        label = self.name or hex(id(self))
        return f"<Event {label} {state}>"


class _Combinator(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`.

    A combinator is itself an :class:`Event`; it observes its children
    and triggers once its completion rule is met.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events = list(events)
        if not self.events:
            # An empty conjunction/disjunction is vacuously complete.
            self.sim.schedule(0, lambda _none: self._check(None), None)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, _event) -> None:
        raise NotImplementedError


class AllOf(_Combinator):
    """Event that triggers once *all* child events have triggered.

    Its value is the list of child values, in the order the children
    were passed in.
    """

    __slots__ = ()

    def _check(self, _event) -> None:
        if self._triggered:
            return
        if all(event.triggered for event in self.events):
            self.trigger([event.value for event in self.events])


class AnyOf(_Combinator):
    """Event that triggers once *any* child event has triggered.

    Its value is ``(index, value)`` of the first child to fire (ties are
    broken by scheduling order, which the kernel keeps deterministic).
    """

    __slots__ = ()

    def _check(self, _event) -> None:
        if self._triggered:
            return
        for index, event in enumerate(self.events):
            if event.triggered:
                self.trigger((index, event.value))
                return
        if not self.events:
            self.trigger((None, None))
