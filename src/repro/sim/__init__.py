"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine discrete-event simulator in
the style of SimPy, written from scratch for this reproduction.  The
hardware models in :mod:`repro.mem`, :mod:`repro.noc`, :mod:`repro.host`,
:mod:`repro.cluster` and :mod:`repro.soc` are all built as processes on
top of this kernel.

Key concepts
------------
:class:`Simulator`
    Owns the event queue and the current cycle count (``now``).  One
    simulated time unit is one clock cycle (the paper drives all clocks
    at 1 GHz, so 1 cycle == 1 ns).
:class:`Process`
    Wraps a Python generator.  The generator yields *waitables*: an
    ``int`` (delay that many cycles), an :class:`Event` (wait until it is
    triggered), another :class:`Process` (join), or an :class:`AllOf` /
    :class:`AnyOf` combinator.
:class:`Event`
    A one-shot notification carrying an optional value.
:class:`SerialResource`
    A FIFO-served resource with a cycle cost per request — the exact
    model used for shared buses, NoC ports and memory channels.

Determinism: events scheduled for the same cycle fire in the order they
were scheduled (a monotonically increasing sequence number breaks heap
ties), so simulations are exactly reproducible run to run.
"""

from repro.sim.diag import (
    AccessAuditor,
    AccessViolation,
    BlockedProcess,
    IntegrityWarning,
    QuiescenceAudit,
    QuiescenceReport,
    QuiescenceViolation,
    SimulationReport,
)
from repro.sim.event import AllOf, AnyOf, Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.record import TraceRecorder, TraceRecord
from repro.sim.resource import SerialResource, ThroughputChannel

__all__ = [
    "AccessAuditor",
    "AccessViolation",
    "AllOf",
    "AnyOf",
    "BlockedProcess",
    "Event",
    "IntegrityWarning",
    "Process",
    "QuiescenceAudit",
    "QuiescenceReport",
    "QuiescenceViolation",
    "SerialResource",
    "SimulationReport",
    "Simulator",
    "ThroughputChannel",
    "TraceRecord",
    "TraceRecorder",
]
