"""FIFO-served shared resources: the bus/port/channel timing model.

Nearly every contended piece of hardware in the SoC — the host's NoC
request port, the shared-memory read and write channels, the L2 atomics
port — serializes requests in arrival order, each occupying the resource
for a known number of cycles.  :class:`SerialResource` models exactly
that with O(1) bookkeeping: it tracks when the resource next becomes
free and hands each request a completion event.

:class:`ThroughputChannel` specializes it for byte streams with a fixed
width (bytes per cycle), which is how the paper's N/4 memory term arises
(16·N bytes of DAXPY operands over a 64 B/cycle channel).
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.event import Event

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


def _fire_completion(event: Event) -> None:
    """Trigger a completion event with the current cycle as its value.

    Module-level so :meth:`SerialResource.request` allocates no closure
    per request — requests are one of the hottest allocation sites in a
    full-system simulation.
    """
    event.trigger(event.sim.now)


class SerialResource:
    """A resource that serves one request at a time, FIFO.

    A request for ``cycles`` of service issued at time ``t`` completes at
    ``max(t, next_free) + cycles`` and pushes ``next_free`` to that time.
    This is the standard "single server, deterministic service time"
    queue and matches an in-order bus or memory port.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Label used in traces and error messages.
    """

    def __init__(self, sim: "Simulator", name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._next_free = 0
        self._busy_cycles = 0
        self._requests = 0

    def request(self, cycles: int) -> Event:
        """Enqueue a request; returns an event triggered at completion.

        The event's value is the completion cycle.
        """
        if cycles < 0:
            raise SimulationError(
                f"{self.name}: negative service time {cycles}"
            )
        now = self.sim.now
        start = max(now, self._next_free)
        finish = start + cycles
        self._next_free = finish
        self._busy_cycles += cycles
        self._requests += 1
        done = Event(self.sim, name=f"{self.name}-done@{finish}")
        # The event fires exactly at ``finish``, so triggering with the
        # then-current cycle carries the completion time without a
        # per-request closure capturing ``finish``.
        self.sim.schedule(finish - now, _fire_completion, done)
        return done

    def acquire(self, cycles: int) -> typing.Generator:
        """Process-style helper: ``yield from resource.acquire(n)``."""
        finish = yield self.request(cycles)
        return finish

    @property
    def next_free(self) -> int:
        """Earliest cycle at which a new request could start service."""
        return max(self.sim.now, self._next_free)

    @property
    def backlog(self) -> int:
        """Cycles of service still owed beyond ``now`` (0 when idle).

        A non-zero backlog on a "drained" system means a request was
        charged whose completion lies in the future — the quiescence
        audit treats that as an in-flight transaction.
        """
        return max(0, self._next_free - self.sim.now)

    @property
    def busy_cycles(self) -> int:
        """Total cycles of service granted so far (utilization numerator)."""
        return self._busy_cycles

    @property
    def requests(self) -> int:
        """Number of requests served or in flight."""
        return self._requests

    def utilization(self) -> float:
        """Fraction of elapsed time the resource has been busy."""
        if self.sim.now == 0:
            return 0.0
        return min(1.0, self._busy_cycles / self.sim.now)

    def charge_bulk(self, requests: int, busy_cycles: int,
                    next_free: int) -> None:
        """Account ``requests`` analytically computed requests at once.

        Used by fast-forward paths (e.g. virtualized host polling) that
        skip simulating individual requests but must leave the resource's
        statistics and availability exactly as the simulated requests
        would have: ``requests``/``busy_cycles`` grow by the given
        amounts and ``next_free`` advances (never rewinds) to the
        completion of the last skipped request.
        """
        if requests < 0 or busy_cycles < 0:
            raise SimulationError(
                f"{self.name}: negative bulk charge "
                f"(requests={requests}, busy_cycles={busy_cycles})"
            )
        self._requests += requests
        self._busy_cycles += busy_cycles
        if next_free > self._next_free:
            self._next_free = next_free

    def reset(self) -> None:
        """Restore boot state (idle, zero counters).

        Only valid once the simulator has drained: there must be no
        in-flight request whose completion event is still queued.
        """
        self._next_free = 0
        self._busy_cycles = 0
        self._requests = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SerialResource {self.name} next_free={self._next_free} "
            f"requests={self._requests}>"
        )


class ThroughputChannel(SerialResource):
    """A byte-stream channel with a fixed width in bytes per cycle.

    A transfer of ``nbytes`` occupies the channel for
    ``ceil(nbytes / width)`` cycles.  Used for the shared-memory read and
    write channels that all cluster DMA engines contend on.
    """

    def __init__(self, sim: "Simulator", width_bytes: int,
                 name: str = "channel") -> None:
        if width_bytes <= 0:
            raise SimulationError(
                f"{name}: channel width must be positive, got {width_bytes}"
            )
        super().__init__(sim, name=name)
        self.width_bytes = width_bytes
        self._bytes_moved = 0

    def cycles_for(self, nbytes: int) -> int:
        """Service time for an ``nbytes`` transfer (ceil division)."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        return -(-nbytes // self.width_bytes)

    def transfer(self, nbytes: int) -> Event:
        """Enqueue an ``nbytes`` transfer; event fires at completion."""
        self._bytes_moved += nbytes
        return self.request(self.cycles_for(nbytes))

    @property
    def bytes_moved(self) -> int:
        """Total bytes accepted by the channel so far."""
        return self._bytes_moved

    def reset(self) -> None:
        """Restore boot state, including the byte counter."""
        super().reset()
        self._bytes_moved = 0
