"""FIFO-served shared resources: the bus/port/channel timing model.

Nearly every contended piece of hardware in the SoC — the host's NoC
request port, the shared-memory read and write channels, the L2 atomics
port — serializes requests in arrival order, each occupying the resource
for a known number of cycles.  :class:`SerialResource` models exactly
that with O(1) bookkeeping: it tracks when the resource next becomes
free and hands each request a completion event.

:class:`ThroughputChannel` specializes it for byte streams with a fixed
width (bytes per cycle), which is how the paper's N/4 memory term arises
(16·N bytes of DAXPY operands over a 64 B/cycle channel).

Reservations (the channel fast-forward)
---------------------------------------
A resource constructed with ``reserve_lead=L`` additionally accepts
*reservations* via :meth:`SerialResource.request_at`: a request that the
naive simulation would issue exactly ``L`` cycles from now, committed
analytically at call time.  The requester suspends on one completion
event instead of waking once for the issue delay and once for the
channel — the issue delay degrades to a plain timer callback that only
places the completion entry.  FIFO order is preserved because the
lead is a per-resource constant: two reservations committed at ``t1 <=
t2`` would naively issue at ``t1+L <= t2+L`` in the same relative order
(equal commit cycles resolve by call order, which is also the naive
issue order because the naive setup waits are heap entries scheduled in
call order).  Requesters whose lead differs from the resource's constant
must use the plain event path — :meth:`can_reserve` tells them so.  A
plain :meth:`request` landing *inside* an open reservation window (an
unexpected arrival the closed form did not account for) permanently
poisons the reservation path on this resource, so every later transfer
falls back to the event loop; the conflict is counted in
:attr:`ff_conflicts`.  The SoC wires ``reserve_lead`` to the uniform DMA
setup time, so on real configurations the window is conflict-free by
construction.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.event import Event

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


def _fire_completion(event: Event) -> None:
    """Trigger a completion event with the current cycle as its value.

    Module-level so :meth:`SerialResource.request` allocates no closure
    per request — requests are one of the hottest allocation sites in a
    full-system simulation.
    """
    event.trigger(event.sim.now)


def _issue_reserved(payload: typing.Tuple["SerialResource", Event,
                                          int]) -> None:
    """Schedule a reservation's completion at its naive issue cycle.

    The completion heap entry must be *created* exactly where the naive
    path creates it (when the deferred request would issue), so that
    same-cycle ties against unrelated events resolve in the same order —
    the occupancy arithmetic was already committed at reservation time.
    """
    resource, done, finish = payload
    sim = resource.sim
    sim.schedule(finish - sim.now, _fire_completion, done)


class SerialResource:
    """A resource that serves one request at a time, FIFO.

    A request for ``cycles`` of service issued at time ``t`` completes at
    ``max(t, next_free) + cycles`` and pushes ``next_free`` to that time.
    This is the standard "single server, deterministic service time"
    queue and matches an in-order bus or memory port.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Label used in traces and error messages.
    reserve_lead:
        When not ``None``, enables :meth:`request_at` for requesters
        whose issue lead equals this constant (see module docstring).
    """

    def __init__(self, sim: "Simulator", name: str = "resource",
                 reserve_lead: typing.Optional[int] = None) -> None:
        if reserve_lead is not None and reserve_lead < 0:
            raise SimulationError(
                f"{name}: negative reserve lead {reserve_lead}"
            )
        self.sim = sim
        self.name = name
        #: Completion-event label; the ``-done@`` suffix is what the
        #: diagnostics classify resource waits by.  Precomputed because
        #: every request allocates one event (tens of thousands per
        #: measurement).
        self._done_name = name + "-done@"
        self.reserve_lead = reserve_lead
        self._next_free = 0
        self._busy_cycles = 0
        self._requests = 0
        #: Requests committed analytically through :meth:`request_at`.
        self.ff_requests = 0
        #: Plain requests that landed inside an open reservation window
        #: and poisoned the reservation path (see module docstring).
        self.ff_conflicts = 0
        #: Latest naive issue cycle of any committed reservation; a
        #: plain request strictly before this is an unexpected arrival.
        self._reserve_horizon = 0
        self._reserve_poisoned = False

    def request(self, cycles: int) -> Event:
        """Enqueue a request; returns an event triggered at completion.

        The event's value is the completion cycle.
        """
        if cycles < 0:
            raise SimulationError(
                f"{self.name}: negative service time {cycles}"
            )
        now = self.sim.now
        if now < self._reserve_horizon and not self._reserve_poisoned:
            # Unexpected arrival inside a committed reservation window:
            # the closed form assumed a fixed waiter set.  Fall back to
            # the event loop for everything from here on.
            self._reserve_poisoned = True
            self.ff_conflicts += 1
        start = max(now, self._next_free)
        finish = start + cycles
        self._next_free = finish
        self._busy_cycles += cycles
        self._requests += 1
        done = Event(self.sim, name=self._done_name)
        # The event fires exactly at ``finish``, so triggering with the
        # then-current cycle carries the completion time without a
        # per-request closure capturing ``finish``.
        self.sim.schedule(finish - now, _fire_completion, done)
        return done

    def can_reserve(self, lead: int) -> bool:
        """Whether :meth:`request_at` is valid for a ``lead``-cycle issue.

        False when reservations are disabled, the lead differs from the
        resource's constant, or a past conflict poisoned the fast path —
        in every case the caller must take the plain event path.
        """
        return (self.reserve_lead is not None
                and lead == self.reserve_lead
                and not self._reserve_poisoned)

    def request_at(self, lead: int, cycles: int) -> Event:
        """Commit a request the naive path would issue ``lead`` cycles
        from now; returns its completion event (value: completion cycle).

        Requires :meth:`can_reserve` — the caller checks it and falls
        back to ``yield lead`` + :meth:`request` when it is false.
        Occupancy and statistics advance exactly as the deferred plain
        request would have advanced them.
        """
        if not self.can_reserve(lead):
            raise SimulationError(
                f"{self.name}: invalid reservation (lead={lead}, "
                f"reserve_lead={self.reserve_lead}, "
                f"poisoned={self._reserve_poisoned})"
            )
        if cycles < 0:
            raise SimulationError(
                f"{self.name}: negative service time {cycles}"
            )
        now = self.sim.now
        issue = now + lead
        start = max(issue, self._next_free)
        finish = start + cycles
        self._next_free = finish
        self._busy_cycles += cycles
        self._requests += 1
        self.ff_requests += 1
        if issue > self._reserve_horizon:
            self._reserve_horizon = issue
        done = Event(self.sim, name=self._done_name)
        if lead:
            # The requester parks once (on ``done``) instead of once on
            # its issue delay and once on the channel; the hop keeps the
            # completion entry's heap-sequence position identical to the
            # naive path's (see :func:`_issue_reserved`).
            self.sim.schedule(lead, _issue_reserved, (self, done, finish))
        else:
            self.sim.schedule(finish - now, _fire_completion, done)
        return done

    def acquire(self, cycles: int) -> typing.Generator:
        """Process-style helper: ``yield from resource.acquire(n)``."""
        finish = yield self.request(cycles)
        return finish

    @property
    def next_free(self) -> int:
        """Earliest cycle at which a new request could start service."""
        return max(self.sim.now, self._next_free)

    @property
    def backlog(self) -> int:
        """Cycles of service still owed beyond ``now`` (0 when idle).

        A non-zero backlog on a "drained" system means a request was
        charged whose completion lies in the future — the quiescence
        audit treats that as an in-flight transaction.
        """
        return max(0, self._next_free - self.sim.now)

    @property
    def busy_cycles(self) -> int:
        """Total cycles of service granted so far (utilization numerator)."""
        return self._busy_cycles

    @property
    def requests(self) -> int:
        """Number of requests served or in flight."""
        return self._requests

    def utilization(self) -> float:
        """Fraction of elapsed time the resource has been busy."""
        if self.sim.now == 0:
            return 0.0
        return min(1.0, self._busy_cycles / self.sim.now)

    def charge_bulk(self, requests: int, busy_cycles: int,
                    next_free: int) -> None:
        """Account ``requests`` analytically computed requests at once.

        Used by fast-forward paths (e.g. virtualized host polling) that
        skip simulating individual requests but must leave the resource's
        statistics and availability exactly as the simulated requests
        would have: ``requests``/``busy_cycles`` grow by the given
        amounts and ``next_free`` advances (never rewinds) to the
        completion of the last skipped request.
        """
        if requests < 0 or busy_cycles < 0:
            raise SimulationError(
                f"{self.name}: negative bulk charge "
                f"(requests={requests}, busy_cycles={busy_cycles})"
            )
        self._requests += requests
        self._busy_cycles += busy_cycles
        if next_free > self._next_free:
            self._next_free = next_free

    def reset(self) -> None:
        """Restore boot state (idle, zero counters).

        Only valid once the simulator has drained: there must be no
        in-flight request whose completion event is still queued.
        """
        self._next_free = 0
        self._busy_cycles = 0
        self._requests = 0
        self.ff_requests = 0
        self.ff_conflicts = 0
        self._reserve_horizon = 0
        self._reserve_poisoned = False

    def snapshot(self) -> typing.Tuple[int, ...]:
        """Capture occupancy and statistics (see the Snapshot protocol
        in ``docs/architecture.md`` §11); pair with :meth:`restore`.
        """
        return (self._next_free, self._busy_cycles, self._requests,
                self.ff_requests, self.ff_conflicts,
                self._reserve_horizon, int(self._reserve_poisoned))

    def restore(self, state: typing.Tuple[int, ...]) -> None:
        """Restore a :meth:`snapshot`; the simulator clock must already
        be back at the cycle the snapshot was taken (absolute times in
        the state are only meaningful against that clock).
        """
        (self._next_free, self._busy_cycles, self._requests,
         self.ff_requests, self.ff_conflicts,
         self._reserve_horizon, poisoned) = state
        self._reserve_poisoned = bool(poisoned)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SerialResource {self.name} next_free={self._next_free} "
            f"requests={self._requests}>"
        )


class ThroughputChannel(SerialResource):
    """A byte-stream channel with a fixed width in bytes per cycle.

    A transfer of ``nbytes`` occupies the channel for
    ``ceil(nbytes / width)`` cycles.  Used for the shared-memory read and
    write channels that all cluster DMA engines contend on.
    """

    def __init__(self, sim: "Simulator", width_bytes: int,
                 name: str = "channel",
                 reserve_lead: typing.Optional[int] = None) -> None:
        if width_bytes <= 0:
            raise SimulationError(
                f"{name}: channel width must be positive, got {width_bytes}"
            )
        super().__init__(sim, name=name, reserve_lead=reserve_lead)
        self.width_bytes = width_bytes
        self._bytes_moved = 0

    def cycles_for(self, nbytes: int) -> int:
        """Service time for an ``nbytes`` transfer (ceil division)."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        return -(-nbytes // self.width_bytes)

    def transfer(self, nbytes: int) -> Event:
        """Enqueue an ``nbytes`` transfer; event fires at completion."""
        self._bytes_moved += nbytes
        return self.request(self.cycles_for(nbytes))

    def reserve_transfer(self, lead: int, nbytes: int) -> Event:
        """Commit an ``nbytes`` transfer the naive path would issue
        ``lead`` cycles from now (see :meth:`SerialResource.request_at`).
        """
        self._bytes_moved += nbytes
        return self.request_at(lead, self.cycles_for(nbytes))

    @property
    def bytes_moved(self) -> int:
        """Total bytes accepted by the channel so far."""
        return self._bytes_moved

    def reset(self) -> None:
        """Restore boot state, including the byte counter."""
        super().reset()
        self._bytes_moved = 0

    def snapshot(self) -> typing.Tuple[int, ...]:
        return super().snapshot() + (self._bytes_moved,)

    def restore(self, state: typing.Tuple[int, ...]) -> None:
        super().restore(state[:-1])
        self._bytes_moved = state[-1]
