"""Generator-coroutine processes scheduled by the simulation kernel."""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim.event import Event

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator

#: Things a process body may ``yield``: a cycle delay, an event, or
#: another process (join).  Combinators are events themselves.
Waitable = typing.Union[int, Event, "Process"]


class Process(Event):
    """A running simulation process.

    Wraps a generator whose ``yield`` statements suspend it:

    - ``yield n`` (``int``): resume ``n`` cycles later (``n >= 0``).
    - ``yield event``: resume when the event triggers; the ``yield``
      expression evaluates to the event's value.
    - ``yield process``: join — resume when the process finishes; the
      ``yield`` expression evaluates to its return value.

    A process is itself an :class:`Event` that triggers when the body
    returns, carrying the body's return value, so joining and combinator
    composition (``AllOf([p1, p2])``) come for free.

    Use :meth:`Simulator.spawn` to create processes; do not instantiate
    directly.
    """

    __slots__ = ("generator", "_send", "_failure", "_waiting_on",
                 "_waiting_since")

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name)
        self.generator = generator
        self._send = generator.send
        self._failure: typing.Optional[BaseException] = None
        #: Current waitable (int delay or Event), for deadlock reports.
        self._waiting_on: typing.Optional[Waitable] = None
        self._waiting_since = sim.now
        # Kick off on the current cycle, through the queue for determinism.
        sim.schedule(0, self._resume, None)
        sim._processes.add(self)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _resume(self, event: typing.Optional[Event]) -> None:
        """Advance the body one step, handing it the wake-up value.

        This runs once per yield of every process in the system — the
        per-yield hot path.  The wake-up argument is always either
        ``None`` (delay expiry) or the :class:`Event` that fired.
        """
        self.sim.resumes += 1
        try:
            target = self._send(None if event is None else event._value)
        except StopIteration as stop:
            self._waiting_on = None
            self.sim._processes.discard(self)
            self.trigger(stop.value)
            return
        except BaseException as exc:
            # Record and re-raise through the kernel so a broken model
            # never passes silently.
            self._failure = exc
            self.sim._processes.discard(self)
            raise
        # Two stores of wait bookkeeping keep deadlock reports able to
        # name what every parked process waits on; they never touch the
        # queues, so event ordering (and measured cycles) are unchanged.
        self._waiting_on = target
        self._waiting_since = self.sim.now
        # Integer delays are the most common waitable; test them first
        # with an exact type check (bool is not a sane delay anyway).
        if type(target) is int:
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {target}"
                )
            self.sim.schedule(target, self._resume, None)
            return
        if isinstance(target, Event):
            target.add_callback(self._resume)
            return
        self._wait_on(target)

    def _wait_on(self, target: Waitable) -> None:
        if isinstance(target, Event):
            target.add_callback(self._resume)
            return
        if isinstance(target, int):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {target}"
                )
            self.sim.schedule(target, self._resume, None)
            return
        raise SimulationError(
            f"process {self.name!r} yielded {target!r}; expected an int "
            "delay, an Event, or a Process"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the body has returned."""
        return self.triggered

    @property
    def failure(self) -> typing.Optional[BaseException]:
        """The exception that killed the body, if any."""
        return self._failure

    @property
    def waiting_on(self) -> typing.Optional[Waitable]:
        """The waitable the process is currently parked on (diagnostics)."""
        return self._waiting_on

    @property
    def waiting_since(self) -> int:
        """Cycle at which the current wait began (diagnostics)."""
        return self._waiting_since

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.triggered else "running"
        label = self.name or hex(id(self))
        return f"<Process {label} {state}>"
