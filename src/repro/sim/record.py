"""Structured trace recording for simulations.

The offload runtimes annotate phase boundaries (descriptor written,
dispatch done, cluster N woke, DMA-in done, compute done, completion
signalled, host notified) so experiments can break a measured runtime
down into the same components the paper discusses.  The recorder is a
plain append-only log with query helpers; it never affects timing.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class TraceRecord(typing.NamedTuple):
    """One timestamped trace entry.

    A named tuple rather than a dataclass: simulations append tens of
    thousands of these per measurement, and tuple construction is the
    cheapest immutable record Python offers.

    Attributes
    ----------
    cycle:
        Simulation time at which the entry was recorded.
    source:
        Component that recorded it (e.g. ``"host"``, ``"cluster3.dm"``).
    label:
        Event kind (e.g. ``"dispatch_done"``).
    data:
        Optional payload (small dict or scalar), for debugging.
    """

    cycle: int
    source: str
    label: str
    data: typing.Any = None


class TraceRecorder:
    """Append-only, queryable log of :class:`TraceRecord` entries."""

    def __init__(self, sim: "Simulator", enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.records: typing.List[TraceRecord] = []
        # The first recorder built on a simulator becomes its system
        # recorder: deadlock/cycle-limit reports quote its tail.
        # (ManticoreSystem builds its recorder right after the kernel,
        # so later per-component fallback recorders never shadow it.)
        if getattr(sim, "trace", None) is None:
            sim.trace = self

    def record(self, source: str, label: str, data: typing.Any = None) -> None:
        """Append an entry stamped with the current cycle (if enabled)."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(self.sim.now, source, label, data))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, source: typing.Optional[str] = None,
               label: typing.Optional[str] = None) -> typing.List[TraceRecord]:
        """All records matching the given source and/or label."""
        result = self.records
        if source is not None:
            result = [r for r in result if r.source == source]
        if label is not None:
            result = [r for r in result if r.label == label]
        return list(result)

    def first(self, label: str) -> typing.Optional[TraceRecord]:
        """Earliest record with the given label, or None."""
        for record in self.records:
            if record.label == label:
                return record
        return None

    def last(self, label: str) -> typing.Optional[TraceRecord]:
        """Latest record with the given label, or None."""
        for record in reversed(self.records):
            if record.label == label:
                return record
        return None

    def cycle_of(self, label: str) -> int:
        """Cycle of the first record with the label.

        Raises
        ------
        KeyError
            If no record carries the label.
        """
        record = self.first(label)
        if record is None:
            raise KeyError(f"no trace record labelled {label!r}")
        return record.cycle

    def span(self, start_label: str, end_label: str) -> int:
        """Cycles elapsed between the first records of the two labels."""
        return self.cycle_of(end_label) - self.cycle_of(start_label)

    def labels(self) -> typing.List[str]:
        """Distinct labels in first-appearance order."""
        seen: typing.Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.label, None)
        return list(seen)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def snapshot(self) -> typing.Tuple[TraceRecord, ...]:
        """Capture the current log (records are immutable, so no copy)."""
        return tuple(self.records)

    def restore(self, state: typing.Tuple[TraceRecord, ...]) -> None:
        """Restore a :meth:`snapshot`."""
        self.records[:] = state

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self.records)
