"""Simulation-integrity diagnostics: loud, structured failure reports.

The paper's contribution is validated on cycle counts with < 1 % MAPE
headroom, so a silently mis-attributed marker or a half-drained reused
system corrupts the very data the model is fitted on.  This module
turns the simulator's silent failure modes into structured diagnostics:

:class:`SimulationReport`
    Built when a run deadlocks (the event queue drains with the awaited
    event untriggered) or trips its cycle budget.  Names every blocked
    process, classifies what it waits on (mailbox, IRQ, barrier,
    resource, event, join), and carries the tail of the trace log —
    instead of a bare ``DeadlockError``/``CycleLimitError`` message.
:class:`QuiescenceReport`
    The result of auditing a system back to boot state before reuse
    (``SystemPool.release``, ``ManticoreSystem.reset``): every
    component that is *not* at boot state contributes a
    :class:`QuiescenceViolation` instead of being silently dropped or —
    worse — reused dirty.
:class:`AccessAuditor`
    Collects MMIO access anomalies (stale sync-unit credits, doorbells
    nobody is waiting on, writes to read-only registers, unknown
    offsets).  Anomalies that are otherwise silent raise
    :class:`~repro.errors.ProtocolError` in strict mode
    (``REPRO_STRICT``, or ``AccessAuditor(strict=True)``).

This module sits at the very bottom of the simulation layer: it may
import only :mod:`repro.errors`, :mod:`repro.flags`, and the kernel's
leaf modules (``sim.event``, ``sim.process``, ``sim.record``) — never
``sim.kernel`` — so the kernel itself (and every layer above it) can
depend on it without cycles.  ``tools/check_imports.py`` enforces this.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import flags
from repro.errors import ProtocolError
from repro.sim.event import AllOf, AnyOf, Event
from repro.sim.process import Process
from repro.sim.record import TraceRecord

if typing.TYPE_CHECKING:
    from repro.sim.kernel import Simulator

#: How many trailing trace records a report carries.
TRACE_TAIL = 12


class IntegrityWarning(UserWarning):
    """Non-fatal integrity diagnostic (dropped pooled system, malformed
    cache record).  Strict mode escalates the fatal-able ones."""


# ----------------------------------------------------------------------
# Wait classification
# ----------------------------------------------------------------------
def classify_wait(target: typing.Any) -> typing.Tuple[str, str]:
    """``(kind, detail)`` describing what a blocked process waits on.

    Classification is by event identity and the naming conventions the
    hardware models already use (``mailbox3.ring``, ``irq.syncunit``,
    ``cluster0.barrier.gen2``, ``mem.read-done@120``), so it needs no
    knowledge of the upper layers.
    """
    if isinstance(target, Process):
        return "join", f"process {target.name or hex(id(target))!r}"
    if isinstance(target, AllOf):
        missing = [e.name or hex(id(e)) for e in target.events
                   if not e.triggered]
        return "all-of", f"{len(missing)} untriggered: {', '.join(missing)}"
    if isinstance(target, AnyOf):
        names = [e.name or hex(id(e)) for e in target.events]
        return "any-of", ", ".join(names)
    if isinstance(target, Event):
        name = target.name or hex(id(target))
        if ".ring" in name and name.startswith("mailbox"):
            return "mailbox", name
        if name.startswith("irq."):
            return "irq", name[len("irq."):]
        if name.startswith("fabric_barrier.") or ".gen" in name:
            return "barrier", name
        if "-done@" in name:
            return "resource", name
        if name.startswith("timer@"):
            return "timer", name
        return "event", name
    if isinstance(target, int):
        return "delay", f"{target} cycles"
    return "unknown", repr(target)


@dataclasses.dataclass(frozen=True)
class BlockedProcess:
    """One parked process and the classified reason it is parked."""

    name: str
    wait_kind: str
    wait_detail: str
    since_cycle: int

    def describe(self) -> str:
        return (f"{self.name}: waiting on {self.wait_kind} "
                f"({self.wait_detail}) since cycle {self.since_cycle}")


@dataclasses.dataclass(frozen=True)
class SimulationReport:
    """Structured post-mortem of a wedged or budget-tripped run."""

    #: ``"deadlock"`` or ``"cycle-limit"``.
    reason: str
    #: Simulated cycle at which the run stopped.
    cycle: int
    #: Queued callbacks at the stop (0 for a true deadlock).
    pending: int
    #: Every live process parked on an untriggered event.
    blocked: typing.Tuple[BlockedProcess, ...]
    #: The event the run was waiting for, if any (``run(until=event)``).
    awaited: typing.Optional[str] = None
    #: Last few trace records before the stop (empty without a recorder).
    trace_tail: typing.Tuple[TraceRecord, ...] = ()

    def describe(self) -> str:
        """Multi-line human-readable rendering (the error message)."""
        lines = [
            f"simulation {self.reason} at cycle {self.cycle}: "
            f"{len(self.blocked)} blocked process(es), "
            f"{self.pending} pending callback(s)"
        ]
        if self.awaited:
            lines.append(f"  awaited event: {self.awaited}")
        for entry in self.blocked:
            lines.append(f"  - {entry.describe()}")
        if self.trace_tail:
            lines.append(f"  last {len(self.trace_tail)} trace record(s):")
            for record in self.trace_tail:
                lines.append(
                    f"    [cycle {record.cycle}] {record.source}: "
                    f"{record.label}")
        return "\n".join(lines)

    def blocked_named(self, name: str) -> BlockedProcess:
        """The blocked entry for ``name`` (KeyError if not blocked)."""
        for entry in self.blocked:
            if entry.name == name:
                return entry
        raise KeyError(f"process {name!r} is not in the blocked set")

    def __str__(self) -> str:
        return self.describe()


def build_report(sim: "Simulator", reason: str,
                 awaited: typing.Optional[Event] = None) -> SimulationReport:
    """Assemble a :class:`SimulationReport` from a simulator's state.

    Runs only on failure paths; the per-yield bookkeeping it reads
    (``Process.waiting_on``) is two attribute stores in the resume hot
    path and never perturbs event ordering or simulated time.
    """
    blocked = []
    for process in sim.live_processes:
        target = process.waiting_on
        if not isinstance(target, Event) or target.triggered:
            continue  # running, delayed, or about to resume
        kind, detail = classify_wait(target)
        blocked.append(BlockedProcess(
            name=process.name or hex(id(process)),
            wait_kind=kind, wait_detail=detail,
            since_cycle=process.waiting_since))
    blocked.sort(key=lambda entry: (entry.since_cycle, entry.name))
    recorder = getattr(sim, "trace", None)
    tail: typing.Tuple[TraceRecord, ...] = ()
    if recorder is not None and recorder.records:
        tail = tuple(recorder.records[-TRACE_TAIL:])
    return SimulationReport(
        reason=reason, cycle=sim.now, pending=sim.pending,
        blocked=tuple(blocked),
        awaited=(awaited.name or hex(id(awaited))) if awaited is not None
        else None,
        trace_tail=tail)


# ----------------------------------------------------------------------
# Quiescence audit
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class QuiescenceViolation:
    """One component found away from boot state."""

    component: str
    check: str
    expected: typing.Any
    actual: typing.Any

    def describe(self) -> str:
        return (f"{self.component}: {self.check} "
                f"(expected {self.expected!r}, found {self.actual!r})")


@dataclasses.dataclass(frozen=True)
class QuiescenceReport:
    """Outcome of auditing a system back to boot state."""

    violations: typing.Tuple[QuiescenceViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return "system is quiescent"
        lines = [f"{len(self.violations)} quiescence violation(s):"]
        lines.extend(f"  - {v.describe()}" for v in self.violations)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class QuiescenceAudit:
    """Collector used by component walks (``ManticoreSystem.audit_quiescence``)."""

    def __init__(self) -> None:
        self._violations: typing.List[QuiescenceViolation] = []

    def expect(self, component: str, check: str, expected: typing.Any,
               actual: typing.Any) -> None:
        """Record a violation unless ``actual == expected``."""
        if actual != expected:
            self._violations.append(QuiescenceViolation(
                component=component, check=check,
                expected=expected, actual=actual))

    def report(self) -> QuiescenceReport:
        return QuiescenceReport(violations=tuple(self._violations))


# ----------------------------------------------------------------------
# MMIO access auditing
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AccessViolation:
    """One anomalous MMIO access."""

    cycle: int
    device: str
    kind: str
    offset: int
    value: typing.Optional[int] = None
    detail: str = ""

    def describe(self) -> str:
        text = (f"[cycle {self.cycle}] {self.device}+{self.offset:#x}: "
                f"{self.kind}")
        if self.value is not None:
            text += f" (value {self.value})"
        if self.detail:
            text += f" — {self.detail}"
        return text


class AccessAuditor:
    """Collects MMIO access anomalies; escalates them in strict mode.

    Devices report two classes of anomaly:

    - *fatal* ones (unknown offset, write to a read-only register) that
      the device raises on regardless — the auditor just records them so
      a post-mortem sees the full picture;
    - *silent* ones (a stale credit to a disarmed sync unit, a doorbell
      with no core listening) that historically only corrupted the
      measurement.  These are recorded, and raise
      :class:`~repro.errors.ProtocolError` when strict mode is on —
      either per-instance (``strict=True``) or globally via the
      ``REPRO_STRICT`` environment flag.
    """

    def __init__(self, sim: typing.Optional["Simulator"] = None,
                 strict: bool = False) -> None:
        self.sim = sim
        self._strict = strict
        self.violations: typing.List[AccessViolation] = []

    @property
    def strict(self) -> bool:
        """Instance override OR the ``REPRO_STRICT`` environment gate."""
        return self._strict or flags.strict()

    def report(self, device: str, kind: str, offset: int,
               value: typing.Optional[int] = None, detail: str = "",
               fatal: bool = False) -> None:
        """Record one anomaly.

        ``fatal=True`` marks anomalies the caller raises on anyway (the
        auditor never double-raises those); silent anomalies raise
        :class:`ProtocolError` here when strict mode is enabled.
        """
        violation = AccessViolation(
            cycle=self.sim.now if self.sim is not None else 0,
            device=device, kind=kind, offset=offset, value=value,
            detail=detail)
        self.violations.append(violation)
        if not fatal and self.strict:
            raise ProtocolError(
                f"strict mode: {violation.describe()}")

    def count(self, kind: typing.Optional[str] = None) -> int:
        """Number of recorded violations (optionally of one kind)."""
        if kind is None:
            return len(self.violations)
        return sum(1 for v in self.violations if v.kind == kind)

    def clear(self) -> None:
        """Drop recorded violations (system reset)."""
        self.violations.clear()
