"""The simulation kernel: event queue, clock, and run loop."""

from __future__ import annotations

import heapq
import typing

from repro.errors import DeadlockError, SimulationError
from repro.sim.event import AllOf, AnyOf, Event
from repro.sim.process import Process


class Simulator:
    """Owns simulated time and the pending-callback queue.

    Time is an integer cycle count starting at 0.  All model code runs
    inside callbacks popped from a single priority queue keyed on
    ``(cycle, sequence)``; the sequence number guarantees FIFO order for
    same-cycle callbacks, which makes every simulation bit-reproducible.

    Typical use::

        sim = Simulator()
        done = sim.spawn(my_model(sim), name="model")
        sim.run()
        assert done.finished
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list = []
        self._sequence = 0
        self._running = False
        self._spawned = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback, argument=None) -> None:
        """Run ``callback(argument)`` after ``delay`` cycles (``>= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, callback, argument)
        )

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def all_of(self, events: typing.Sequence[Event], name: str = "") -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: typing.Sequence[Event], name: str = "") -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events, name=name)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new process running ``generator`` this cycle."""
        self._spawned += 1
        if not name:
            name = f"process-{self._spawned}"
        return Process(self, generator, name=name)

    def timer(self, delay: int, name: str = "") -> Event:
        """An event that triggers ``delay`` cycles from now."""
        event = self.event(name=name or f"timer@{self.now + delay}")
        self.schedule(delay, lambda _arg: event.trigger(self.now), None)
        return event

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Pop and run one callback.  Returns False if the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback, argument = heapq.heappop(self._queue)
        if when < self.now:  # pragma: no cover - guarded by schedule()
            raise SimulationError("event queue produced a time in the past")
        self.now = when
        callback(argument)
        return True

    def run(self, until: typing.Optional[typing.Union[int, Event]] = None) -> int:
        """Run the simulation and return the final cycle count.

        Parameters
        ----------
        until:
            ``None``
                Run until the event queue drains.
            ``int``
                Run until simulated time reaches that cycle (events
                scheduled exactly at ``until`` do run).
            :class:`Event`
                Run until the event triggers; raises
                :class:`DeadlockError` if the queue drains first.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return self.now
            if isinstance(until, int):
                if until < self.now:
                    raise SimulationError(
                        f"cannot run until cycle {until}: already at {self.now}"
                    )
                while self._queue and self._queue[0][0] <= until:
                    self.step()
                self.now = max(self.now, until)
                return self.now
            if isinstance(until, Event):
                while not until.triggered:
                    if not self.step():
                        raise DeadlockError(
                            f"event queue drained at cycle {self.now} but "
                            f"{until!r} never triggered"
                        )
                return self.now
            raise SimulationError(f"invalid 'until' argument: {until!r}")
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of queued callbacks (a rough liveness indicator)."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"
