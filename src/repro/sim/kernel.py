"""The simulation kernel: event queue, clock, and run loop."""

from __future__ import annotations

import collections
import heapq
import typing

from repro.errors import CycleLimitError, DeadlockError, SimulationError
from repro.sim import diag
from repro.sim.event import AllOf, AnyOf, Event
from repro.sim.process import Process


def _fire_timer(event: Event) -> None:
    """Module-level timer callback (no per-timer closure allocation)."""
    event.trigger(event.sim.now)


class Simulator:
    """Owns simulated time and the pending-callback queue.

    Time is an integer cycle count starting at 0.  All model code runs
    inside callbacks popped from two cooperating queues:

    - a priority queue keyed on ``(cycle, sequence)`` for future
      callbacks; the sequence number guarantees FIFO order for
      same-cycle callbacks, which makes every simulation
      bit-reproducible;
    - a plain FIFO for *zero-delay* callbacks (event triggers, process
      kick-offs).  These are by far the most common schedules in the
      hardware models, and a deque append/popleft is much cheaper than
      a heap push/pop.

    The ordering contract is unchanged by the split: once ``now``
    reaches a cycle, every heap entry for that cycle predates (was
    scheduled before) every zero-delay entry created *during* that
    cycle, so draining heap-then-FIFO per cycle reproduces the single
    ``(cycle, sequence)`` order exactly.

    Typical use::

        sim = Simulator()
        done = sim.spawn(my_model(sim), name="model")
        sim.run()
        assert done.finished
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list = []
        self._now_queue: collections.deque = collections.deque()
        self._sequence = 0
        self._running = False
        self._spawned = 0
        #: Total process-body resumptions (generator ``send`` calls).
        #: Monotonic diagnostics counter — the interpreter cost of a run
        #: is dominated by these, so sweep statistics and the profiling
        #: helper report it; deliberately *not* part of snapshot/reset
        #: state (it measures host work, not simulated state).
        self.resumes = 0
        #: Live (unfinished) processes; parked DM cores stay here for
        #: the lifetime of the system, which is exactly what deadlock
        #: reports need to enumerate.
        self._processes: set = set()
        #: The system's trace recorder, if one registered (the first
        #: :class:`~repro.sim.record.TraceRecorder` built on this
        #: simulator); deadlock reports quote its tail.
        self.trace = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback, argument=None) -> None:
        """Run ``callback(argument)`` after ``delay`` cycles (``>= 0``)."""
        if delay == 0:
            self._now_queue.append((callback, argument))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, callback, argument)
        )

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name=name)

    def all_of(self, events: typing.Sequence[Event], name: str = "") -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events, name=name)

    def any_of(self, events: typing.Sequence[Event], name: str = "") -> AnyOf:
        """Event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events, name=name)

    def spawn(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new process running ``generator`` this cycle."""
        self._spawned += 1
        if not name:
            name = f"process-{self._spawned}"
        return Process(self, generator, name=name)

    def timer(self, delay: int, name: str = "") -> Event:
        """An event that triggers ``delay`` cycles from now."""
        event = Event(self, name=name or f"timer@{self.now + delay}")
        self.schedule(delay, _fire_timer, event)
        return event

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Pop and run one callback.  Returns False if nothing is queued.

        Heap entries for the current cycle run before FIFO entries: they
        carry strictly older sequence numbers (zero-delay schedules can
        only be appended once ``now`` has already reached their cycle).
        """
        queue = self._queue
        if queue and queue[0][0] == self.now:
            _when, _seq, callback, argument = heapq.heappop(queue)
            callback(argument)
            return True
        now_queue = self._now_queue
        if now_queue:
            callback, argument = now_queue.popleft()
            callback(argument)
            return True
        if queue:
            when, _seq, callback, argument = heapq.heappop(queue)
            self.now = when
            callback(argument)
            return True
        return False

    def run(self, until: typing.Optional[typing.Union[int, Event]] = None,
            max_cycles: typing.Optional[int] = None) -> int:
        """Run the simulation and return the final cycle count.

        Parameters
        ----------
        until:
            ``None``
                Run until the event queue drains.
            ``int``
                Run until simulated time reaches that cycle (events
                scheduled exactly at ``until`` do run).
            :class:`Event`
                Run until the event triggers; raises
                :class:`DeadlockError` if the queue drains first.
        max_cycles:
            Only with an :class:`Event` ``until``: raise
            :class:`CycleLimitError` instead of advancing time past
            this cycle (a runaway-protocol guard; the check costs one
            comparison per time advance, never per event).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            if until is None:
                # The drain-everything loop is the simulator's hottest
                # code; inline step() and hoist lookups out of it.
                queue = self._queue
                now_queue = self._now_queue
                pop = heapq.heappop
                popleft = now_queue.popleft
                while True:
                    while queue and queue[0][0] == self.now:
                        item = pop(queue)
                        item[2](item[3])
                    if now_queue:
                        callback, argument = popleft()
                        callback(argument)
                        continue
                    if not queue:
                        return self.now
                    item = pop(queue)
                    self.now = item[0]
                    item[2](item[3])
            if isinstance(until, int):
                if until < self.now:
                    raise SimulationError(
                        f"cannot run until cycle {until}: already at {self.now}"
                    )
                while self._now_queue or (
                        self._queue and self._queue[0][0] <= until):
                    self.step()
                self.now = max(self.now, until)
                return self.now
            if isinstance(until, Event):
                # Same inlined dispatch as the drain loop above; every
                # measured offload runs through here.
                queue = self._queue
                now_queue = self._now_queue
                pop = heapq.heappop
                popleft = now_queue.popleft
                while not until._triggered:
                    if queue and queue[0][0] == self.now:
                        item = pop(queue)
                        item[2](item[3])
                    elif now_queue:
                        callback, argument = popleft()
                        callback(argument)
                    elif queue:
                        if max_cycles is not None and queue[0][0] > max_cycles:
                            report = diag.build_report(
                                self, reason="cycle-limit", awaited=until)
                            error = CycleLimitError(
                                f"next event at cycle {queue[0][0]} exceeds "
                                f"the {max_cycles}-cycle budget\n"
                                + report.describe()
                            )
                            error.report = report
                            raise error
                        item = pop(queue)
                        self.now = item[0]
                        item[2](item[3])
                    else:
                        report = diag.build_report(
                            self, reason="deadlock", awaited=until)
                        error = DeadlockError(
                            f"event queue drained at cycle {self.now} but "
                            f"{until!r} never triggered\n" + report.describe()
                        )
                        error.report = report
                        raise error
                return self.now
            raise SimulationError(f"invalid 'until' argument: {until!r}")
        finally:
            self._running = False

    def reset(self) -> None:
        """Rewind the clock to cycle 0 for a fresh measurement.

        Only legal once the queues have drained (``run()`` returned with
        nothing pending): a queued callback carries an absolute cycle
        and would fire at a nonsense time after the rewind.  Processes
        parked on untriggered events (e.g. DM cores waiting on their
        mailboxes) hold no queue entries and survive a reset unharmed.
        """
        if self._queue or self._now_queue:
            raise SimulationError(
                f"cannot reset with {self.pending} pending callbacks; "
                "run the simulator to completion first"
            )
        if self._running:
            raise SimulationError("cannot reset while running")
        self.now = 0
        self._sequence = 0

    def snapshot(self) -> typing.Tuple[int, int, int]:
        """Capture the kernel's clock state (drained queues only).

        Like :meth:`reset`, only legal between runs: queued callbacks
        carry absolute cycles, so a snapshot with work in flight could
        never be restored coherently.
        """
        if self._queue or self._now_queue:
            raise SimulationError(
                f"cannot snapshot with {self.pending} pending callbacks; "
                "run the simulator to completion first"
            )
        return (self.now, self._sequence, self._spawned)

    def restore(self, state: typing.Tuple[int, int, int]) -> None:
        """Restore a :meth:`snapshot` (drained queues only).

        Component ``restore`` methods run *after* this one so that any
        absolute cycles inside their states are meaningful against the
        restored clock.
        """
        if self._queue or self._now_queue:
            raise SimulationError(
                f"cannot restore with {self.pending} pending callbacks; "
                "run the simulator to completion first"
            )
        if self._running:
            raise SimulationError("cannot restore while running")
        self.now, self._sequence, self._spawned = state

    @property
    def pending(self) -> int:
        """Number of queued callbacks (a rough liveness indicator)."""
        return len(self._queue) + len(self._now_queue)

    @property
    def live_processes(self) -> typing.Tuple[Process, ...]:
        """Every spawned process whose body has not yet returned.

        Parked processes (e.g. DM cores waiting on their mailboxes)
        remain live across :meth:`reset`; diagnostics iterate this to
        name what a wedged simulation is blocked on.
        """
        return tuple(self._processes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now} pending={self.pending}>"
