"""E4/E5: the runtime model — Eq. 1's fit and Eq. 2's validation."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.fitting import FitReport, fit_report
from repro.analysis.tables import Table
from repro.core.mape import PAPER_M_VALUES, PAPER_N_VALUES, mape_table
from repro.core.model import OffloadModel, PAPER_DAXPY_MODEL
from repro.core.sweep import sweep
from repro.experiments.base import Experiment, usable_ms
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class ModelFit(Experiment):
    """The fitted model with quality metrics and the paper comparison."""

    report: FitReport
    paper_model: OffloadModel

    @property
    def model(self) -> OffloadModel:
        return self.report.model

    def csv_columns(self) -> typing.Sequence[str]:
        return ("coefficient", "fitted", "paper")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        ours, paper = self.model, self.paper_model
        yield ("t0", ours.t0, paper.t0)
        yield ("mem_coeff", ours.mem_coeff, paper.mem_coeff)
        yield ("compute_coeff", ours.compute_coeff, paper.compute_coeff)

    def render(self) -> str:
        ours, paper = self.model, self.paper_model
        table = Table(["coefficient", "ours (fitted)", "paper (Eq. 1)"],
                      title="Eq. 1: runtime-model coefficients")
        table.add_row(["t0 [cycles]", ours.t0, paper.t0])
        table.add_row(["mem [cycles/elem]", ours.mem_coeff, paper.mem_coeff])
        table.add_row(["compute [cycles/elem]", ours.compute_coeff,
                       paper.compute_coeff])
        note = ("our compute coefficient is 0.45 = (2.6+1)/8 because the "
                "result write-back (N/8 over the shared write channel) is "
                "visible in our memory system; the paper's Eq. 1 folds it "
                "away (see DESIGN.md §2)")
        return "\n\n".join([table.render(), self.report.summary(), note])


def fit_model(n_values: typing.Sequence[int] = PAPER_N_VALUES,
              m_values: typing.Sequence[int] = PAPER_M_VALUES,
              kernel: str = "daxpy", variant_config: str = "extended",
              include_dispatch_term: bool = False, jobs: int = 1,
              **config_overrides) -> ModelFit:
    """Fit the Eq.-1 model family to a measured sweep."""
    if variant_config == "extended":
        config = SoCConfig.extended(**config_overrides)
    else:
        config = SoCConfig.baseline(**config_overrides)
        include_dispatch_term = True
    m_values = usable_ms(m_values, config)
    result = sweep(config, kernel, n_values, m_values, jobs=jobs)
    model = OffloadModel.fit(
        result.triples(), include_dispatch_term=include_dispatch_term,
        label=f"fitted {kernel}/{variant_config}")
    return ModelFit(report=fit_report(model, result.triples()),
                    paper_model=PAPER_DAXPY_MODEL)


@dataclasses.dataclass(frozen=True)
class MapeExperiment(Experiment):
    """Per-N MAPE of the fitted model (the paper's <1 % claim)."""

    model: OffloadModel
    per_n: typing.Dict[int, float]

    @property
    def worst(self) -> float:
        return max(self.per_n.values())

    def csv_columns(self) -> typing.Sequence[str]:
        return ("n", "mape_percent")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for n, value in self.per_n.items():
            yield (n, value)

    def render(self) -> str:
        table = Table(["N", "MAPE [%]"],
                      title="Eq. 2: model error per problem size "
                            "(paper: < 1 % everywhere)")
        for n, value in self.per_n.items():
            table.add_row([n, value])
        return "\n\n".join([
            self.model.describe(), table.render(),
            f"worst-case MAPE {self.worst:.3f} %"])


def mape_experiment(n_values: typing.Sequence[int] = PAPER_N_VALUES,
                    m_values: typing.Sequence[int] = PAPER_M_VALUES,
                    jobs: int = 1, **config_overrides) -> MapeExperiment:
    """Fit on the paper grid, validate per problem size (Eq. 2)."""
    config = SoCConfig.extended(**config_overrides)
    m_values = usable_ms(m_values, config)
    result = sweep(config, "daxpy", n_values, m_values, jobs=jobs)
    model = OffloadModel.fit(result.triples(), label="fitted daxpy/extended")
    per_n = mape_table(model, result.runtime_grid())
    return MapeExperiment(model=model, per_n=per_n)
