"""E13: traffic-driven scenarios — Eq. 3 as a served admission policy.

The scheduler experiment (E9) showed the paper's model routing a
*back-to-back* job stream; E13 puts the same fitted models under
sustained multi-tenant load.  Jobs arrive over virtual time (Poisson,
bursty, and recorded-trace processes), each with a deadline of
``slack × t̂_host(N)``, and four policies serve the stream on one
shared fabric:

- ``always_host`` — one serial host core; the stream queues behind it.
- ``always_offload_M`` — every job takes the whole fabric; jobs
  serialize at full width.
- ``model_driven`` — E9's policy online: the faster predicted side at
  the runtime-optimal (widest) M, blind to queues and deadlines.
- ``deadline_aware`` — the paper's Eq. 3 served per job:
  :func:`~repro.core.decision.min_clusters_for_deadline` admits each
  job at the *minimum* feasible width, so the fabric space-shares many
  narrow jobs instead of serializing wide ones.

The headline: under load, picking the minimum width that meets the
deadline beats picking the fastest width — the deadline-aware policy
turns the same fabric into an order of magnitude more deadline
capacity than always-offload.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig

#: Kernels the E13 platform characterization fits (kept to two so the
#: committed artifact regenerates in seconds).
TRAFFIC_KERNELS = ("daxpy", "memcpy")

#: A "recorded" arrival trace: one period of a bursty application
#: phase — two tight bursts and a sparse tail — replayed periodically.
#: Offsets in cycles within one period.
RECORDED_TRACE = (0, 45, 90, 135, 180, 225, 270, 315,
                  2400, 2430, 2460, 2490, 2520, 2550,
                  4200, 4800, 5400)

#: Period of the recorded trace, in cycles.
RECORDED_TRACE_PERIOD = 6000


@dataclasses.dataclass(frozen=True)
class TrafficExperiment(Experiment):
    """Policy × arrival-process metrics over one traffic scenario."""

    num_jobs: int
    tenants: int
    capacity: int
    slack: float
    seed: int
    #: One entry per (arrival, policy), in run order.
    metrics: typing.Tuple["TrafficMetrics", ...]   # noqa: F821

    def miss_rate(self, arrival: str, policy: str) -> float:
        for entry in self.metrics:
            if entry.arrival_name == arrival and entry.policy_name == policy:
                return entry.miss_rate
        raise KeyError(f"no metrics for {policy!r} under {arrival!r}")

    @property
    def arrival_names(self) -> typing.Tuple[str, ...]:
        seen: typing.List[str] = []
        for entry in self.metrics:
            if entry.arrival_name not in seen:
                seen.append(entry.arrival_name)
        return tuple(seen)

    def csv_columns(self) -> typing.Sequence[str]:
        return ("arrival", "policy", "tenant", "jobs", "admitted", "shed",
                "offloaded", "deadline_misses", "miss_rate",
                "p50_sojourn_cycles", "p99_sojourn_cycles", "utilization",
                "jain_fairness")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for entry in self.metrics:
            yield (entry.arrival_name, entry.policy_name, "all",
                   entry.jobs, entry.admitted, entry.shed, entry.offloaded,
                   entry.deadline_misses, entry.miss_rate,
                   entry.p50_sojourn_cycles, entry.p99_sojourn_cycles,
                   entry.utilization, entry.jain_fairness)
            for tenant in entry.per_tenant:
                yield (entry.arrival_name, entry.policy_name, tenant.tenant,
                       tenant.jobs, tenant.admitted, tenant.shed, None,
                       tenant.deadline_misses, tenant.miss_rate,
                       tenant.p50_sojourn_cycles, tenant.p99_sojourn_cycles,
                       None, None)

    def render(self) -> str:
        sections = []
        for arrival in self.arrival_names:
            table = Table(
                ["policy", "miss rate", "shed", "offloaded",
                 "p50 sojourn", "p99 sojourn", "util", "Jain"],
                title=f"E13: {self.num_jobs} jobs / {self.tenants} tenants "
                      f"under {arrival} arrivals (fabric {self.capacity}, "
                      f"slack {self.slack:g})")
            for entry in self.metrics:
                if entry.arrival_name != arrival:
                    continue
                table.add_row([
                    entry.policy_name, round(entry.miss_rate, 3),
                    entry.shed, entry.offloaded,
                    round(entry.p50_sojourn_cycles, 1),
                    round(entry.p99_sojourn_cycles, 1),
                    round(entry.utilization, 3),
                    round(entry.jain_fairness, 3)])
            sections.append(table.render())
        tenants = Table(
            ["tenant", "jobs", "misses", "miss rate", "p50", "p99"],
            title="deadline_aware per tenant "
                  f"({self.arrival_names[0]} arrivals)")
        for entry in self.metrics:
            if (entry.arrival_name == self.arrival_names[0]
                    and entry.policy_name == "deadline_aware"):
                for tenant in entry.per_tenant:
                    tenants.add_row([
                        tenant.tenant, tenant.jobs, tenant.deadline_misses,
                        round(tenant.miss_rate, 3),
                        round(tenant.p50_sojourn_cycles, 1),
                        round(tenant.p99_sojourn_cycles, 1)])
        sections.append(tenants.render())
        sections.append(
            "the deadline-aware policy admits each job at the *minimum* "
            "width Eq. 3 says meets its deadline, space-sharing the fabric "
            "across tenants — always-offload serializes full-width jobs "
            "and misses most deadlines under the same load")
        return "\n\n".join(sections)


def traffic_experiment(num_jobs: int = 160, tenants: int = 3,
                       num_clusters: int = 32, seed: int = 7,
                       slack: float = 3.0,
                       mean_interarrival_cycles: float = 300.0,
                       kernels: typing.Sequence[str] = TRAFFIC_KERNELS,
                       n_values: typing.Sequence[int] = (128, 256, 512, 1024),
                       m_values: typing.Sequence[int] = (1, 2, 4, 8, 16, 32),
                       min_n: int = 16, max_n: int = 4096,
                       jobs: int = 1,
                       **config_overrides) -> TrafficExperiment:
    """Serve one multi-tenant traffic scenario under every policy.

    The platform is characterized once (Eq.-1 offload fits plus a host
    model per kernel, all from measurements on the extended config —
    exactly E9's procedure), then each arrival process generates one
    job stream and every policy serves it on a fresh virtual-time
    fabric.  ``jobs`` fans the characterization sweeps out over worker
    processes; the traffic replay itself is closed-form.
    """
    from repro.traffic import (
        BurstyArrivals,
        PoissonArrivals,
        TraceArrivals,
        TrafficAlwaysHost,
        TrafficAlwaysOffload,
        TrafficDeadlineAware,
        TrafficEngine,
        TrafficModelDriven,
        compute_metrics,
        generate_traffic,
    )
    from repro.workload import characterize_platform

    config = SoCConfig.extended(num_clusters=num_clusters,
                                **config_overrides)
    platform = characterize_platform(config, kernels, n_values=n_values,
                                     m_values=m_values, jobs=jobs)
    arrivals = (
        PoissonArrivals(mean_interarrival_cycles),
        BurstyArrivals(
            burst_interarrival_cycles=mean_interarrival_cycles / 5,
            mean_burst_jobs=8.0,
            mean_idle_cycles=mean_interarrival_cycles * 8),
        TraceArrivals(RECORDED_TRACE, period_cycles=RECORDED_TRACE_PERIOD),
    )
    policies = (
        TrafficAlwaysHost(),
        TrafficAlwaysOffload(num_clusters),
        TrafficModelDriven(),
        TrafficDeadlineAware(),
    )
    engine = TrafficEngine.from_platform(platform, capacity=num_clusters,
                                         slack=slack)
    metrics = []
    for process in arrivals:
        stream = generate_traffic(process, num_jobs, tenants=tenants,
                                  kernels=kernels, min_n=min_n, max_n=max_n,
                                  seed=seed)
        for policy in policies:
            result = engine.run(stream, policy, arrival_name=process.name)
            metrics.append(compute_metrics(result))
    return TrafficExperiment(
        num_jobs=num_jobs, tenants=tenants, capacity=num_clusters,
        slack=slack, seed=seed, metrics=tuple(metrics))
