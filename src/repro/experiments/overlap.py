"""E11: co-operative execution — host work hides behind the offload."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class OverlapExperiment(Experiment):
    """Offload + host work: sequential vs overlapped, across host sizes."""

    accel_n: int
    num_clusters: int
    rows: typing.Dict[int, typing.Tuple[int, int, int]]
    #: host_n -> (sequential, overlapped, exposed wait)

    def csv_columns(self) -> typing.Sequence[str]:
        return ("host_n", "sequential_cycles", "overlapped_cycles",
                "exposed_wait_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for host_n, (seq, overlapped, exposed) in sorted(self.rows.items()):
            yield (host_n, seq, overlapped, exposed)

    def render(self) -> str:
        table = Table(["host job N", "sequential [cycles]",
                       "overlapped [cycles]", "exposed wait", "saving"],
                      title=f"E11: DAXPY n={self.accel_n} offload on "
                            f"{self.num_clusters} clusters, host runs "
                            "scale(N) meanwhile")
        for host_n, (seq, overlapped, exposed) in sorted(self.rows.items()):
            table.add_row([host_n, seq, overlapped, exposed,
                           seq - overlapped])
        notes = ("host work up to the accelerator's runtime is free "
                 "(exposed wait ~0); past that the host becomes the "
                 "critical path and the offload hides completely — the "
                 "co-operative pattern the paper's system class targets")
        return "\n\n".join([table.render(), notes])


def overlap_experiment(accel_n: int = 4096, offload_m: int = 16,
                       host_ns: typing.Sequence[int] = (64, 256, 512,
                                                        1024, 2048),
                       **config_overrides) -> OverlapExperiment:
    """Measure sequential vs overlapped host+accelerator execution."""
    from repro.core.offload import offload_daxpy, run_on_host
    from repro.core.overlap import offload_overlapped
    from repro.soc.manticore import ManticoreSystem

    config = SoCConfig.extended(**config_overrides)
    offload_m = min(offload_m, config.num_clusters)
    rows = {}
    for host_n in host_ns:
        system = ManticoreSystem(config)
        accel = offload_daxpy(system, n=accel_n, num_clusters=offload_m)
        host = run_on_host(system, "scale", host_n)
        sequential = accel.runtime_cycles + host.runtime_cycles
        overlapped = offload_overlapped(
            ManticoreSystem(config), "daxpy", accel_n, offload_m,
            "scale", host_n)
        rows[host_n] = (sequential, overlapped.total_cycles,
                        overlapped.exposed_wait_cycles)
    return OverlapExperiment(accel_n=accel_n, num_clusters=offload_m,
                             rows=rows)
