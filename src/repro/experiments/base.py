"""Shared infrastructure for the experiment families.

Every experiment function returns a frozen dataclass derived from
:class:`Experiment`, which contributes the cross-cutting result
surface:

- :meth:`Experiment.render` — the human-readable report (tables,
  charts, notes) printed by the CLI and embedded in ``repro report``;
- :meth:`Experiment.to_csv` — the same tabular payload as
  machine-readable CSV, built from each experiment's
  :meth:`~Experiment.csv_columns` / :meth:`~Experiment.csv_rows`;
- :meth:`Experiment.assert_band` — guard a measured quantity against
  an accepted band, raising :class:`~repro.errors.ExperimentError`
  with a self-describing message (the integration tests' idiom).

The module also hosts the helpers every family shares: the paper's
baseline/extended config pair and the fabric-size guard for the M axis.
"""

from __future__ import annotations

import typing

from repro.errors import DecisionError, ExperimentError
from repro.soc.config import SoCConfig

#: Fig. 1 (right) problem sizes: the paper calls 1024 a "low" vector
#: dimension and reports speedup decreasing with N, so the figure's
#: sizes run upward from 1024 (see DESIGN.md E2).
FIG1_RIGHT_N_VALUES = (1024, 2048, 4096, 8192)

#: The kernel generality ablation's kernels and sizes.
GENERALITY_KERNELS = ("daxpy", "axpby", "memcpy", "scale", "vecsum", "dot")


class Experiment:
    """Base class of every experiment result dataclass.

    Subclasses implement :meth:`render` (always) and the CSV pair
    :meth:`csv_columns` / :meth:`csv_rows` (for tabular results).
    """

    def render(self) -> str:
        """Human-readable report: tables, charts, interpretation notes."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement render()")

    # ------------------------------------------------------------------
    # CSV export
    # ------------------------------------------------------------------
    def csv_columns(self) -> typing.Sequence[str]:
        """Column headers of the experiment's principal table."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement csv_columns()")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        """Rows of the experiment's principal table, header order."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement csv_rows()")

    def to_csv(self) -> str:
        """The experiment's principal table as CSV text."""
        lines = [",".join(self.csv_columns())]
        for row in self.csv_rows():
            lines.append(",".join(_csv_cell(value) for value in row))
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Acceptance bands
    # ------------------------------------------------------------------
    def assert_band(self, value: float, lo: float, hi: float,
                    label: str) -> float:
        """Require ``lo <= value <= hi``; return ``value`` on success.

        Raises
        ------
        ExperimentError
            Naming the experiment, the quantity and the violated band —
            so a failed reproduction claim reads as one sentence.
        """
        if not lo <= value <= hi:
            raise ExperimentError(
                f"{type(self).__name__}: {label} = {value!r} outside the "
                f"accepted band [{lo!r}, {hi!r}]")
        return value


def _csv_cell(value: typing.Any) -> str:
    """Render one CSV cell; floats keep full precision via repr."""
    if isinstance(value, float):
        return repr(value)
    if value is None:
        return ""
    return str(value)


def usable_ms(m_values: typing.Sequence[int], config: SoCConfig,
              tile_group: typing.Optional[str] = None) -> typing.List[int]:
    """Drop M values wider than the fabric (CLI runs with small fabrics).

    With ``tile_group``, the bound is that group's tile count instead
    of the whole fabric — per-class sweeps on heterogeneous configs.
    """
    if tile_group is None:
        limit, what = config.num_clusters, "-cluster fabric"
    else:
        limit, what = (config.tile_group(tile_group).count,
                       f"-tile group {tile_group!r}")
    usable = [m for m in m_values if m <= limit]
    if not usable:
        raise DecisionError(
            f"no requested cluster count fits the {limit}{what}")
    return usable


def paper_configs(**overrides) -> typing.Tuple[SoCConfig, SoCConfig]:
    """The two designs Fig. 1 compares, with shared overrides applied."""
    return (SoCConfig.baseline(**overrides), SoCConfig.extended(**overrides))
