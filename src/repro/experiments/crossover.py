"""E7: the offload crossover — when does offloading start to pay?"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.core.offload import DEFAULT_MAX_CYCLES, offload, run_on_host
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class CrossoverRow:
    """One kernel's measured host-vs-offload crossover."""

    kernel: str
    crossover_n: typing.Optional[int]   # None = never crosses in range
    host_cycles_at_crossover: typing.Optional[int]
    offload_cycles_at_crossover: typing.Optional[int]


@dataclasses.dataclass(frozen=True)
class CrossoverExperiment(Experiment):
    """Measured host execution vs best offload across problem sizes.

    Quantifies the paper's motivation: offload overheads set a floor,
    so below some problem size the host wins and the offload decision
    must say "don't".  Both sides are *measured* on the simulator (the
    host path via :func:`repro.core.offload.run_on_host`).
    """

    rows: typing.Tuple[CrossoverRow, ...]
    curves: typing.Mapping[str, typing.Mapping[int, typing.Tuple[int, int]]]
    #: (host, offload) cycles per (kernel, N)

    def csv_columns(self) -> typing.Sequence[str]:
        return ("kernel", "n", "host_cycles", "offload_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for kernel, curve in self.curves.items():
            for n, (host_cycles, offload_cycles) in sorted(curve.items()):
                yield (kernel, n, host_cycles, offload_cycles)

    def render(self) -> str:
        table = Table(["kernel", "crossover N", "host [cycles]",
                       "offload [cycles]"],
                      title="E7: smallest N where offloading beats host "
                            "execution (measured both ways)")
        for row in self.rows:
            if row.crossover_n is None:
                table.add_row([row.kernel, "> range", "-", "-"])
            else:
                table.add_row([row.kernel, row.crossover_n,
                               row.host_cycles_at_crossover,
                               row.offload_cycles_at_crossover])
        note = ("below the crossover the constant offload overhead "
                "(~370 cycles) dominates and the host's slower loop "
                "still wins — the fine-grained-task motivation of the "
                "paper's introduction")
        return "\n\n".join([table.render(), note])


def crossover_experiment(
        kernels: typing.Sequence[str] = ("daxpy", "memcpy", "dot"),
        n_values: typing.Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
        offload_m: int = 32, max_cycles: int = DEFAULT_MAX_CYCLES,
        tile_group: typing.Optional[str] = None,
        **config_overrides) -> CrossoverExperiment:
    """Measure host execution and the widest offload across sizes.

    ``max_cycles`` bounds each individual measurement (host and
    offloaded alike).  ``tile_group`` targets the offloads at one
    group of a heterogeneous fabric (pass ``fabric=...`` in the
    overrides) — the crossover point moves per tile class.
    """
    from repro.soc.manticore import ManticoreSystem

    config = SoCConfig.extended(**config_overrides)
    limit = (config.num_clusters if tile_group is None
             else config.tile_group(tile_group).count)
    offload_m = min(offload_m, limit)
    rows = []
    curves: typing.Dict[str, typing.Dict[int, typing.Tuple[int, int]]] = {}
    for kernel in kernels:
        curve: typing.Dict[int, typing.Tuple[int, int]] = {}
        crossover = None
        for n in n_values:
            host = run_on_host(ManticoreSystem(config), kernel, n,
                               max_cycles=max_cycles)
            accel = offload(ManticoreSystem(config), kernel, n, offload_m,
                            max_cycles=max_cycles, tile_group=tile_group)
            curve[n] = (host.runtime_cycles, accel.runtime_cycles)
            if crossover is None and accel.runtime_cycles < host.runtime_cycles:
                crossover = n
        curves[kernel] = curve
        if crossover is None:
            rows.append(CrossoverRow(kernel=kernel, crossover_n=None,
                                     host_cycles_at_crossover=None,
                                     offload_cycles_at_crossover=None))
        else:
            host_c, accel_c = curve[crossover]
            rows.append(CrossoverRow(kernel=kernel, crossover_n=crossover,
                                     host_cycles_at_crossover=host_c,
                                     offload_cycles_at_crossover=accel_c))
    return CrossoverExperiment(rows=tuple(rows), curves=curves)
