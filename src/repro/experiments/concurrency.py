"""E10: space sharing — concurrent jobs amortize the offload overhead."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.errors import DecisionError
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class ConcurrencyExperiment(Experiment):
    """Two equal jobs: sequential full-fabric vs concurrent half-fabric."""

    n: int
    sequential_cycles: typing.Dict[int, int]   # per-job width -> total
    concurrent_cycles: typing.Dict[int, int]   # per-job width -> makespan

    def csv_columns(self) -> typing.Sequence[str]:
        return ("per_job_m", "sequential_cycles", "concurrent_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for m in sorted(self.concurrent_cycles):
            yield (m, self.sequential_cycles[m], self.concurrent_cycles[m])

    def render(self) -> str:
        table = Table(["per-job M", "sequential (2 jobs, 2M wide each)",
                       "concurrent (M+M)", "speedup"],
                      title=f"E10: two DAXPY n={self.n} jobs, "
                            "time-shared vs space-shared")
        for m in sorted(self.concurrent_cycles):
            seq = self.sequential_cycles[m]
            conc = self.concurrent_cycles[m]
            table.add_row([m, seq, conc, seq / conc])
        notes = ("space sharing overlaps the two jobs' constant offload "
                 "overheads (the shared memory channels serialize the "
                 "same aggregate DMA either way), amortizing exactly the "
                 "cost the paper attacks; one sync-unit threshold equal "
                 "to the total cluster count acts as the cross-job "
                 "completion barrier")
        return "\n\n".join([table.render(), notes])


def concurrency_experiment(n: int = 4096,
                           per_job_m: typing.Sequence[int] = (4, 8, 16),
                           **config_overrides) -> ConcurrencyExperiment:
    """Compare time-shared and space-shared execution of two jobs.

    The sequential arm gives each job the *doubled* width (the whole
    allocation), so both arms use identical hardware; only the schedule
    differs.
    """
    from repro.core.concurrent import ConcurrentJob, offload_concurrent
    from repro.core.offload import offload_daxpy
    from repro.soc.manticore import ManticoreSystem

    config = SoCConfig.extended(**config_overrides)
    usable = [m for m in per_job_m if 2 * m <= config.num_clusters]
    if not usable:
        # Small fabrics (CLI --clusters): halve the machine per job.
        if config.num_clusters < 2:
            raise DecisionError(
                "space sharing needs at least two clusters")
        usable = [config.num_clusters // 2]
    sequential, concurrent = {}, {}
    for m in usable:
        system = ManticoreSystem(config)
        first = offload_daxpy(system, n=n, num_clusters=2 * m, seed=1)
        second = offload_daxpy(system, n=n, num_clusters=2 * m, seed=2)
        sequential[m] = first.runtime_cycles + second.runtime_cycles

        result = offload_concurrent(ManticoreSystem(config), [
            ConcurrentJob("daxpy", n, m, seed=1),
            ConcurrentJob("daxpy", n, m, seed=2),
        ])
        concurrent[m] = result.makespan_cycles
    if not concurrent:
        raise DecisionError(
            "no per-job width fits twice into the fabric; enlarge it")
    return ConcurrencyExperiment(n=n, sequential_cycles=sequential,
                                 concurrent_cycles=concurrent)
