"""A3: model generality — does Eq. 1's family fit every kernel?"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.fitting import FitReport, fit_report
from repro.analysis.tables import Table
from repro.core.mape import PAPER_M_VALUES, PAPER_N_VALUES
from repro.core.model import OffloadModel
from repro.core.sweep import sweep
from repro.experiments.base import Experiment, GENERALITY_KERNELS, usable_ms
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class KernelGenerality(Experiment):
    """Fitted model + MAPE per kernel (does Eq. 1's family generalize?)."""

    fits: typing.Dict[str, FitReport]

    def csv_columns(self) -> typing.Sequence[str]:
        return ("kernel", "t0", "mem_coeff", "compute_coeff",
                "mape_percent", "r_squared")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for name, report in self.fits.items():
            model = report.model
            yield (name, model.t0, model.mem_coeff, model.compute_coeff,
                   report.mape_percent, report.r_squared)

    def render(self) -> str:
        table = Table(["kernel", "t0", "mem coeff", "compute coeff",
                       "MAPE [%]", "R^2"],
                      title="A3: Eq.-1 model family fitted per kernel "
                            "(extended design)")
        for name, report in self.fits.items():
            model = report.model
            table.add_row([name, model.t0, model.mem_coeff,
                           model.compute_coeff, report.mape_percent,
                           report.r_squared])
        return table.render()


def kernel_generality(
        kernels: typing.Sequence[str] = GENERALITY_KERNELS,
        n_values: typing.Sequence[int] = PAPER_N_VALUES,
        m_values: typing.Sequence[int] = PAPER_M_VALUES,
        jobs: int = 1, tile_group: typing.Optional[str] = None,
        **config_overrides) -> KernelGenerality:
    """Fit the model family to every kernel's sweep.

    ``tile_group`` restricts the sweeps to one group of a
    heterogeneous fabric (pass ``fabric=...`` in the overrides), so
    the family's generality can be checked per tile class.
    """
    config = SoCConfig.extended(**config_overrides)
    m_values = usable_ms(m_values, config, tile_group)
    fits = {}
    for kernel in kernels:
        result = sweep(config, kernel, n_values, m_values, jobs=jobs,
                       tile_group=tile_group)
        model = OffloadModel.fit(result.triples(), label=f"fitted {kernel}")
        fits[kernel] = fit_report(model, result.triples())
    return KernelGenerality(fits=fits)
