"""A1/A2/A4/A5: the ablations — features, dispatch cost, polling, protocol."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.stats import crossover_m
from repro.analysis.tables import Table
from repro.core.mape import PAPER_M_VALUES
from repro.core.model import OffloadModel
from repro.core.sweep import sweep
from repro.experiments.base import Experiment, usable_ms
from repro.experiments.model import fit_model
from repro.soc.config import SoCConfig


# ======================================================================
# A1: multicast vs sync-unit contributions
# ======================================================================
@dataclasses.dataclass(frozen=True)
class FeatureAblation(Experiment):
    """Runtime vs M for all four hardware/software variant pairings."""

    n: int
    runtimes: typing.Dict[str, typing.Dict[int, int]]  # variant -> M -> t

    def csv_columns(self) -> typing.Sequence[str]:
        return ("variant", "m", "runtime_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for variant, curve in self.runtimes.items():
            for m in sorted(curve):
                yield (variant, m, curve[m])

    def render(self) -> str:
        variants = list(self.runtimes)
        ms = sorted(next(iter(self.runtimes.values())))
        table = Table(["M"] + variants,
                      title=f"A1: feature ablation, DAXPY n={self.n} "
                            "(cycles)")
        for m in ms:
            table.add_row([m] + [self.runtimes[v][m] for v in variants])
        return table.render()


def ablation_features(n: int = 1024,
                      m_values: typing.Sequence[int] = PAPER_M_VALUES,
                      jobs: int = 1, **config_overrides) -> FeatureAblation:
    """Isolate each extension: baseline, each alone, both together."""
    config = SoCConfig.extended(**config_overrides)  # HW has everything
    m_values = usable_ms(m_values, config)
    runtimes = {}
    for variant in ("baseline", "multicast_only", "hw_sync_only", "extended"):
        result = sweep(config, "daxpy", [n], m_values, variant=variant,
                       jobs=jobs)
        runtimes[variant] = result.runtimes_by_m(n)
    return FeatureAblation(n=n, runtimes=runtimes)


# ======================================================================
# A5: double-buffered execution vs the paper's phased protocol
# ======================================================================
@dataclasses.dataclass(frozen=True)
class DoubleBufferAblation(Experiment):
    """Phased vs double-buffered runtimes across M (and the model's fate)."""

    n: int
    phased: typing.Dict[int, int]
    double_buffered: typing.Dict[int, int]
    phased_model: OffloadModel
    dbuf_mape_vs_phased_model: float

    def csv_columns(self) -> typing.Sequence[str]:
        return ("m", "phased_cycles", "double_buffered_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for m in sorted(self.phased):
            yield (m, self.phased[m], self.double_buffered[m])

    def render(self) -> str:
        table = Table(["M", "phased [cycles]", "double-buffered [cycles]",
                       "speedup"],
                      title=f"A5: execution-protocol ablation, DAXPY "
                            f"n={self.n}")
        for m in sorted(self.phased):
            table.add_row([m, self.phased[m], self.double_buffered[m],
                           self.phased[m] / self.double_buffered[m]])
        notes = (
            "double buffering overlaps the DMA and compute phases, so the "
            "additive Eq.-1 structure no longer describes it: the phased "
            "model mispredicts the double-buffered runtimes by "
            f"{self.dbuf_mape_vs_phased_model:.1f} % MAPE (vs <1 % for the "
            "phased protocol).  The overlap pays most at narrow offloads, "
            "where the memory term dominates.")
        return "\n\n".join([table.render(), notes])


def ablation_double_buffer(n: int = 8192,
                           m_values: typing.Sequence[int] = PAPER_M_VALUES,
                           **config_overrides) -> DoubleBufferAblation:
    """Compare the two device execution protocols on large DAXPYs."""
    from repro.core.mape import mape
    from repro.core.offload import offload as run_offload
    from repro.soc.manticore import ManticoreSystem

    config = SoCConfig.extended(**config_overrides)
    m_values = usable_ms(m_values, config)
    phased, dbuf = {}, {}
    for m in m_values:
        phased[m] = run_offload(ManticoreSystem(config), "daxpy", n, m,
                                exec_mode="phased").runtime_cycles
        dbuf[m] = run_offload(ManticoreSystem(config), "daxpy", n, m,
                              exec_mode="double_buffered").runtime_cycles
    model = fit_model(**config_overrides).report.model
    predictions = [model.predict(m, n) for m in m_values]
    error = mape([dbuf[m] for m in m_values], predictions)
    return DoubleBufferAblation(
        n=n, phased=phased, double_buffered=dbuf, phased_model=model,
        dbuf_mape_vs_phased_model=error)


# ======================================================================
# A2: dispatch-cost sensitivity
# ======================================================================
@dataclasses.dataclass(frozen=True)
class DispatchAblation(Experiment):
    """Baseline optimum M as a function of per-cluster dispatch cost."""

    n: int
    optima: typing.Dict[int, int]          # store occupancy -> best M
    curves: typing.Dict[int, typing.Dict[int, int]]

    def csv_columns(self) -> typing.Sequence[str]:
        return ("store_occupancy", "m", "runtime_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for occupancy, curve in sorted(self.curves.items()):
            for m in sorted(curve):
                yield (occupancy, m, curve[m])

    def render(self) -> str:
        table = Table(["store occupancy [cycles]", "baseline optimum M"],
                      title=f"A2: dispatch-cost sensitivity, DAXPY "
                            f"n={self.n}")
        for cost, best in sorted(self.optima.items()):
            table.add_row([cost, best])
        return table.render()


def ablation_dispatch(n: int = 1024,
                      occupancies: typing.Sequence[int] = (2, 4, 8, 16, 32),
                      m_values: typing.Sequence[int] = PAPER_M_VALUES,
                      jobs: int = 1, **config_overrides) -> DispatchAblation:
    """Sweep the host store occupancy; watch the baseline optimum move."""
    optima, curves = {}, {}
    for occupancy in occupancies:
        config = SoCConfig.baseline(noc_store_occupancy=occupancy,
                                    **config_overrides)
        result = sweep(config, "daxpy", [n], usable_ms(m_values, config),
                       jobs=jobs)
        curve = result.runtimes_by_m(n)
        curves[occupancy] = curve
        optima[occupancy] = crossover_m(curve)
    return DispatchAblation(n=n, optima=optima, curves=curves)


# ======================================================================
# A4: poll-period sensitivity
# ======================================================================
@dataclasses.dataclass(frozen=True)
class PollAblation(Experiment):
    """Baseline completion overhead vs the host's poll gap."""

    n: int
    m: int
    runtimes: typing.Dict[int, int]        # poll gap -> runtime
    extended_runtime: int

    def csv_columns(self) -> typing.Sequence[str]:
        return ("poll_gap", "baseline_runtime_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for gap, runtime in sorted(self.runtimes.items()):
            yield (gap, runtime)

    def render(self) -> str:
        table = Table(["poll gap [cycles]", "baseline runtime",
                       "vs extended"],
                      title=f"A4: poll-period sensitivity, DAXPY "
                            f"n={self.n}, M={self.m} "
                            f"(extended: {self.extended_runtime})")
        for gap, runtime in sorted(self.runtimes.items()):
            table.add_row([gap, runtime,
                           runtime / self.extended_runtime])
        return table.render()


def ablation_poll(n: int = 1024, m: int = 8,
                  poll_gaps: typing.Sequence[int] = (0, 4, 16, 64, 256),
                  jobs: int = 1, **config_overrides) -> PollAblation:
    """Sweep the baseline's poll gap; the interrupt path has no analog."""
    runtimes = {}
    for gap in poll_gaps:
        config = SoCConfig.baseline(host_poll_gap_cycles=gap,
                                    **config_overrides)
        m = min(m, config.num_clusters)
        result = sweep(config, "daxpy", [n], [m], jobs=jobs)
        runtimes[gap] = result.runtime(n, m)
    ext = sweep(SoCConfig.extended(**config_overrides), "daxpy", [n], [m],
                jobs=jobs)
    return PollAblation(n=n, m=m, runtimes=runtimes,
                        extended_runtime=ext.runtime(n, m))
