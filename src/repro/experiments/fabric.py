"""E12: fabric selection — which tile class, and how many tiles.

The heterogeneous extension of the paper's Eq. 3 story: instead of
asking *how many* identical clusters a deadline needs, ask *which tile
class* and how many of it.  The experiment builds a mixed fabric (a
Snitch-class group and a wide-vector-class group), sweeps each group
separately, re-fits the Eq.-1 model family per class
(:func:`repro.core.model.fit_class_models`), and then inverts the
per-class models under deadline scenarios
(:func:`repro.core.decision.choose_fabric`), verifying every feasible
answer by simulating the chosen (class, M) on the mixed fabric itself.

The two classes are chosen to *cross*: the wide class pays a heavier
dispatch/decode prefix (larger ``t0``) but computes ~4x faster per
tile (smaller ``c``), so small problems favour Snitch tiles and large
compute-heavy ones favour wide tiles — which is what makes the
decision non-trivial.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.charts import line_chart
from repro.analysis.tables import Table
from repro.core.decision import FabricOption, choose_fabric
from repro.core.model import TileClassModel, fit_class_models
from repro.core.offload import offload
from repro.core.sweep import sweep
from repro.errors import DecisionError
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig
from repro.soc.tiles import TileGroup, get_tile_class

#: Sweep grid for the per-class fits: sizes span the crossing point of
#: the two classes' runtime curves (around N ~ 2.5k for DAXPY).
FABRIC_N_VALUES = (256, 512, 1024, 2048, 4096, 8192)

#: Deadline scenarios ``(n, t_max, objective)``; chosen so each class
#: wins at least once on the default fabric and one scenario is
#: infeasible for every class (the error path stays visible).
FABRIC_SCENARIOS = (
    (1024, 900.0, "power"),
    (4096, 3000.0, "area"),
    (8192, 3600.0, "clusters"),
    (16384, 6200.0, "area"),
    (256, 400.0, "area"),
)


@dataclasses.dataclass(frozen=True)
class FabricScenarioRow:
    """One deadline scenario, fabric-decided and simulation-verified."""

    n: int
    t_max: float
    objective: str
    tile_class: typing.Optional[str]     # None = no class feasible
    num_clusters: typing.Optional[int]
    cost: typing.Optional[float]
    predicted_cycles: typing.Optional[float]
    measured_cycles: typing.Optional[int]
    meets_deadline: typing.Optional[bool]


@dataclasses.dataclass(frozen=True)
class FabricExperiment(Experiment):
    """Per-class model fits + verified fabric-selection scenarios."""

    #: The mixed fabric the experiment ran on, for reports.
    fabric_description: str
    #: Eq.-1 fits per tile class, with in-sample MAPE.
    class_fits: typing.Dict[str, TileClassModel]
    #: Measured runtime vs N per class at the fixed curve width.
    curves: typing.Dict[str, typing.Dict[int, int]]
    #: The M the curves were measured at.
    curve_m: int
    rows: typing.Tuple[FabricScenarioRow, ...]

    def csv_columns(self) -> typing.Sequence[str]:
        return ("n", "t_max", "objective", "tile_class", "num_clusters",
                "cost", "predicted_cycles", "measured_cycles",
                "meets_deadline")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for row in self.rows:
            yield (row.n, row.t_max, row.objective, row.tile_class,
                   row.num_clusters, row.cost, row.predicted_cycles,
                   row.measured_cycles, row.meets_deadline)

    def render(self) -> str:
        fits = Table(
            ["class", "t0", "mem coeff", "compute coeff", "MAPE [%]"],
            title="E12: Eq.-1 model family re-fitted per tile class "
                  f"({self.fabric_description})")
        for name, fit in self.class_fits.items():
            fits.add_row([name, fit.model.t0, fit.model.mem_coeff,
                          fit.model.compute_coeff, fit.mape_percent])
        scenarios = Table(
            ["N", "t_max", "objective", "class", "M", "cost",
             "predicted", "measured", "meets deadline"],
            title="Fabric selection: cheapest (class, M) meeting each "
                  "deadline, verified in simulation")
        for row in self.rows:
            scenarios.add_row([
                row.n, row.t_max, row.objective,
                row.tile_class if row.tile_class is not None
                else "infeasible",
                row.num_clusters if row.num_clusters is not None else "-",
                row.cost if row.cost is not None else "-",
                row.predicted_cycles if row.predicted_cycles is not None
                else "-",
                row.measured_cycles if row.measured_cycles is not None
                else "-",
                row.meets_deadline if row.meets_deadline is not None
                else "-",
            ])
        chart = line_chart(
            {name: {float(n): float(t) for n, t in curve.items()}
             for name, curve in self.curves.items()},
            title=f"measured runtime vs N at M={self.curve_m} "
                  "(curves cross where the wide class's faster compute "
                  "amortizes its dispatch cost)")
        return "\n\n".join([fits.render(), scenarios.render(), chart])


def fabric_experiment(
        n_values: typing.Sequence[int] = FABRIC_N_VALUES,
        m_values: typing.Sequence[int] = (1, 2, 3, 4),
        scenarios: typing.Sequence[
            typing.Tuple[int, float, str]] = FABRIC_SCENARIOS,
        classes: typing.Tuple[str, str] = ("snitch", "vecwide"),
        num_clusters: int = 8, margin: float = 0.02, jobs: int = 1,
        **config_overrides) -> FabricExperiment:
    """Answer "which fabric" for each scenario, end to end.

    Builds a mixed config of ``num_clusters`` tiles split evenly
    between the two ``classes``, sweeps each group, fits per-class
    models, and solves + verifies every ``(n, t_max, objective)``
    scenario.  ``margin`` guard-bands the deadline by the fits'
    validated error before inverting, exactly as the homogeneous
    decision experiment does.
    """
    if not 0.0 <= margin < 1.0:
        raise DecisionError(f"margin must be in [0, 1), got {margin}")
    if num_clusters < 2:
        raise DecisionError(
            f"a mixed fabric needs at least 2 tiles, got {num_clusters}")
    little_name, big_name = classes
    little_count = num_clusters - num_clusters // 2
    big_count = num_clusters // 2
    groups = {
        little_name: TileGroup("little", little_name, little_count),
        big_name: TileGroup("big", big_name, big_count),
    }
    config = SoCConfig.with_fabric(
        (groups[little_name], groups[big_name]),
        multicast=True, hw_sync=True, **config_overrides)

    # Per-group sweeps and per-class fits.
    triples: typing.Dict[
        str, typing.List[typing.Tuple[int, int, float]]] = {}
    curves: typing.Dict[str, typing.Dict[int, int]] = {}
    curve_m = min(2, min(group.count for group in groups.values()))
    for class_name, group in groups.items():
        usable = [m for m in m_values if m <= group.count]
        if not usable:
            raise DecisionError(
                f"no requested M fits tile group {group.name!r} "
                f"({group.count} tiles)")
        result = sweep(config, "daxpy", n_values, usable,
                       scalars={"a": 2.0}, jobs=jobs,
                       tile_group=group.name)
        triples[class_name] = result.triples()
        curves[class_name] = {
            n: result.runtime(n, curve_m) for n in n_values}
    fits = fit_class_models(triples)

    # Decision scenarios over the fitted per-class models.
    options = [
        FabricOption(
            tile_class=class_name,
            model=fits[class_name].model,
            max_clusters=groups[class_name].count,
            tile_area_mm2=get_tile_class(class_name).area_mm2,
            tile_power=get_tile_class(class_name).tile_power)
        for class_name in classes
    ]
    group_of_class = {name: group.name for name, group in groups.items()}
    rows = []
    for n, t_max, objective in scenarios:
        try:
            decision = choose_fabric(options, n, t_max * (1 - margin),
                                     objective=objective)
        except DecisionError:
            rows.append(FabricScenarioRow(
                n=n, t_max=t_max, objective=objective, tile_class=None,
                num_clusters=None, cost=None, predicted_cycles=None,
                measured_cycles=None, meets_deadline=None))
            continue
        from repro.soc.manticore import ManticoreSystem
        measured = offload(
            ManticoreSystem(config), "daxpy", n, decision.num_clusters,
            scalars={"a": 2.0},
            tile_group=group_of_class[decision.tile_class]).runtime_cycles
        rows.append(FabricScenarioRow(
            n=n, t_max=t_max, objective=objective,
            tile_class=decision.tile_class,
            num_clusters=decision.num_clusters,
            cost=decision.cost,
            predicted_cycles=decision.predicted_cycles,
            measured_cycles=measured,
            meets_deadline=measured <= t_max))
    return FabricExperiment(
        fabric_description=config.describe(),
        class_fits=fits, curves=curves, curve_m=curve_m,
        rows=tuple(rows))
