"""E6: Eq. 3 — the offload decision under a deadline, verified."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.core.decision import min_clusters_for_deadline
from repro.core.model import OffloadModel
from repro.core.offload import offload
from repro.errors import DecisionError
from repro.experiments.base import Experiment
from repro.experiments.model import fit_model
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class DecisionRow:
    """One deadline scenario, model-decided and simulation-verified."""

    n: int
    t_max: float
    m_min: typing.Optional[int]          # None = infeasible
    predicted_cycles: typing.Optional[float]
    measured_cycles: typing.Optional[int]
    meets_deadline: typing.Optional[bool]
    tighter_fails: typing.Optional[bool]  # does M_min - 1 miss the deadline?


@dataclasses.dataclass(frozen=True)
class DecisionExperiment(Experiment):
    """Eq. 3 evaluated and verified over deadline scenarios."""

    model: OffloadModel
    rows: typing.Tuple[DecisionRow, ...]

    def csv_columns(self) -> typing.Sequence[str]:
        return ("n", "t_max", "m_min", "predicted_cycles",
                "measured_cycles", "meets_deadline", "tighter_fails")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for row in self.rows:
            yield (row.n, row.t_max, row.m_min, row.predicted_cycles,
                   row.measured_cycles, row.meets_deadline,
                   row.tighter_fails)

    def render(self) -> str:
        table = Table(
            ["N", "t_max", "M_min (Eq. 3)", "predicted", "measured",
             "meets deadline", "M_min-1 fails"],
            title="Eq. 3: minimum clusters under a deadline, verified in "
                  "simulation")
        for row in self.rows:
            table.add_row([
                row.n, row.t_max,
                row.m_min if row.m_min is not None else "infeasible",
                row.predicted_cycles if row.predicted_cycles is not None else "-",
                row.measured_cycles if row.measured_cycles is not None else "-",
                row.meets_deadline if row.meets_deadline is not None else "-",
                row.tighter_fails if row.tighter_fails is not None else "-",
            ])
        return table.render()


def decision_experiment(
        scenarios: typing.Sequence[typing.Tuple[int, float]] = (
            (1024, 700.0), (1024, 800.0), (1024, 1000.0), (1024, 620.0),
            (512, 600.0), (2048, 1200.0), (256, 500.0)),
        max_clusters: int = 32, margin: float = 0.01, jobs: int = 1,
        **config_overrides) -> DecisionExperiment:
    """Solve Eq. 3 for each (N, t_max) scenario and verify by simulation.

    ``margin`` guard-bands the deadline by the model's validated error
    bound (Eq. 2 shows MAPE < 1 %, so deciding against ``0.99·t_max``
    guarantees the measured runtime meets ``t_max``).  Verification runs
    the *actual simulated system* at M_min (deadline must hold) and at
    M_min − 1 (deadline must fail — minimality).
    """
    if not 0.0 <= margin < 1.0:
        raise DecisionError(f"margin must be in [0, 1), got {margin}")
    config = SoCConfig.extended(**config_overrides)
    max_clusters = min(max_clusters, config.num_clusters)
    fit = fit_model(jobs=jobs, **config_overrides)
    model = fit.model
    rows = []
    for n, t_max in scenarios:
        try:
            m_min = min_clusters_for_deadline(model, n, t_max * (1 - margin),
                                              max_clusters=max_clusters)
        except DecisionError:
            rows.append(DecisionRow(n=n, t_max=t_max, m_min=None,
                                    predicted_cycles=None,
                                    measured_cycles=None,
                                    meets_deadline=None, tighter_fails=None))
            continue
        from repro.soc.manticore import ManticoreSystem
        measured = offload(ManticoreSystem(config), "daxpy", n,
                           m_min).runtime_cycles
        tighter_fails = None
        if m_min > 1:
            tighter = offload(ManticoreSystem(config), "daxpy", n,
                              m_min - 1).runtime_cycles
            tighter_fails = tighter > t_max
        rows.append(DecisionRow(
            n=n, t_max=t_max, m_min=m_min,
            predicted_cycles=model.predict(m_min, n),
            measured_cycles=measured,
            meets_deadline=measured <= t_max,
            tighter_fails=tighter_fails))
    return DecisionExperiment(model=model, rows=tuple(rows))
