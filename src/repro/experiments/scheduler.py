"""E9: workload-scale decisions — the model as a scheduler."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.core.offload import DEFAULT_MAX_CYCLES
from repro.experiments.base import Experiment
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class SchedulerExperiment(Experiment):
    """A fine-grained job stream under different placement policies."""

    num_jobs: int
    makespans: typing.Dict[str, int]
    offloaded: typing.Dict[str, int]

    @property
    def adaptive_name(self) -> str:
        return "model_driven"

    def speedup_over(self, policy: str) -> float:
        return self.makespans[policy] / self.makespans[self.adaptive_name]

    def csv_columns(self) -> typing.Sequence[str]:
        return ("policy", "makespan_cycles", "jobs_offloaded")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for policy in self.makespans:
            yield (policy, self.makespans[policy], self.offloaded[policy])

    def render(self) -> str:
        table = Table(["policy", "makespan [cycles]", "jobs offloaded",
                       "vs model-driven"],
                      title=f"E9: {self.num_jobs}-job stream under "
                            "placement policies")
        best = self.makespans[self.adaptive_name]
        for policy in self.makespans:
            table.add_row([policy, self.makespans[policy],
                           self.offloaded[policy],
                           self.makespans[policy] / best])
        notes = ("the model-driven policy (the paper's Eq.-1/Eq.-3 "
                 "machinery per job) keeps fine-grained jobs on the host "
                 "and sends large ones wide — beating every static "
                 "policy on a mixed stream")
        return "\n\n".join([table.render(), notes])


def scheduler_experiment(num_jobs: int = 40, seed: int = 7,
                         max_cycles: int = DEFAULT_MAX_CYCLES,
                         **config_overrides) -> SchedulerExperiment:
    """Compare placement policies on one reproducible job stream.

    ``max_cycles`` bounds each job's simulation within every policy run.
    """
    from repro.soc.manticore import ManticoreSystem
    from repro.workload import (
        AlwaysHost,
        AlwaysOffload,
        characterize_platform,
        generate_workload,
        run_workload,
    )

    config = SoCConfig.extended(**config_overrides)
    kernels = ("daxpy", "memcpy", "scale", "dot")
    jobs = generate_workload(num_jobs, kernels=kernels, seed=seed)
    policies = [
        AlwaysHost(),
        AlwaysOffload(num_clusters=min(8, config.num_clusters)),
        AlwaysOffload(num_clusters=config.num_clusters),
        characterize_platform(config, kernels),
    ]
    makespans, offloaded = {}, {}
    for policy in policies:
        result = run_workload(ManticoreSystem(config), jobs, policy,
                              max_cycles=max_cycles)
        # Keyed by the *resolved* name: a clamped fixed-width policy
        # reports the width that actually ran, not the requested one.
        makespans[result.policy_name] = result.makespan_cycles
        offloaded[result.policy_name] = result.offloaded_jobs
    return SchedulerExperiment(num_jobs=num_jobs, makespans=makespans,
                               offloaded=offloaded)
