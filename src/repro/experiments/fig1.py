"""E1/E2: the paper's headline figure, both panels.

Fig. 1 (left) sweeps the offload width M at fixed N and compares the
baseline and extended designs; Fig. 1 (right) generalizes the
comparison into a speedup grid over (N, M).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.charts import line_chart
from repro.analysis.stats import crossover_m
from repro.analysis.tables import Table
from repro.core.mape import PAPER_M_VALUES
from repro.core.sweep import sweep
from repro.experiments.base import (
    FIG1_RIGHT_N_VALUES,
    Experiment,
    paper_configs,
    usable_ms,
)


@dataclasses.dataclass(frozen=True)
class Fig1Left(Experiment):
    """Runtime of an N-element DAXPY vs cluster count, both designs."""

    n: int
    baseline: typing.Dict[int, int]
    extended: typing.Dict[int, int]

    @property
    def gap_at_max_m(self) -> int:
        """Baseline-minus-extended cycles at the widest offload."""
        m = max(self.extended)
        return self.baseline[m] - self.extended[m]

    @property
    def max_speedup(self) -> float:
        """Best baseline/extended ratio over the M axis."""
        return max(self.baseline[m] / self.extended[m] for m in self.extended)

    @property
    def baseline_optimum_m(self) -> int:
        """The interior minimum of the baseline curve."""
        return crossover_m(self.baseline)

    def csv_columns(self) -> typing.Sequence[str]:
        return ("m", "baseline_cycles", "extended_cycles", "speedup")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for m in sorted(self.extended):
            yield (m, self.baseline[m], self.extended[m],
                   self.baseline[m] / self.extended[m])

    def render(self) -> str:
        table = Table(["M", "baseline [cycles]", "extended [cycles]",
                       "speedup"],
                      title=f"Fig. 1 (left): DAXPY n={self.n} runtime vs "
                            "cluster count")
        for m in sorted(self.extended):
            table.add_row([m, self.baseline[m], self.extended[m],
                           self.baseline[m] / self.extended[m]])
        chart = line_chart(
            {"baseline": {m: float(t) for m, t in self.baseline.items()},
             "extended": {m: float(t) for m, t in self.extended.items()}},
            title="runtime [cycles] vs M")
        notes = (
            f"baseline optimum at M={self.baseline_optimum_m}; "
            f"gap at M={max(self.extended)}: {self.gap_at_max_m} cycles; "
            f"max speedup {100 * (self.max_speedup - 1):.1f} % "
            "(paper: >300 cycles, 47.9 %)")
        return "\n\n".join([table.render(), chart, notes])


def fig1_left(n: int = 1024,
              m_values: typing.Sequence[int] = PAPER_M_VALUES,
              jobs: int = 1, **config_overrides) -> Fig1Left:
    """Measure Fig. 1 (left): runtime vs M for both designs."""
    base_cfg, ext_cfg = paper_configs(**config_overrides)
    m_values = usable_ms(m_values, base_cfg)
    base = sweep(base_cfg, "daxpy", [n], m_values, jobs=jobs)
    ext = sweep(ext_cfg, "daxpy", [n], m_values, jobs=jobs)
    return Fig1Left(n=n, baseline=base.runtimes_by_m(n),
                    extended=ext.runtimes_by_m(n))


@dataclasses.dataclass(frozen=True)
class Fig1Right(Experiment):
    """Speedup of the extended design over the baseline across (N, M)."""

    speedups: typing.Dict[typing.Tuple[int, int], float]  # (M, N) -> ratio

    def n_values(self) -> typing.List[int]:
        return sorted({n for _m, n in self.speedups})

    def m_values(self) -> typing.List[int]:
        return sorted({m for m, _n in self.speedups})

    def by_n(self, n: int) -> typing.Dict[int, float]:
        return {m: s for (m, nn), s in sorted(self.speedups.items())
                if nn == n}

    @property
    def min_speedup(self) -> float:
        return min(self.speedups.values())

    @property
    def max_speedup(self) -> float:
        return max(self.speedups.values())

    def csv_columns(self) -> typing.Sequence[str]:
        return ("n", "m", "speedup")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for n in self.n_values():
            for m, speedup in self.by_n(n).items():
                yield (n, m, speedup)

    def render(self) -> str:
        ms = self.m_values()
        table = Table(["N \\ M"] + [str(m) for m in ms],
                      title="Fig. 1 (right): speedup of extended over "
                            "baseline")
        for n in self.n_values():
            row = self.by_n(n)
            table.add_row([n] + [row[m] for m in ms])
        notes = (f"speedup range {self.min_speedup:.3f} .. "
                 f"{self.max_speedup:.3f}; always > 1 and decreasing "
                 "with N at fixed M (paper's claims)")
        return "\n\n".join([table.render(), notes])


def fig1_right(n_values: typing.Sequence[int] = FIG1_RIGHT_N_VALUES,
               m_values: typing.Sequence[int] = PAPER_M_VALUES,
               jobs: int = 1, **config_overrides) -> Fig1Right:
    """Measure Fig. 1 (right): the speedup grid."""
    base_cfg, ext_cfg = paper_configs(**config_overrides)
    m_values = usable_ms(m_values, base_cfg)
    base = sweep(base_cfg, "daxpy", n_values, m_values, jobs=jobs)
    ext = sweep(ext_cfg, "daxpy", n_values, m_values, jobs=jobs)
    return Fig1Right(speedups=ext.speedup_grid(base))
