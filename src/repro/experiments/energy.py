"""E8: energy — the other half of "runtime and energy consumption"."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.core.mape import PAPER_M_VALUES
from repro.experiments.base import Experiment, paper_configs, usable_ms


@dataclasses.dataclass(frozen=True)
class EnergyExperiment(Experiment):
    """Energy of one DAXPY offload across M, baseline vs extended."""

    n: int
    baseline_pj: typing.Dict[int, float]
    extended_pj: typing.Dict[int, float]
    baseline_cycles: typing.Dict[int, int]
    extended_cycles: typing.Dict[int, int]

    def energy_optimal_m(self, variant: str = "extended") -> int:
        table = (self.extended_pj if variant == "extended"
                 else self.baseline_pj)
        return min(sorted(table), key=lambda m: (table[m], m))

    def runtime_optimal_m(self, variant: str = "extended") -> int:
        table = (self.extended_cycles if variant == "extended"
                 else self.baseline_cycles)
        return min(sorted(table), key=lambda m: (table[m], m))

    def csv_columns(self) -> typing.Sequence[str]:
        return ("m", "baseline_pj", "extended_pj", "baseline_cycles",
                "extended_cycles")

    def csv_rows(self) -> typing.Iterable[typing.Sequence[typing.Any]]:
        for m in sorted(self.extended_pj):
            yield (m, self.baseline_pj[m], self.extended_pj[m],
                   self.baseline_cycles[m], self.extended_cycles[m])

    def render(self) -> str:
        table = Table(["M", "baseline [nJ]", "extended [nJ]",
                       "energy saving", "runtime saving"],
                      title=f"E8: offload energy, DAXPY n={self.n} "
                            "(placeholder 22nm-class power budget)")
        for m in sorted(self.extended_pj):
            table.add_row([
                m,
                self.baseline_pj[m] / 1000.0,
                self.extended_pj[m] / 1000.0,
                self.baseline_pj[m] / self.extended_pj[m],
                self.baseline_cycles[m] / self.extended_cycles[m],
            ])
        notes = (
            f"energy-optimal M: extended={self.energy_optimal_m()} vs "
            f"runtime-optimal M: extended={self.runtime_optimal_m()} — "
            "wide offloads buy latency with watts; and the extensions "
            "save energy on top of time because the host sleeps in WFI "
            "instead of polling, and dispatch traffic shrinks")
        return "\n\n".join([table.render(), notes])


def energy_experiment(n: int = 1024,
                      m_values: typing.Sequence[int] = PAPER_M_VALUES,
                      tile_group: typing.Optional[str] = None,
                      **config_overrides) -> EnergyExperiment:
    """Measure per-offload energy for both designs across M.

    ``tile_group`` targets the offloads at one group of a
    heterogeneous fabric (pass ``fabric=...`` in the overrides); the
    meter's per-worker counters follow each tile class's core count.
    """
    from repro.energy import measure_offload_energy

    base_cfg, ext_cfg = paper_configs(**config_overrides)
    m_values = usable_ms(m_values, base_cfg, tile_group)
    baseline_pj, extended_pj = {}, {}
    baseline_cycles, extended_cycles = {}, {}
    for m in m_values:
        breakdown, cycles = measure_offload_energy(base_cfg, "daxpy", n, m,
                                                   tile_group=tile_group)
        baseline_pj[m], baseline_cycles[m] = breakdown.total, cycles
        breakdown, cycles = measure_offload_energy(ext_cfg, "daxpy", n, m,
                                                   tile_group=tile_group)
        extended_pj[m], extended_cycles[m] = breakdown.total, cycles
    return EnergyExperiment(
        n=n, baseline_pj=baseline_pj, extended_pj=extended_pj,
        baseline_cycles=baseline_cycles, extended_cycles=extended_cycles)
