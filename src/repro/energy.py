"""First-order energy accounting for offload experiments.

The paper motivates reducing offload overheads for both "runtime and
energy consumption"; this module quantifies the energy side.  An
:class:`EnergyMeter` snapshots the system's cumulative activity
counters, lets any number of offloads (or host executions) run, and
integrates a :class:`PowerBudget` over the activity deltas:

- the **host** burns active power while executing or polling, and only
  idle power while clock-gated in WFI (the sync-unit extension's energy
  win: the baseline's poll loop keeps the host hot);
- **worker cores** burn active power for their busy cycles and idle
  power otherwise;
- **DM cores** are active from doorbell to completion signal;
- **data movement** costs energy per byte on the shared channels;
- **control traffic** costs energy per interconnect transaction;
- everything else is **static/idle** power × elapsed time.

The default budget's magnitudes are placeholder 22 nm-class numbers
(pJ/cycle = mW at the paper's 1 GHz); they are configuration, not
measurement — substitute your own silicon's numbers.  What the
experiments rely on is only the *structure*: which design keeps which
component busy for how long, which the simulator measures exactly.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class PowerBudget:
    """Per-component power in pJ/cycle (equivalently mW at 1 GHz),
    plus per-event energies in pJ."""

    host_active: float = 250.0
    host_idle: float = 25.0
    worker_active: float = 12.0
    worker_idle: float = 1.2
    dm_core_active: float = 10.0
    dm_core_idle: float = 1.0
    #: Per byte moved on a shared memory channel (covers SRAM/PHY).
    memory_per_byte: float = 1.2
    #: Per control-interconnect transaction.
    noc_per_transaction: float = 6.0
    #: Static power of the uncore (sync unit, barrier, clock tree).
    uncore_static: float = 8.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ConfigError(
                    f"PowerBudget.{field.name} must be >= 0")


#: The default placeholder budget (see the module docstring).
DEFAULT_POWER_BUDGET = PowerBudget()


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one measurement window, by component (pJ)."""

    window_cycles: int
    host: float
    workers: float
    dm_cores: float
    memory: float
    interconnect: float
    uncore: float

    @property
    def total(self) -> float:
        return (self.host + self.workers + self.dm_cores + self.memory
                + self.interconnect + self.uncore)

    def render(self) -> str:
        lines = [f"energy over {self.window_cycles} cycles:"]
        for name in ("host", "workers", "dm_cores", "memory",
                     "interconnect", "uncore"):
            value = getattr(self, name)
            share = 100 * value / self.total if self.total else 0.0
            lines.append(f"  {name:12s} {value:12.1f} pJ ({share:4.1f} %)")
        lines.append(f"  {'total':12s} {self.total:12.1f} pJ")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class _Snapshot:
    cycle: int
    host_slept: int
    worker_busy: int
    bytes_moved: int
    noc_transactions: int
    dm_active: int


class EnergyMeter:
    """Integrates a power budget over a window of system activity.

    Usage::

        meter = EnergyMeter(system)
        meter.start()
        offload_daxpy(system, n=1024, num_clusters=8)
        report = meter.stop()
        print(report.render())

    The meter only reads cumulative counters, so any mix of offloads
    and host executions inside the window is accounted correctly.
    """

    def __init__(self, system: ManticoreSystem,
                 budget: typing.Optional[PowerBudget] = None) -> None:
        self.system = system
        self.budget = budget or DEFAULT_POWER_BUDGET
        self._start: typing.Optional[_Snapshot] = None

    # ------------------------------------------------------------------
    # Counter snapshots
    # ------------------------------------------------------------------
    def _snapshot(self) -> _Snapshot:
        system = self.system
        worker_busy = sum(worker.busy_cycles
                          for cluster in system.clusters
                          for worker in cluster.workers)
        bytes_moved = (system.read_channel.bytes_moved
                       + system.write_channel.bytes_moved)
        dm_active = self._dm_active_cycles()
        return _Snapshot(
            cycle=system.sim.now,
            host_slept=system.host.slept_cycles,
            worker_busy=worker_busy,
            bytes_moved=bytes_moved,
            noc_transactions=len(system.noc.transactions),
            dm_active=dm_active,
        )

    def _dm_active_cycles(self) -> int:
        """Total DM-core active time: doorbell to completion, per job."""
        active = 0
        opened: typing.Dict[str, int] = {}
        for record in self.system.trace.records:
            if not record.source.startswith("cluster"):
                continue
            if record.label == "doorbell":
                opened[record.source] = record.cycle
            elif record.label == "completion_signalled":
                start = opened.pop(record.source, None)
                if start is not None:
                    active += record.cycle - start
        return active

    # ------------------------------------------------------------------
    # Window control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the measurement window at the current cycle."""
        self._start = self._snapshot()

    def stop(self) -> EnergyBreakdown:
        """Close the window and return its energy breakdown.

        Raises
        ------
        ConfigError
            If :meth:`start` was not called first.
        """
        if self._start is None:
            raise ConfigError("EnergyMeter.stop() before start()")
        begin, end = self._start, self._snapshot()
        self._start = None
        budget = self.budget
        window = end.cycle - begin.cycle

        host_slept = end.host_slept - begin.host_slept
        host_active = window - host_slept
        host = (budget.host_active * host_active
                + budget.host_idle * host_slept)

        total_workers = sum(c.num_workers for c in self.system.clusters)
        worker_busy = end.worker_busy - begin.worker_busy
        worker_idle = max(0, total_workers * window - worker_busy)
        workers = (budget.worker_active * worker_busy
                   + budget.worker_idle * worker_idle)

        dm_busy = end.dm_active - begin.dm_active
        dm_idle = max(0, len(self.system.clusters) * window - dm_busy)
        dm_cores = (budget.dm_core_active * dm_busy
                    + budget.dm_core_idle * dm_idle)

        memory = budget.memory_per_byte * (end.bytes_moved
                                           - begin.bytes_moved)
        interconnect = budget.noc_per_transaction * (
            end.noc_transactions - begin.noc_transactions)
        uncore = budget.uncore_static * window

        return EnergyBreakdown(
            window_cycles=window, host=host, workers=workers,
            dm_cores=dm_cores, memory=memory, interconnect=interconnect,
            uncore=uncore)


def measure_offload_energy(config, kernel_name: str, n: int,
                           num_clusters: int,
                           budget: typing.Optional[PowerBudget] = None,
                           **offload_kwargs) -> typing.Tuple[
                               "EnergyBreakdown", int]:
    """Energy and runtime of one offload on a fresh system.

    Returns ``(breakdown, runtime_cycles)``.
    """
    from repro.core.offload import offload

    system = ManticoreSystem(config)
    meter = EnergyMeter(system, budget)
    meter.start()
    result = offload(system, kernel_name, n, num_clusters, **offload_kwargs)
    return meter.stop(), result.runtime_cycles
