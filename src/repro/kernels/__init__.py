"""Device kernels: the jobs the host offloads to the accelerator.

Each kernel couples two models:

- a *functional* model (NumPy): what the job computes, so simulations
  produce bit-checkable results;
- a *timing* model: per-core compute cycles as a calibrated
  cycles-per-element rate plus a setup cost, the way Snitch-style cores
  execute streaming loops (SSR/FREP: the loop body issues one element
  per ``cpe`` cycles once configured).

DAXPY is the paper's kernel (2.6 cycles/element/core, matching Eq. 1's
``2.6·N/(M·8)`` term).  The others let the benchmarks show the runtime
model generalizes (ablation A3 in DESIGN.md).
"""

from repro.kernels.base import Kernel, KernelTiming, WorkSlice, split_range
from repro.kernels.daxpy import DaxpyKernel
from repro.kernels.axpby import AxpbyKernel
from repro.kernels.dot import DotKernel
from repro.kernels.gemv import GemvKernel
from repro.kernels.memcpy import MemcpyKernel
from repro.kernels.relu import ReluKernel
from repro.kernels.registry import get_kernel, kernel_names, register_kernel
from repro.kernels.saxpy import SaxpyKernel
from repro.kernels.scale import ScaleKernel
from repro.kernels.stencil3 import Stencil3Kernel
from repro.kernels.vecsum import VecsumKernel

__all__ = [
    "AxpbyKernel",
    "DaxpyKernel",
    "DotKernel",
    "GemvKernel",
    "Kernel",
    "KernelTiming",
    "MemcpyKernel",
    "ReluKernel",
    "SaxpyKernel",
    "ScaleKernel",
    "Stencil3Kernel",
    "VecsumKernel",
    "WorkSlice",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "split_range",
]
