"""Memcpy: ``y = x`` — the pure-bandwidth kernel (zero flops)."""

from __future__ import annotations

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class MemcpyKernel(Kernel):
    """Element-wise copy; compute is a 1 cycle/element streaming loop."""

    name = "memcpy"
    tileable = True
    scalar_names = ()
    input_names = ("x",)
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=16, cpe_num=1, cpe_den=1)
    host_timing = KernelTiming(setup_cycles=10, cpe_num=2, cpe_den=1)

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        return {"y": (work.lo, inputs["x"][work.lo:work.hi].copy())}
