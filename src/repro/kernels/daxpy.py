"""DAXPY: ``y = a*x + y`` — the paper's kernel.

Per-cluster working set for a slice of ``e`` elements: ``x`` and ``y``
slices in (16·e bytes), updated ``y`` slice out (8·e bytes).  Summed
over all clusters that is 16·N bytes of inbound DMA — the origin of the
paper's ``N/4`` term over a 64 B/cycle channel — plus 8·N outbound
(see DESIGN.md §2 on the write-back deviation).

Per-core compute rate: 2.6 cycles/element (13 cycles per 5 elements),
the rate behind Eq. 1's ``2.6·N/(M·8)`` term.
"""

from __future__ import annotations

import typing

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class DaxpyKernel(Kernel):
    """Double-precision ``y = a*x + y``."""

    name = "daxpy"
    tileable = True
    scalar_names = ("a",)
    input_names = ("x", "y")
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=22, cpe_num=13, cpe_den=5)
    host_timing = KernelTiming(setup_cycles=14, cpe_num=4, cpe_den=1)

    def output_alias(self, name: str) -> typing.Optional[str]:
        self._check_name(name, self.output_names, "output")
        return "y"

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return 2 * (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        a = scalars["a"]
        x = inputs["x"][work.lo:work.hi]
        y = inputs["y"][work.lo:work.hi]
        return {"y": (work.lo, a * x + y)}

    def flops(self, n: int) -> int:
        # One fused multiply-add (2 flops) per element.
        return 2 * n
