"""GEMV: ``y = A @ x`` with row-sliced work distribution.

Work items are *matrix rows*: a slice of ``r`` rows moves ``r·n`` matrix
elements plus the full ``x`` vector in, and ``r`` results out.  Unlike
the element-wise kernels, per-item compute cost depends on ``n``, which
exercises the generalized runtime-model fit (the memory and compute
coefficients both scale with ``n``).
"""

from __future__ import annotations

import math

from repro.errors import KernelError
from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class GemvKernel(Kernel):
    """Double-precision dense matrix-vector product over row slices."""

    name = "gemv"
    scalar_names = ()
    input_names = ("A", "x")
    output_names = ("y",)
    #: Per-row rate is ``n``-dependent; ``timing`` holds setup and the
    #: per-MAC rate applied in :meth:`compute_cycles`.
    timing = KernelTiming(setup_cycles=30, cpe_num=3, cpe_den=2)
    host_timing = KernelTiming(setup_cycles=16, cpe_num=4, cpe_den=1)

    def input_length(self, name: str, n: int) -> int:
        self._check_name(name, self.input_names, "input")
        return n * n if name == "A" else n

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        rows = hi - lo
        if rows == 0:
            return 0
        return (rows * n + n) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        matrix = inputs["A"].reshape(n, n)[work.lo:work.hi, :]
        return {"y": (work.lo, matrix @ inputs["x"])}

    def compute_cycles(self, elements: int, n: int) -> int:
        """``elements`` rows of ``n`` MACs each at the per-MAC rate."""
        if elements < 0:
            raise KernelError(f"negative row count: {elements}")
        if elements == 0:
            return 0
        macs = elements * n
        return self.timing.setup_cycles + math.ceil(
            self.timing.cpe_num * macs / self.timing.cpe_den
        )

    def host_compute_cycles(self, n: int) -> int:
        """Host runs all n*n MACs at the host per-MAC rate."""
        return self.host_timing.setup_cycles + math.ceil(
            self.host_timing.cpe_num * n * n / self.host_timing.cpe_den
        )

    def flops(self, n: int) -> int:
        return 2 * n * n
