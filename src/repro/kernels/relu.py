"""ReLU: ``y = max(x, 0)`` — the inference-workload staple."""

from __future__ import annotations

import numpy

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class ReluKernel(Kernel):
    """Element-wise rectifier, computed in place over ``x``."""

    name = "relu"
    tileable = True
    scalar_names = ()
    input_names = ("x",)
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=16, cpe_num=1, cpe_den=1)
    host_timing = KernelTiming(setup_cycles=10, cpe_num=2, cpe_den=1)

    def output_alias(self, name: str):
        self._check_name(name, self.output_names, "output")
        return "x"

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        return {"y": (work.lo,
                      numpy.maximum(inputs["x"][work.lo:work.hi], 0.0))}
