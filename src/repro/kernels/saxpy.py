"""SAXPY: single-precision ``y = a*x + y``.

Buffers remain float64 *in main memory* (the host ABI stages arguments
as doubles); the DMA moves packed float32 data, so the traffic per
element is half of DAXPY's, and packed-SIMD execution doubles the
per-core rate.  This is the cheap-data point for ablation A3.
"""

from __future__ import annotations

import typing

import numpy

from repro.kernels.base import Kernel, KernelTiming, WorkSlice


class SaxpyKernel(Kernel):
    """Single-precision ``y = a*x + y`` (fp32 traffic and SIMD rate)."""

    name = "saxpy"
    tileable = True
    scalar_names = ("a",)
    input_names = ("x", "y")
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=22, cpe_num=13, cpe_den=10)
    host_timing = KernelTiming(setup_cycles=14, cpe_num=3, cpe_den=1)

    def output_alias(self, name: str) -> typing.Optional[str]:
        self._check_name(name, self.output_names, "output")
        return "y"

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return 2 * (hi - lo) * 4  # two fp32 operands per element

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * 4

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        a = numpy.float32(scalars["a"])
        x = inputs["x"][work.lo:work.hi].astype(numpy.float32)
        y = inputs["y"][work.lo:work.hi].astype(numpy.float32)
        return {"y": (work.lo, (a * x + y).astype(numpy.float64))}

    def flops(self, n: int) -> int:
        return 2 * n
