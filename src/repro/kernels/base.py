"""Kernel base class: the functional + timing contract.

A kernel describes a data-parallel job over ``n`` *work items* (vector
elements for DAXPY-style kernels, matrix rows for GEMV).  The offload
runtime splits ``range(n)`` into one contiguous :class:`WorkSlice` per
cluster; each cluster DMAs its slice's working set in, its 8 compute
cores each process a sub-slice, and results are DMA'd back out.

The contract a kernel implements:

``input_length(name, n)`` / ``output_length(name, n, num_slices)``
    Element counts of the named float64 buffers.
``output_alias(name)``
    If the output is computed in place over an input buffer (DAXPY
    updates ``y``), the input's name; else ``None``.
``slice_bytes_in/out(lo, hi, n)``
    DMA traffic for the slice — this drives the shared memory channels
    and the TCDM capacity check.
``compute_slice(n, scalars, inputs, work)``
    The functional math: output fragments with their placement.
``compute_cycles(elements, n)``
    Per-core compute time for ``elements`` work items.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import math
import typing

import numpy

from repro.errors import KernelError

#: Bytes per float64 element.
ELEM_BYTES = 8


@dataclasses.dataclass(frozen=True)
class WorkSlice:
    """A contiguous range of work items assigned to one cluster."""

    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise KernelError(f"invalid work slice [{self.lo}, {self.hi})")

    @property
    def elements(self) -> int:
        return self.hi - self.lo

    @property
    def empty(self) -> bool:
        return self.hi == self.lo


@functools.lru_cache(maxsize=4096)
def _split_range_cached(n: int, parts: int) -> typing.Tuple[WorkSlice, ...]:
    base, extra = divmod(n, parts)
    slices = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        slices.append(WorkSlice(index=index, lo=lo, hi=hi))
        lo = hi
    return tuple(slices)


def split_range(n: int, parts: int) -> typing.List[WorkSlice]:
    """Split ``range(n)`` into ``parts`` contiguous, balanced slices.

    The first ``n % parts`` slices get one extra element, matching the
    static block schedule the device runtime uses.  Empty slices are
    legal (more clusters than work items) and clusters receiving one
    simply report completion immediately.

    Splits are memoized: every cluster recomputes the same block
    schedule for every job of a sweep, and :class:`WorkSlice` is frozen
    so cached instances are safely shared.
    """
    if n < 0:
        raise KernelError(f"cannot split a negative range ({n})")
    if parts <= 0:
        raise KernelError(f"cannot split into {parts} parts")
    return list(_split_range_cached(n, parts))


@dataclasses.dataclass(frozen=True)
class KernelTiming:
    """Per-core streaming-loop timing: ``setup + ceil(num·e / den)``.

    ``num/den`` is the steady-state cycles-per-element rate (DAXPY's
    published rate is 13/5 = 2.6 cycles per element per core);
    ``setup_cycles`` covers loop/SSR/FREP configuration before the first
    element issues.
    """

    setup_cycles: int
    cpe_num: int
    cpe_den: int

    def __post_init__(self) -> None:
        if self.setup_cycles < 0:
            raise KernelError(f"negative setup cycles: {self.setup_cycles}")
        if self.cpe_num <= 0 or self.cpe_den <= 0:
            raise KernelError(
                f"cycles-per-element rate must be positive: "
                f"{self.cpe_num}/{self.cpe_den}"
            )

    @property
    def cycles_per_element(self) -> float:
        return self.cpe_num / self.cpe_den

    def cycles(self, elements: int) -> int:
        """Cycles for ``elements`` work items (0 items = no setup either)."""
        if elements < 0:
            raise KernelError(f"negative element count: {elements}")
        if elements == 0:
            return 0
        return self.setup_cycles + math.ceil(self.cpe_num * elements / self.cpe_den)

    def cycles_array(self, elements) -> "numpy.ndarray":
        """Vectorized :meth:`cycles` over an array of element counts.

        Pure ``int64`` arithmetic — ``ceil(num·e / den)`` computed as
        ``(num·e + den − 1) // den`` — so every entry is bit-identical
        to the scalar path for any element count a simulation can
        reach (the scalar form's float division is exactly rounded far
        beyond calibrated rates times any in-memory problem size).
        """
        counts = numpy.asarray(elements, dtype=numpy.int64)
        if counts.size and int(counts.min()) < 0:
            raise KernelError(
                f"negative element count: {int(counts.min())}")
        cycles = self.setup_cycles + (
            (self.cpe_num * counts + self.cpe_den - 1) // self.cpe_den)
        return numpy.where(counts == 0, 0, cycles)


class Kernel(abc.ABC):
    """Abstract base for offloadable kernels; see the module docstring."""

    #: Kernel name used in the registry and job descriptors.
    name: str = ""
    #: Names of scalar arguments (e.g. ``("a",)`` for DAXPY's alpha).
    scalar_names: typing.Tuple[str, ...] = ()
    #: Names of float64 input buffers.
    input_names: typing.Tuple[str, ...] = ()
    #: Names of float64 output buffers.
    output_names: typing.Tuple[str, ...] = ()
    #: Whether a sub-range of the job is itself a complete, smaller job
    #: (pure element-wise kernels).  Tileable kernels can be split into
    #: sequential offloads by :func:`repro.core.tiling.offload_tiled`;
    #: reductions (shape-dependent outputs) and stencils (halo coupling
    #: across tile edges) are not tileable.
    tileable: bool = False
    #: Per-core timing; subclasses set a calibrated instance.
    timing: KernelTiming = KernelTiming(setup_cycles=0, cpe_num=1, cpe_den=1)
    #: Timing of the same loop on the application-class host core
    #: (single-issue, cache-warm; no SSR/FREP hardware, so rates are
    #: slower than a worker core's).  Used by the host execution path
    #: that grounds the offload-or-not decision in measurements.
    host_timing: KernelTiming = KernelTiming(setup_cycles=12, cpe_num=3,
                                             cpe_den=1)

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    def input_length(self, name: str, n: int) -> int:
        """Element count of input buffer ``name`` (default: ``n``)."""
        self._check_name(name, self.input_names, "input")
        return n

    def output_length(self, name: str, n: int, num_slices: int) -> int:
        """Element count of output buffer ``name`` (default: ``n``)."""
        self._check_name(name, self.output_names, "output")
        return n

    def output_alias(self, name: str) -> typing.Optional[str]:
        """Input buffer the output overwrites in place, if any."""
        self._check_name(name, self.output_names, "output")
        return None

    def validate(self, n: int, scalars: typing.Mapping[str, float]) -> None:
        """Check a job request; raises :class:`KernelError` on problems."""
        if n <= 0:
            raise KernelError(f"{self.name}: problem size must be positive, got {n}")
        missing = set(self.scalar_names) - set(scalars)
        if missing:
            raise KernelError(
                f"{self.name}: missing scalar arguments {sorted(missing)}"
            )
        extra = set(scalars) - set(self.scalar_names)
        if extra:
            raise KernelError(
                f"{self.name}: unknown scalar arguments {sorted(extra)}"
            )

    # ------------------------------------------------------------------
    # DMA traffic
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        """Bytes DMA'd into the TCDM for slice ``[lo, hi)``."""

    @abc.abstractmethod
    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        """Bytes DMA'd back to main memory for slice ``[lo, hi)``."""

    def slice_tcdm_bytes(self, lo: int, hi: int, n: int) -> int:
        """TCDM footprint of the slice (working set held at once).

        In-place outputs (every output aliases an input) reuse their
        input's staging buffer; otherwise output staging is counted on
        top of the inputs (conservative for mixed kernels).
        """
        in_bytes = self.slice_bytes_in(lo, hi, n)
        all_in_place = self.output_names and all(
            self.output_alias(name) is not None for name in self.output_names
        )
        if all_in_place:
            return in_bytes
        return in_bytes + self.slice_bytes_out(lo, hi, n)

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compute_slice(
        self, n: int, scalars: typing.Mapping[str, float],
        inputs: typing.Mapping[str, numpy.ndarray], work: WorkSlice,
    ) -> typing.Dict[str, typing.Tuple[int, numpy.ndarray]]:
        """Compute the slice's output fragments.

        Returns ``{output_name: (start_element, values)}``: ``values``
        is written at ``start_element`` within the output buffer.
        """

    def reference(
        self, n: int, scalars: typing.Mapping[str, float],
        inputs: typing.Mapping[str, numpy.ndarray], num_slices: int,
    ) -> typing.Dict[str, numpy.ndarray]:
        """Golden outputs, computed by applying every slice in order."""
        slices = split_range(n, num_slices)
        outputs = {
            name: numpy.zeros(self.output_length(name, n, num_slices))
            for name in self.output_names
        }
        for name in self.output_names:
            alias = self.output_alias(name)
            if alias is not None:
                outputs[name][:] = inputs[alias]
        for work in slices:
            if work.empty:
                continue
            for name, (start, values) in self.compute_slice(
                    n, scalars, inputs, work).items():
                outputs[name][start:start + len(values)] = values
        return outputs

    def make_inputs(self, n: int,
                    rng: numpy.random.Generator) -> typing.Dict[str, numpy.ndarray]:
        """Random, well-conditioned input buffers for tests/benchmarks."""
        return {
            name: rng.uniform(-1.0, 1.0, size=self.input_length(name, n))
            for name in self.input_names
        }

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------
    def compute_cycles(self, elements: int, n: int) -> int:
        """Per-core compute time for ``elements`` work items."""
        return self.timing.cycles(elements)

    def compute_cycles_array(self, elements, n: int) -> numpy.ndarray:
        """Vectorized :meth:`compute_cycles` over element-count arrays.

        The batched timing paths charge whole compute phases (and whole
        sweep segments) from this in one array operation.  When a
        subclass overrides :meth:`compute_cycles` without overriding
        this method, the default falls back to per-element scalar calls
        so bit-identity with the event path is preserved regardless.
        """
        if type(self).compute_cycles is Kernel.compute_cycles:
            return self.timing.cycles_array(elements)
        return numpy.array(
            [self.compute_cycles(int(count), n)
             for count in numpy.asarray(elements).ravel()],
            dtype=numpy.int64)

    def host_compute_cycles(self, n: int) -> int:
        """Time for the host core to run the whole job itself.

        The host accesses operands through its cache hierarchy, so no
        per-element interconnect traffic is charged — the rate folds
        memory behaviour in, as measured rates on application-class
        cores do.
        """
        return self.host_timing.cycles(n)

    def flops(self, n: int) -> int:
        """Floating-point operations in the whole job (default: 0)."""
        return 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_name(self, name: str, names: typing.Tuple[str, ...],
                    kind: str) -> None:
        if name not in names:
            raise KernelError(f"{self.name}: unknown {kind} buffer {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Kernel {self.name}>"
