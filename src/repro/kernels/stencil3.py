"""3-point stencil: ``y[i] = a*x[i-1] + b*x[i] + c*x[i+1]``.

Boundaries clamp (``x[-1] := x[0]``, ``x[n] := x[n-1]``), the standard
replicated-edge condition.  The interesting offload property is the
*halo*: a cluster's slice needs one extra element on each interior
edge, so inbound DMA traffic slightly exceeds the partition — the
first kernel whose slice traffic is not additive over a partition.
"""

from __future__ import annotations

import numpy

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class Stencil3Kernel(Kernel):
    """Clamped 3-point stencil over a float64 vector."""

    name = "stencil3"
    scalar_names = ("a", "b", "c")
    input_names = ("x",)
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=26, cpe_num=2, cpe_den=1)
    host_timing = KernelTiming(setup_cycles=16, cpe_num=6, cpe_den=1)

    def _halo(self, lo: int, hi: int, n: int) -> int:
        """Halo elements this slice must additionally stage."""
        halo = 0
        if lo > 0:
            halo += 1
        if hi < n:
            halo += 1
        return halo

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        if hi == lo:
            return 0
        return ((hi - lo) + self._halo(lo, hi, n)) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        x = inputs["x"]
        padded = numpy.concatenate(([x[0]], x, [x[-1]]))
        lo, hi = work.lo, work.hi
        left = padded[lo:hi]          # x[i-1] with clamping
        mid = padded[lo + 1:hi + 1]   # x[i]
        right = padded[lo + 2:hi + 2]  # x[i+1]
        values = (scalars["a"] * left + scalars["b"] * mid
                  + scalars["c"] * right)
        return {"y": (lo, values)}

    def flops(self, n: int) -> int:
        # Three multiplies + two adds per element.
        return 5 * n
