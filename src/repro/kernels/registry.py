"""Kernel registry: name-based lookup for runtimes, CLI and benchmarks."""

from __future__ import annotations

import typing

from repro.errors import KernelError
from repro.kernels.axpby import AxpbyKernel
from repro.kernels.base import Kernel
from repro.kernels.daxpy import DaxpyKernel
from repro.kernels.dot import DotKernel
from repro.kernels.gemv import GemvKernel
from repro.kernels.memcpy import MemcpyKernel
from repro.kernels.relu import ReluKernel
from repro.kernels.saxpy import SaxpyKernel
from repro.kernels.scale import ScaleKernel
from repro.kernels.stencil3 import Stencil3Kernel
from repro.kernels.vecsum import VecsumKernel

_REGISTRY: typing.Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel) -> Kernel:
    """Add a kernel instance to the registry (unique names enforced)."""
    if not kernel.name:
        raise KernelError("kernel has no name")
    if kernel.name in _REGISTRY:
        raise KernelError(f"kernel {kernel.name!r} already registered")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    """Look a kernel up by name.

    Raises
    ------
    KernelError
        If no kernel has that name (the message lists what exists).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; available: {', '.join(kernel_names())}"
        ) from None


def kernel_names() -> typing.List[str]:
    """Registered kernel names, sorted."""
    return sorted(_REGISTRY)


for _kernel_class in (DaxpyKernel, SaxpyKernel, AxpbyKernel, MemcpyKernel,
                      ScaleKernel, VecsumKernel, DotKernel, GemvKernel,
                      Stencil3Kernel, ReluKernel):
    register_kernel(_kernel_class())
