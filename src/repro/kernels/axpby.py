"""AXPBY: ``y = a*x + b*y`` — a heavier element-wise cousin of DAXPY."""

from __future__ import annotations

import typing

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class AxpbyKernel(Kernel):
    """Double-precision ``y = a*x + b*y``.

    Same traffic as DAXPY; one extra multiply per element puts the
    per-core rate at 3 cycles/element.
    """

    name = "axpby"
    tileable = True
    scalar_names = ("a", "b")
    input_names = ("x", "y")
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=24, cpe_num=3, cpe_den=1)
    host_timing = KernelTiming(setup_cycles=14, cpe_num=5, cpe_den=1)

    def output_alias(self, name: str) -> typing.Optional[str]:
        self._check_name(name, self.output_names, "output")
        return "y"

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return 2 * (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        a, b = scalars["a"], scalars["b"]
        x = inputs["x"][work.lo:work.hi]
        y = inputs["y"][work.lo:work.hi]
        return {"y": (work.lo, a * x + b * y)}

    def flops(self, n: int) -> int:
        return 3 * n
