"""Dot product: per-cluster partial ``sum(x*y)`` reductions."""

from __future__ import annotations

import numpy

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class DotKernel(Kernel):
    """Per-slice partials of ``dot(x, y)``; the host sums the partials."""

    name = "dot"
    scalar_names = ()
    input_names = ("x", "y")
    output_names = ("partials",)
    timing = KernelTiming(setup_cycles=22, cpe_num=3, cpe_den=2)
    host_timing = KernelTiming(setup_cycles=12, cpe_num=3, cpe_den=1)

    def output_length(self, name: str, n: int, num_slices: int) -> int:
        self._check_name(name, self.output_names, "output")
        return num_slices

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return 2 * (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return ELEM_BYTES if hi > lo else 0

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        x = inputs["x"][work.lo:work.hi]
        y = inputs["y"][work.lo:work.hi]
        return {"partials": (work.index, numpy.array([numpy.dot(x, y)]))}

    def flops(self, n: int) -> int:
        return 2 * n
