"""Vector sum reduction: per-cluster partial sums.

Each cluster reduces its slice to one partial and writes it to its slot
in a ``partials`` output of length ``num_slices``; the host (or the
caller) performs the tiny final reduction.  This is the standard
two-level reduction on cluster-based accelerators and exercises the
"output length depends on the offload shape" corner of the job ABI.
"""

from __future__ import annotations

import numpy

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class VecsumKernel(Kernel):
    """Per-slice partial sums of a float64 vector."""

    name = "vecsum"
    scalar_names = ()
    input_names = ("x",)
    output_names = ("partials",)
    timing = KernelTiming(setup_cycles=20, cpe_num=1, cpe_den=1)
    host_timing = KernelTiming(setup_cycles=10, cpe_num=2, cpe_den=1)

    def output_length(self, name: str, n: int, num_slices: int) -> int:
        self._check_name(name, self.output_names, "output")
        return num_slices

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return ELEM_BYTES if hi > lo else 0

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        partial = numpy.sum(inputs["x"][work.lo:work.hi])
        return {"partials": (work.index, numpy.array([partial]))}

    def flops(self, n: int) -> int:
        return max(0, n - 1)
