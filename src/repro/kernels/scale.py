"""Scale: ``y = a*x`` — one multiply per element, out of place."""

from __future__ import annotations

from repro.kernels.base import ELEM_BYTES, Kernel, KernelTiming, WorkSlice


class ScaleKernel(Kernel):
    """Double-precision ``y = a*x``."""

    name = "scale"
    tileable = True
    scalar_names = ("a",)
    input_names = ("x",)
    output_names = ("y",)
    timing = KernelTiming(setup_cycles=18, cpe_num=3, cpe_den=2)
    host_timing = KernelTiming(setup_cycles=12, cpe_num=3, cpe_den=1)

    def slice_bytes_in(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def slice_bytes_out(self, lo: int, hi: int, n: int) -> int:
        return (hi - lo) * ELEM_BYTES

    def compute_slice(self, n, scalars, inputs, work: WorkSlice):
        return {"y": (work.lo, scalars["a"] * inputs["x"][work.lo:work.hi])}

    def flops(self, n: int) -> int:
        return n
