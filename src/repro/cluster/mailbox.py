"""Cluster mailbox peripheral: the offload doorbell.

The host dispatches a job by storing the job-descriptor pointer into a
cluster's mailbox (one unicast store per cluster in the baseline; one
multicast store for all clusters with the extension).  The store both
carries the pointer and wakes the cluster's DM core from clock gating.

Register map (word offsets from the cluster peripheral base):

====== ========== =====================================================
offset register   behaviour
====== ========== =====================================================
0x00   JOB_PTR    write: latch pointer, wake the DM core; read: last
                  pointer written
0x08   JOBS_RCVD  read-only count of doorbell rings (debug/statistics)
====== ========== =====================================================
"""

from __future__ import annotations

import typing

from repro.errors import ProtocolError
from repro.mem.map import MmioDevice
from repro.sim import Event, Simulator

JOB_PTR_OFFSET = 0x00
JOBS_RCVD_OFFSET = 0x08


class Mailbox(MmioDevice):
    """Doorbell + job-pointer latch for one cluster."""

    def __init__(self, sim: Simulator, cluster_id: int) -> None:
        self.sim = sim
        self.cluster_id = cluster_id
        self.job_ptr = 0
        self.jobs_received = 0
        self._waiters: typing.List[Event] = []
        # One doorbell event is allocated per served job; the label is
        # part of the deadlock-report contract, so intern it once.
        self._ring_name = f"mailbox{cluster_id}.ring"

    # ------------------------------------------------------------------
    # MMIO interface (invoked by the interconnect at delivery time)
    # ------------------------------------------------------------------
    def read_register(self, offset: int) -> int:
        if offset == JOB_PTR_OFFSET:
            return self.job_ptr
        if offset == JOBS_RCVD_OFFSET:
            return self.jobs_received
        return super().read_register(offset)

    def write_register(self, offset: int, value: int) -> None:
        if offset == JOB_PTR_OFFSET:
            self.job_ptr = value
            self.jobs_received += 1
            if not self._waiters:
                # Rings are not queued (see :meth:`wait_job`): a ring
                # with nobody parked on the doorbell is lost, and the
                # cluster will never pick the job up.
                self.audit("lost-doorbell", offset, value=value,
                           detail=f"cluster {self.cluster_id}: no DM core "
                                  f"waiting on the doorbell")
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.trigger(value)
            return
        if offset == JOBS_RCVD_OFFSET:
            self.audit("read-only-write", offset, value=value, fatal=True)
            raise ProtocolError(
                f"mailbox register at +{offset:#x} is read-only")
        super().write_register(offset, value)

    def reset(self) -> None:
        """Restore boot state: clear the latch and statistics.

        Waiters are deliberately *kept*: after a drained run the DM core
        is parked in :meth:`wait_job` exactly as it is right after boot,
        and dropping its event would orphan the process.
        """
        self.job_ptr = 0
        self.jobs_received = 0

    def snapshot(self) -> typing.Tuple[int, int]:
        """Capture latch and statistics (waiters are live state, kept)."""
        return (self.job_ptr, self.jobs_received)

    def restore(self, state: typing.Tuple[int, int]) -> None:
        """Restore a :meth:`snapshot`; parked waiters survive, as in
        :meth:`reset`."""
        self.job_ptr, self.jobs_received = state

    @property
    def waiters(self) -> int:
        """Number of processes parked on the doorbell (boot state: 1)."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    # Device-side interface
    # ------------------------------------------------------------------
    def job_event(self) -> Event:
        """Park on the doorbell: returns the event the next ring
        triggers with the job pointer (non-generator form of
        :meth:`wait_job`, for the DM core's flattened main loop)."""
        event = self.sim.event(name=self._ring_name)
        self._waiters.append(event)
        return event

    def wait_job(self) -> typing.Generator:
        """DM-core wait for the next doorbell; returns the job pointer.

        Rings are not queued: the DM core must be waiting before the
        next ring arrives (the host never dispatches a new job before
        observing completion of the previous one, which the offload
        runtimes guarantee).
        """
        pointer = yield self.job_event()
        return pointer
