"""The DM-core device runtime: serving offloaded jobs.

This is the device-side half of the offload protocol.  Each cluster's
data-mover core runs :func:`serve_jobs` forever:

1. sleep clock-gated until the host rings the mailbox with a job
   pointer;
2. fetch the job descriptor from shared memory (one or two burst
   reads), decode it, and compute this cluster's work slice;
3. stage the slice's working set into the TCDM via the DMA engine
   (contending with every other cluster on the shared read channel);
4. release the worker cores; every core processes its sub-slice and
   meets the DM core at the hardware barrier;
5. write results back via the shared write channel;
6. signal completion — an atomic fetch-and-add on the descriptor's flag
   (baseline) or a posted write to the credit-counter sync unit
   (extended), per the descriptor's ``sync_mode``.

Functional state changes (reading operands, writing results) happen at
the simulated instants the corresponding transfers complete, so memory
always holds an architecturally-consistent snapshot.
"""

from __future__ import annotations

import typing

from repro import abi, flags
from repro.errors import OffloadError
from repro.kernels.base import WorkSlice, split_range

if typing.TYPE_CHECKING:
    from repro.cluster.cluster import Cluster

#: Words fetched by the first descriptor burst (one 64-byte line).
FIRST_BURST_WORDS = 8


def serve_jobs(cluster: "Cluster") -> typing.Generator:
    """The DM core's main loop (a simulation process body).

    The loop body below *inlines* the default fast path of every phase
    — doorbell, descriptor fetch, fabric barrier, DMA staging, compute
    phase, completion — into this single generator frame, parking on
    the same events the reference helpers park on.  A generator resume
    re-activates every frame in its ``yield from`` chain, so with ~5-9
    parks per job the two-to-four-deep helper chain is the dominant
    per-job interpreter cost; the flat frame pays for one activation
    per park.  Cycle- and order-identity with the reference is by
    construction: both paths issue the identical primitive calls (the
    non-generator forms ``job_event`` / ``book_arrival`` /
    ``reserve_in`` / ``compute_phase_fast``) in the identical order.

    The ``REPRO_NAIVE_CHANNEL`` / ``REPRO_NAIVE_BARRIER`` gates and the
    double-buffered exec mode delegate to the reference helpers
    (:func:`_run_job` and friends), which remain the readable
    specification of the protocol.
    """
    mailbox = cluster.mailbox
    noc = cluster.noc
    dma = cluster.dma
    memory = cluster.memory
    record = cluster.trace.record
    cluster_id = cluster.cluster_id
    label = f"cluster{cluster_id}"
    wake_latency = cluster.wake_latency
    decode_cycles = cluster.dm_decode_cycles
    fabric = cluster.fabric_barrier
    while True:
        pointer = yield mailbox.job_event()
        if flags.naive_channel() or flags.naive_barrier():
            # Reference path: simulate every phase's event loop.
            yield from _run_job(cluster, pointer)
            cluster.jobs_completed += 1
            continue

        record(label, "doorbell", pointer)
        if wake_latency:
            yield wake_latency
        record(label, "awake")

        # Fetch and decode the descriptor (see _fetch_descriptor).
        first = yield noc.cluster_read_burst(
            cluster_id, pointer, FIRST_BURST_WORDS)
        total = abi.descriptor_words(abi.kernel_from_id(first[0]))
        words = list(first)
        if total > FIRST_BURST_WORDS:
            rest = yield noc.cluster_read_burst(
                cluster_id, pointer + 8 * FIRST_BURST_WORDS,
                total - FIRST_BURST_WORDS)
            words.extend(rest)
        desc = abi.decode_descriptor(words[:total])
        if decode_cycles:
            yield decode_cycles
        record(label, "decoded", desc.kernel_name)

        kernel = desc.kernel
        work = _work_slice(cluster, desc, label)

        if fabric is not None:
            yield fabric.book_arrival(desc.num_clusters,
                                      group=desc.first_cluster)
            record(label, "start_barrier_crossed")

        if not work.empty:
            if desc.exec_mode == abi.EXEC_MODE_DOUBLE_BUFFERED:
                yield from _execute_double_buffered(
                    cluster, desc, kernel, work)
            else:
                # The phased protocol (see _execute_phased).
                _check_footprint(cluster, kernel, work, desc.n, label)
                bytes_in = kernel.slice_bytes_in(work.lo, work.hi, desc.n)
                done = dma.reserve_in(bytes_in)
                if done is not None:
                    yield done
                else:
                    yield from dma.transfer_in(bytes_in)
                inputs = {
                    name: memory.read_f64(
                        desc.input_addrs[name],
                        kernel.input_length(name, desc.n))
                    for name in kernel.input_names
                }
                record(label, "dma_in_done", bytes_in)

                yield cluster.compute_phase_fast(kernel, work, desc.n)
                fragments = kernel.compute_slice(
                    desc.n, desc.scalars, inputs, work)
                record(label, "compute_done")

                bytes_out = kernel.slice_bytes_out(work.lo, work.hi, desc.n)
                done = dma.reserve_out(bytes_out)
                if done is not None:
                    yield done
                else:
                    yield from dma.transfer_out(bytes_out)
                for name, (start, values) in fragments.items():
                    memory.write_f64(
                        desc.output_addrs[name] + 8 * start, values)
                record(label, "dma_out_done", bytes_out)

        # Signal completion (see _signal_completion).
        if desc.sync_mode == abi.SYNC_MODE_AMO:
            yield noc.cluster_amo_add(cluster_id, desc.completion_addr, 1)
        else:
            yield noc.cluster_write(
                cluster_id, desc.completion_addr, 1).issued
        record(label, "completion_signalled")
        cluster.jobs_completed += 1


def _work_slice(cluster: "Cluster", desc: abi.JobDescriptor,
                label: str) -> WorkSlice:
    """This cluster's slice of the job, validating the dispatch range."""
    slices = split_range(desc.n, desc.num_clusters)
    rank = cluster.cluster_id - desc.first_cluster
    if not 0 <= rank < desc.num_clusters:
        raise OffloadError(
            f"{label} received a job for clusters "
            f"[{desc.first_cluster}, "
            f"{desc.first_cluster + desc.num_clusters}); the host "
            "dispatched outside the job's range"
        )
    return slices[rank]


def _check_footprint(cluster: "Cluster", kernel, work, n: int,
                     label: str) -> None:
    """Reject slices whose working set cannot fit the TCDM."""
    footprint = kernel.slice_tcdm_bytes(work.lo, work.hi, n)
    if footprint > cluster.tcdm.size_bytes:
        raise OffloadError(
            f"{label}: slice working set of {footprint} bytes exceeds "
            f"the {cluster.tcdm.size_bytes}-byte TCDM; offload to more "
            "clusters or tile the job"
        )


def _run_job(cluster: "Cluster", pointer: int) -> typing.Generator:
    label = f"cluster{cluster.cluster_id}"
    cluster.trace.record(label, "doorbell", pointer)

    # Clock-ungate latency before the DM core executes its first
    # instruction after the doorbell.
    if cluster.wake_latency:
        yield cluster.wake_latency
    cluster.trace.record(label, "awake")

    desc = yield from _fetch_descriptor(cluster, pointer)
    if cluster.dm_decode_cycles:
        yield cluster.dm_decode_cycles
    cluster.trace.record(label, "decoded", desc.kernel_name)

    kernel = desc.kernel
    work = _work_slice(cluster, desc, label)

    # Synchronize the job start across all participating clusters: the
    # collective DMA/compute phases must not begin before every member
    # holds its arguments (see repro.soc.fabricbarrier).  This is why
    # the baseline's sequential dispatch cost adds to the runtime
    # instead of hiding behind the first clusters' DMA.  The group ID
    # (the job's first cluster) keeps concurrent space-shared jobs on
    # independent barrier counters.
    if cluster.fabric_barrier is not None:
        yield from cluster.fabric_barrier.arrive(
            desc.num_clusters, group=desc.first_cluster)
        cluster.trace.record(label, "start_barrier_crossed")

    if not work.empty:
        if desc.exec_mode == abi.EXEC_MODE_DOUBLE_BUFFERED:
            yield from _execute_double_buffered(cluster, desc, kernel, work)
        else:
            yield from _execute_phased(cluster, desc, kernel, work)

    # --- Signal completion --------------------------------------------------
    yield from _signal_completion(cluster, desc)
    cluster.trace.record(label, "completion_signalled")


def _execute_phased(cluster: "Cluster", desc: abi.JobDescriptor, kernel,
                    work) -> typing.Generator:
    """The paper's protocol: stage the whole slice, compute, write back.

    The three phases are strictly sequential on the cluster, which is
    what makes the measured runtime obey Eq. 1's additive structure.
    """
    label = f"cluster{cluster.cluster_id}"
    _check_footprint(cluster, kernel, work, desc.n, label)

    # --- Stage operands in ------------------------------------------
    bytes_in = kernel.slice_bytes_in(work.lo, work.hi, desc.n)
    yield from cluster.dma.transfer_in(bytes_in)
    inputs = {
        name: cluster.memory.read_f64(
            desc.input_addrs[name], kernel.input_length(name, desc.n))
        for name in kernel.input_names
    }
    cluster.trace.record(label, "dma_in_done", bytes_in)

    # --- Compute ------------------------------------------------------
    yield from cluster.compute_phase(kernel, work, desc.n)
    fragments = kernel.compute_slice(desc.n, desc.scalars, inputs, work)
    cluster.trace.record(label, "compute_done")

    # --- Write results back --------------------------------------------
    bytes_out = kernel.slice_bytes_out(work.lo, work.hi, desc.n)
    yield from cluster.dma.transfer_out(bytes_out)
    for name, (start, values) in fragments.items():
        cluster.memory.write_f64(
            desc.output_addrs[name] + 8 * start, values)
    cluster.trace.record(label, "dma_out_done", bytes_out)


#: Double buffering targets this many chunks per slice (more when the
#: TCDM cannot hold two of them, fewer when the slice is tiny).
DBUF_TARGET_CHUNKS = 4
#: Slices below this many elements are not worth pipelining.
DBUF_MIN_ELEMENTS = 32


def _execute_double_buffered(cluster: "Cluster", desc: abi.JobDescriptor,
                             kernel, work) -> typing.Generator:
    """Chunked load/compute/write-back pipeline (the classic Snitch
    double-buffering idiom, an extension over the paper's protocol).

    The slice is split into chunks; while chunk *k* computes, chunk
    *k+1* streams in and chunk *k-1* streams out, so the memory time
    hides behind compute (or vice versa) instead of adding to it.  The
    cost is one loop setup per chunk and two staging buffers in the
    TCDM.  Only element-wise kernels qualify (reductions emit one
    output per *slice*, which chunking would corrupt); tiny slices fall
    back to the phased protocol.
    """
    sim = cluster.sim
    label = f"cluster{cluster.cluster_id}"
    for name in kernel.output_names:
        if kernel.output_length(name, desc.n, desc.num_clusters) != desc.n:
            raise OffloadError(
                f"{label}: double buffering requires an element-wise "
                f"kernel; {kernel.name!r} output {name!r} depends on the "
                "offload shape"
            )

    if work.elements < DBUF_MIN_ELEMENTS:
        yield from _execute_phased(cluster, desc, kernel, work)
        return

    footprint = kernel.slice_tcdm_bytes(work.lo, work.hi, desc.n)
    min_chunks = -(-2 * footprint // cluster.tcdm.size_bytes)
    num_chunks = min(work.elements, max(DBUF_TARGET_CHUNKS, min_chunks))
    chunks = [
        WorkSlice(index=chunk.index, lo=work.lo + chunk.lo,
                  hi=work.lo + chunk.hi)
        for chunk in split_range(work.elements, num_chunks)
    ]
    worst = max(kernel.slice_tcdm_bytes(c.lo, c.hi, desc.n) for c in chunks)
    if 2 * worst > cluster.tcdm.size_bytes:
        raise OffloadError(
            f"{label}: two {worst}-byte double-buffer chunks exceed the "
            f"{cluster.tcdm.size_bytes}-byte TCDM; offload to more clusters"
        )

    loaded = [sim.event(name=f"{label}.dbuf.loaded{k}")
              for k in range(num_chunks)]
    computed = [sim.event(name=f"{label}.dbuf.computed{k}")
                for k in range(num_chunks)]
    written = [sim.event(name=f"{label}.dbuf.written{k}")
               for k in range(num_chunks)]
    inputs_box: typing.Dict[str, typing.Any] = {}
    fragments_box: typing.List = [None] * num_chunks

    def loader() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            if k >= 2:
                # Two staging buffers: reuse chunk k-2's once written out.
                yield written[k - 2]
            nbytes = kernel.slice_bytes_in(chunk.lo, chunk.hi, desc.n)
            yield from cluster.dma.transfer_in(nbytes)
            if not inputs_box:
                inputs_box.update({
                    name: cluster.memory.read_f64(
                        desc.input_addrs[name],
                        kernel.input_length(name, desc.n))
                    for name in kernel.input_names
                })
            loaded[k].trigger()
        cluster.trace.record(label, "dma_in_done",
                             kernel.slice_bytes_in(work.lo, work.hi, desc.n))

    def computer() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            yield loaded[k]
            yield from cluster.compute_phase(kernel, chunk, desc.n,
                                             name_suffix=f".chunk{k}")
            fragments_box[k] = kernel.compute_slice(
                desc.n, desc.scalars, inputs_box, chunk)
            computed[k].trigger()
        cluster.trace.record(label, "compute_done")

    def writer() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            yield computed[k]
            nbytes = kernel.slice_bytes_out(chunk.lo, chunk.hi, desc.n)
            yield from cluster.dma.transfer_out(nbytes)
            for name, (start, values) in fragments_box[k].items():
                cluster.memory.write_f64(
                    desc.output_addrs[name] + 8 * start, values)
            written[k].trigger()
        cluster.trace.record(label, "dma_out_done",
                             kernel.slice_bytes_out(work.lo, work.hi, desc.n))

    sim.spawn(loader(), name=f"{label}.dbuf.loader")
    sim.spawn(computer(), name=f"{label}.dbuf.computer")
    sim.spawn(writer(), name=f"{label}.dbuf.writer")
    yield written[-1]


def _fetch_descriptor(cluster: "Cluster", pointer: int) -> typing.Generator:
    """Fetch and decode the descriptor: one line burst, then the tail."""
    noc = cluster.noc
    first = yield noc.cluster_read_burst(
        cluster.cluster_id, pointer, FIRST_BURST_WORDS)
    kernel = abi.kernel_from_id(first[0])
    total = abi.descriptor_words(kernel)
    words = list(first)
    if total > FIRST_BURST_WORDS:
        rest = yield noc.cluster_read_burst(
            cluster.cluster_id, pointer + 8 * FIRST_BURST_WORDS,
            total - FIRST_BURST_WORDS)
        words.extend(rest)
    return abi.decode_descriptor(words[:total])


def _signal_completion(cluster: "Cluster",
                       desc: abi.JobDescriptor) -> typing.Generator:
    if desc.sync_mode == abi.SYNC_MODE_AMO:
        # Atomic fetch-and-add on the shared flag; AMOs are non-posted,
        # and all clusters serialize at the shared atomics port.
        yield cluster.noc.cluster_amo_add(
            cluster.cluster_id, desc.completion_addr, 1)
        return
    # Credit-counter unit: fire-and-forget posted write; the unit
    # interrupts the host once the threshold is met.
    handle = cluster.noc.cluster_write(
        cluster.cluster_id, desc.completion_addr, 1)
    yield handle.issued
