"""The DM-core device runtime: serving offloaded jobs.

This is the device-side half of the offload protocol.  Each cluster's
data-mover core runs :func:`serve_jobs` forever:

1. sleep clock-gated until the host rings the mailbox with a job
   pointer;
2. fetch the job descriptor from shared memory (one or two burst
   reads), decode it, and compute this cluster's work slice;
3. stage the slice's working set into the TCDM via the DMA engine
   (contending with every other cluster on the shared read channel);
4. release the worker cores; every core processes its sub-slice and
   meets the DM core at the hardware barrier;
5. write results back via the shared write channel;
6. signal completion — an atomic fetch-and-add on the descriptor's flag
   (baseline) or a posted write to the credit-counter sync unit
   (extended), per the descriptor's ``sync_mode``.

Functional state changes (reading operands, writing results) happen at
the simulated instants the corresponding transfers complete, so memory
always holds an architecturally-consistent snapshot.
"""

from __future__ import annotations

import typing

from repro import abi
from repro.errors import OffloadError
from repro.kernels.base import WorkSlice, split_range
from repro.cluster.worker import split_among_cores

if typing.TYPE_CHECKING:
    from repro.cluster.cluster import Cluster

#: Words fetched by the first descriptor burst (one 64-byte line).
FIRST_BURST_WORDS = 8


def serve_jobs(cluster: "Cluster") -> typing.Generator:
    """The DM core's main loop (a simulation process body)."""
    while True:
        pointer = yield from cluster.mailbox.wait_job()
        yield from _run_job(cluster, pointer)
        cluster.jobs_completed += 1


def _run_job(cluster: "Cluster", pointer: int) -> typing.Generator:
    sim = cluster.sim
    label = f"cluster{cluster.cluster_id}"
    cluster.trace.record(label, "doorbell", pointer)

    # Clock-ungate latency before the DM core executes its first
    # instruction after the doorbell.
    if cluster.wake_latency:
        yield cluster.wake_latency
    cluster.trace.record(label, "awake")

    desc = yield from _fetch_descriptor(cluster, pointer)
    if cluster.dm_decode_cycles:
        yield cluster.dm_decode_cycles
    cluster.trace.record(label, "decoded", desc.kernel_name)

    kernel = desc.kernel
    slices = split_range(desc.n, desc.num_clusters)
    rank = cluster.cluster_id - desc.first_cluster
    if not 0 <= rank < desc.num_clusters:
        raise OffloadError(
            f"{label} received a job for clusters "
            f"[{desc.first_cluster}, "
            f"{desc.first_cluster + desc.num_clusters}); the host "
            "dispatched outside the job's range"
        )
    work = slices[rank]

    # Synchronize the job start across all participating clusters: the
    # collective DMA/compute phases must not begin before every member
    # holds its arguments (see repro.soc.fabricbarrier).  This is why
    # the baseline's sequential dispatch cost adds to the runtime
    # instead of hiding behind the first clusters' DMA.  The group ID
    # (the job's first cluster) keeps concurrent space-shared jobs on
    # independent barrier counters.
    if cluster.fabric_barrier is not None:
        yield from cluster.fabric_barrier.arrive(
            desc.num_clusters, group=desc.first_cluster)
        cluster.trace.record(label, "start_barrier_crossed")

    if not work.empty:
        if desc.exec_mode == abi.EXEC_MODE_DOUBLE_BUFFERED:
            yield from _execute_double_buffered(cluster, desc, kernel, work)
        else:
            yield from _execute_phased(cluster, desc, kernel, work)

    # --- Signal completion --------------------------------------------------
    yield from _signal_completion(cluster, desc)
    cluster.trace.record(label, "completion_signalled")


def _execute_phased(cluster: "Cluster", desc: abi.JobDescriptor, kernel,
                    work) -> typing.Generator:
    """The paper's protocol: stage the whole slice, compute, write back.

    The three phases are strictly sequential on the cluster, which is
    what makes the measured runtime obey Eq. 1's additive structure.
    """
    sim = cluster.sim
    label = f"cluster{cluster.cluster_id}"
    footprint = kernel.slice_tcdm_bytes(work.lo, work.hi, desc.n)
    if footprint > cluster.tcdm.size_bytes:
        raise OffloadError(
            f"{label}: slice working set of {footprint} bytes exceeds "
            f"the {cluster.tcdm.size_bytes}-byte TCDM; offload to more "
            "clusters or tile the job"
        )

    # --- Stage operands in ------------------------------------------
    bytes_in = kernel.slice_bytes_in(work.lo, work.hi, desc.n)
    yield from cluster.dma.transfer_in(bytes_in)
    inputs = {
        name: cluster.memory.read_f64(
            desc.input_addrs[name], kernel.input_length(name, desc.n))
        for name in kernel.input_names
    }
    cluster.trace.record(label, "dma_in_done", bytes_in)

    # --- Compute ------------------------------------------------------
    sub_slices = split_among_cores(work, len(cluster.workers))
    for worker, sub in zip(cluster.workers, sub_slices):
        sim.spawn(
            _worker_body(cluster, worker, kernel, sub, desc.n),
            name=f"{label}.core{worker.core_id}",
        )
    yield from cluster.barrier.wait()
    fragments = kernel.compute_slice(desc.n, desc.scalars, inputs, work)
    cluster.trace.record(label, "compute_done")

    # --- Write results back --------------------------------------------
    bytes_out = kernel.slice_bytes_out(work.lo, work.hi, desc.n)
    yield from cluster.dma.transfer_out(bytes_out)
    for name, (start, values) in fragments.items():
        cluster.memory.write_f64(
            desc.output_addrs[name] + 8 * start, values)
    cluster.trace.record(label, "dma_out_done", bytes_out)


#: Double buffering targets this many chunks per slice (more when the
#: TCDM cannot hold two of them, fewer when the slice is tiny).
DBUF_TARGET_CHUNKS = 4
#: Slices below this many elements are not worth pipelining.
DBUF_MIN_ELEMENTS = 32


def _execute_double_buffered(cluster: "Cluster", desc: abi.JobDescriptor,
                             kernel, work) -> typing.Generator:
    """Chunked load/compute/write-back pipeline (the classic Snitch
    double-buffering idiom, an extension over the paper's protocol).

    The slice is split into chunks; while chunk *k* computes, chunk
    *k+1* streams in and chunk *k-1* streams out, so the memory time
    hides behind compute (or vice versa) instead of adding to it.  The
    cost is one loop setup per chunk and two staging buffers in the
    TCDM.  Only element-wise kernels qualify (reductions emit one
    output per *slice*, which chunking would corrupt); tiny slices fall
    back to the phased protocol.
    """
    sim = cluster.sim
    label = f"cluster{cluster.cluster_id}"
    for name in kernel.output_names:
        if kernel.output_length(name, desc.n, desc.num_clusters) != desc.n:
            raise OffloadError(
                f"{label}: double buffering requires an element-wise "
                f"kernel; {kernel.name!r} output {name!r} depends on the "
                "offload shape"
            )

    if work.elements < DBUF_MIN_ELEMENTS:
        yield from _execute_phased(cluster, desc, kernel, work)
        return

    footprint = kernel.slice_tcdm_bytes(work.lo, work.hi, desc.n)
    min_chunks = -(-2 * footprint // cluster.tcdm.size_bytes)
    num_chunks = min(work.elements, max(DBUF_TARGET_CHUNKS, min_chunks))
    chunks = [
        WorkSlice(index=chunk.index, lo=work.lo + chunk.lo,
                  hi=work.lo + chunk.hi)
        for chunk in split_range(work.elements, num_chunks)
    ]
    worst = max(kernel.slice_tcdm_bytes(c.lo, c.hi, desc.n) for c in chunks)
    if 2 * worst > cluster.tcdm.size_bytes:
        raise OffloadError(
            f"{label}: two {worst}-byte double-buffer chunks exceed the "
            f"{cluster.tcdm.size_bytes}-byte TCDM; offload to more clusters"
        )

    loaded = [sim.event(name=f"{label}.dbuf.loaded{k}")
              for k in range(num_chunks)]
    computed = [sim.event(name=f"{label}.dbuf.computed{k}")
                for k in range(num_chunks)]
    written = [sim.event(name=f"{label}.dbuf.written{k}")
               for k in range(num_chunks)]
    inputs_box: typing.Dict[str, typing.Any] = {}
    fragments_box: typing.List = [None] * num_chunks

    def loader() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            if k >= 2:
                # Two staging buffers: reuse chunk k-2's once written out.
                yield written[k - 2]
            nbytes = kernel.slice_bytes_in(chunk.lo, chunk.hi, desc.n)
            yield from cluster.dma.transfer_in(nbytes)
            if not inputs_box:
                inputs_box.update({
                    name: cluster.memory.read_f64(
                        desc.input_addrs[name],
                        kernel.input_length(name, desc.n))
                    for name in kernel.input_names
                })
            loaded[k].trigger()
        cluster.trace.record(label, "dma_in_done",
                             kernel.slice_bytes_in(work.lo, work.hi, desc.n))

    def computer() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            yield loaded[k]
            sub_slices = split_among_cores(chunk, len(cluster.workers))
            for worker, sub in zip(cluster.workers, sub_slices):
                sim.spawn(
                    _worker_body(cluster, worker, kernel, sub, desc.n),
                    name=f"{label}.core{worker.core_id}.chunk{k}",
                )
            yield from cluster.barrier.wait()
            fragments_box[k] = kernel.compute_slice(
                desc.n, desc.scalars, inputs_box, chunk)
            computed[k].trigger()
        cluster.trace.record(label, "compute_done")

    def writer() -> typing.Generator:
        for k, chunk in enumerate(chunks):
            yield computed[k]
            nbytes = kernel.slice_bytes_out(chunk.lo, chunk.hi, desc.n)
            yield from cluster.dma.transfer_out(nbytes)
            for name, (start, values) in fragments_box[k].items():
                cluster.memory.write_f64(
                    desc.output_addrs[name] + 8 * start, values)
            written[k].trigger()
        cluster.trace.record(label, "dma_out_done",
                             kernel.slice_bytes_out(work.lo, work.hi, desc.n))

    sim.spawn(loader(), name=f"{label}.dbuf.loader")
    sim.spawn(computer(), name=f"{label}.dbuf.computer")
    sim.spawn(writer(), name=f"{label}.dbuf.writer")
    yield written[-1]


def _worker_body(cluster: "Cluster", worker, kernel, sub, n):
    yield from worker.compute(kernel, sub, n)
    yield from cluster.barrier.wait()


def _fetch_descriptor(cluster: "Cluster", pointer: int) -> typing.Generator:
    """Fetch and decode the descriptor: one line burst, then the tail."""
    noc = cluster.noc
    first = yield noc.cluster_read_burst(
        cluster.cluster_id, pointer, FIRST_BURST_WORDS)
    kernel = abi.kernel_from_id(first[0])
    total = abi.descriptor_words(kernel)
    words = list(first)
    if total > FIRST_BURST_WORDS:
        rest = yield noc.cluster_read_burst(
            cluster.cluster_id, pointer + 8 * FIRST_BURST_WORDS,
            total - FIRST_BURST_WORDS)
        words.extend(rest)
    return abi.decode_descriptor(words[:total])


def _signal_completion(cluster: "Cluster",
                       desc: abi.JobDescriptor) -> typing.Generator:
    if desc.sync_mode == abi.SYNC_MODE_AMO:
        # Atomic fetch-and-add on the shared flag; AMOs are non-posted,
        # and all clusters serialize at the shared atomics port.
        yield cluster.noc.cluster_amo_add(
            cluster.cluster_id, desc.completion_addr, 1)
        return
    # Credit-counter unit: fire-and-forget posted write; the unit
    # interrupts the host once the threshold is met.
    handle = cluster.noc.cluster_write(
        cluster.cluster_id, desc.completion_addr, 1)
    yield handle.issued
