"""Worker-core compute timing.

Each of a cluster's 8 worker cores processes a contiguous sub-slice of
the cluster's work slice.  Compute cost per core comes from the kernel's
calibrated streaming-loop timing; the cluster's compute phase ends when
the *slowest* core finishes (uneven sub-slices produce real skew, which
is why measured runtimes deviate slightly from the smooth ``N/(M·8)``
model when the split is ragged — visible in the MAPE experiment).
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.kernels.base import Kernel, WorkSlice, split_range
from repro.sim import Simulator


class WorkerCore:
    """Timing model of one worker core."""

    def __init__(self, sim: Simulator, cluster_id: int, core_id: int,
                 wake_latency: int = 2) -> None:
        if wake_latency < 0:
            raise ConfigError(f"negative worker wake latency {wake_latency}")
        self.sim = sim
        self.cluster_id = cluster_id
        self.core_id = core_id
        self.wake_latency = wake_latency
        self.jobs_executed = 0
        self.busy_cycles = 0

    def compute(self, kernel: Kernel, sub_slice: WorkSlice,
                n: int) -> typing.Generator:
        """Run the kernel's loop over ``sub_slice`` (timing only).

        Empty sub-slices still pay the wake latency (the core is
        released from the barrier and immediately re-parks).
        """
        cycles = kernel.compute_cycles(sub_slice.elements, n)
        self.jobs_executed += 1
        self.busy_cycles += cycles
        # One scheduler event instead of wake-then-compute: the core
        # resumes at the identical cycle, and nothing can observe the
        # intermediate wake instant (the core touches no shared
        # resource between waking and finishing its loop).
        delay = self.wake_latency + cycles
        if delay:
            yield delay

    def reset(self) -> None:
        """Zero the statistics counters (boot state)."""
        self.jobs_executed = 0
        self.busy_cycles = 0


def split_among_cores(work: WorkSlice, num_cores: int) -> typing.List[WorkSlice]:
    """Split a cluster's slice into per-core sub-slices (block schedule)."""
    relative = split_range(work.elements, num_cores)
    return [
        WorkSlice(index=sub.index, lo=work.lo + sub.lo, hi=work.lo + sub.hi)
        for sub in relative
    ]
