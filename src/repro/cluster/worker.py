"""Worker-core compute timing.

Each of a cluster's 8 worker cores processes a contiguous sub-slice of
the cluster's work slice.  Compute cost per core comes from the kernel's
calibrated streaming-loop timing; the cluster's compute phase ends when
the *slowest* core finishes (uneven sub-slices produce real skew, which
is why measured runtimes deviate slightly from the smooth ``N/(M·8)``
model when the split is ragged — visible in the MAPE experiment).
"""

from __future__ import annotations

import functools
import typing

from repro.errors import ConfigError
from repro.kernels.base import Kernel, KernelTiming, WorkSlice, split_range
from repro.sim import Simulator


class WorkerCore:
    """Timing model of one worker core."""

    def __init__(self, sim: Simulator, cluster_id: int, core_id: int,
                 wake_latency: int = 2) -> None:
        if wake_latency < 0:
            raise ConfigError(f"negative worker wake latency {wake_latency}")
        self.sim = sim
        self.cluster_id = cluster_id
        self.core_id = core_id
        self.wake_latency = wake_latency
        self.jobs_executed = 0
        self.busy_cycles = 0

    def charge(self, kernel: Kernel, sub_slice: WorkSlice, n: int,
               timing: typing.Optional[KernelTiming] = None) -> int:
        """Charge one compute phase's statistics and return the delay
        (wake plus loop cycles) until this core meets the barrier.

        The analytic twin of :meth:`compute`: the compute-phase
        fast-forward charges every core up front and resolves the phase
        to the maximum returned delay instead of parking one process
        per core.  ``timing`` overrides the kernel's own per-core rate
        (a heterogeneous tile class's rate table); ``None`` keeps the
        kernel timing, which is the default-class path.
        """
        if timing is None:
            cycles = kernel.compute_cycles(sub_slice.elements, n)
        else:
            cycles = timing.cycles(sub_slice.elements)
        self.jobs_executed += 1
        self.busy_cycles += cycles
        return self.wake_latency + cycles

    def compute(self, kernel: Kernel, sub_slice: WorkSlice, n: int,
                timing: typing.Optional[KernelTiming] = None
                ) -> typing.Generator:
        """Run the kernel's loop over ``sub_slice`` (timing only).

        Empty sub-slices still pay the wake latency (the core is
        released from the barrier and immediately re-parks).
        """
        # One scheduler event instead of wake-then-compute: the core
        # resumes at the identical cycle, and nothing can observe the
        # intermediate wake instant (the core touches no shared
        # resource between waking and finishing its loop).
        delay = self.charge(kernel, sub_slice, n, timing)
        if delay:
            yield delay

    def reset(self) -> None:
        """Zero the statistics counters (boot state)."""
        self.jobs_executed = 0
        self.busy_cycles = 0

    def snapshot(self) -> typing.Tuple[int, int]:
        """Capture the statistics counters; pair with :meth:`restore`."""
        return (self.jobs_executed, self.busy_cycles)

    def restore(self, state: typing.Tuple[int, int]) -> None:
        """Restore a :meth:`snapshot` of the statistics counters."""
        self.jobs_executed, self.busy_cycles = state


@functools.lru_cache(maxsize=4096)
def _split_among_cores_cached(
        elements: int, lo: int,
        num_cores: int) -> typing.Tuple[WorkSlice, ...]:
    relative = split_range(elements, num_cores)
    return tuple(
        WorkSlice(index=sub.index, lo=lo + sub.lo, hi=lo + sub.hi)
        for sub in relative
    )


def split_among_cores(work: WorkSlice, num_cores: int) -> typing.List[WorkSlice]:
    """Split a cluster's slice into per-core sub-slices (block schedule).

    Memoized per ``(elements, lo, num_cores)`` the way ``split_range``
    is per ``(total, parts)``: a sweep recomputes the same splits for
    every job, and ``WorkSlice`` is frozen so cached slices are safely
    shared.
    """
    return list(_split_among_cores_cached(
        work.elements, work.lo, num_cores))
