"""Reusable cluster hardware barrier.

Snitch-style clusters provide a single-cycle-arbitration hardware
barrier; crossing it costs a small fixed latency once the last party
arrives.  The barrier is generation-counted so the same instance can be
reused phase after phase (wake → compute → write-back) without
re-allocation races.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim import Event, Simulator


def _fire_release(payload: typing.Tuple[Event, int]) -> None:
    """Trigger a barrier release with its generation as the value.

    Module-level so the fast-forward crossing allocates no closure; the
    naive path's per-crossing lambda is kept untouched as the reference.
    """
    release, generation = payload
    release.trigger(generation)


class Barrier:
    """A reusable barrier for a fixed set of parties."""

    def __init__(self, sim: Simulator, parties: int, latency: int = 2,
                 name: str = "barrier") -> None:
        if parties <= 0:
            raise SimulationError(f"{name}: parties must be positive, got {parties}")
        if latency < 0:
            raise SimulationError(f"{name}: negative latency {latency}")
        self.sim = sim
        self.parties = parties
        self.latency = latency
        self.name = name
        self._generation = 0
        self._arrived = 0
        self._release: Event = sim.event(name=f"{name}.gen0")
        #: Generations crossed through :meth:`wait_all_known` (the
        #: closed-form fast-forward) instead of per-party arrivals.
        self.ff_crossings = 0

    def wait(self) -> typing.Generator:
        """Arrive at the barrier; resumes when all parties have arrived.

        Returns the generation number that was crossed.
        """
        generation = self._generation
        release = self._release
        self._arrived += 1
        if self._arrived > self.parties:  # pragma: no cover - guarded below
            raise SimulationError(f"{self.name}: more arrivals than parties")
        if self._arrived == self.parties:
            # Last arrival: open the next generation, release this one.
            self._generation += 1
            self._arrived = 0
            self._release = self.sim.event(
                name=f"{self.name}.gen{self._generation}")
            if self.latency:
                self.sim.schedule(
                    self.latency, lambda _arg: release.trigger(generation))
            else:
                release.trigger(generation)
            yield release
        else:
            yield release
        return generation

    def wait_all_known(self, last_arrival_delay: int) -> typing.Generator:
        """Cross the barrier in closed form: the caller arrives now and
        every other party's arrival delay is already known, the largest
        being ``last_arrival_delay`` cycles from now.

        This is the compute-phase fast-forward: instead of one parked
        process per party each waking to arrive, the release cycle is
        ``now + last_arrival_delay + latency`` by construction, and the
        crossing costs two timer callbacks regardless of party count.
        Cycle- and order-identical to ``parties - 1`` spawned processes
        each arriving via :meth:`wait`: the kickoff hop occupies the
        queue slot of the first spawned party's kickoff, the crossing
        entry fires where the naive last arrival would resume, and the
        release trigger is scheduled at that same instant.

        Only valid as the opening arrival of a generation (nobody
        already waiting); returns the generation crossed, like
        :meth:`wait`.
        """
        generation = self._generation
        yield self.cross_all_known(last_arrival_delay)
        return generation

    def cross_all_known(self, last_arrival_delay: int) -> Event:
        """Non-generator form of :meth:`wait_all_known`: commit the
        crossing and return the release event for the caller to park
        on directly (the DM core's flattened fast path)."""
        if last_arrival_delay < 0:
            raise SimulationError(
                f"{self.name}: negative last arrival delay "
                f"{last_arrival_delay}")
        if self._arrived:
            raise SimulationError(
                f"{self.name}: closed-form crossing with {self._arrived} "
                "parties already waiting")
        release = self._release
        self._arrived = 1
        self.ff_crossings += 1
        self.sim.schedule(0, self._ff_kickoff,
                          (last_arrival_delay, release))
        return release

    def _ff_kickoff(self, payload: typing.Tuple[int, Event]) -> None:
        """Runs where the naive path's first spawned party would kick
        off; places (or runs) the crossing at the last arrival cycle."""
        delay, release = payload
        if delay:
            self.sim.schedule(delay, self._ff_cross, release)
        else:
            self._ff_cross(release)

    def _ff_cross(self, release: Event) -> None:
        """The virtual last arrival: identical bookkeeping and release
        scheduling to the final :meth:`wait` arrival."""
        generation = self._generation
        self._generation += 1
        self._arrived = 0
        self._release = self.sim.event(
            name=f"{self.name}.gen{self._generation}")
        if self.latency:
            self.sim.schedule(self.latency, _fire_release,
                              (release, generation))
        else:
            release.trigger(generation)

    def reset(self) -> None:
        """Restore boot state: generation zero, nobody waiting.

        Only legal when the current generation has no arrivals (every
        prior generation fully crossed).
        """
        if self._arrived:
            raise SimulationError(
                f"{self.name}: cannot reset with {self._arrived} "
                "parties waiting")
        self._generation = 0
        self._release = self.sim.event(name=f"{self.name}.gen0")
        self.ff_crossings = 0

    def snapshot(self) -> typing.Tuple[int, int]:
        """Capture crossing state; only legal with nobody waiting."""
        if self._arrived:
            raise SimulationError(
                f"{self.name}: cannot snapshot with {self._arrived} "
                "parties waiting")
        return (self._generation, self.ff_crossings)

    def restore(self, state: typing.Tuple[int, int]) -> None:
        """Restore a :meth:`snapshot`; only legal with nobody waiting."""
        if self._arrived:
            raise SimulationError(
                f"{self.name}: cannot restore with {self._arrived} "
                "parties waiting")
        self._generation, self.ff_crossings = state
        self._release = self.sim.event(
            name=f"{self.name}.gen{self._generation}")

    @property
    def generation(self) -> int:
        """Number of fully-crossed generations so far."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived
