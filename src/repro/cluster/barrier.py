"""Reusable cluster hardware barrier.

Snitch-style clusters provide a single-cycle-arbitration hardware
barrier; crossing it costs a small fixed latency once the last party
arrives.  The barrier is generation-counted so the same instance can be
reused phase after phase (wake → compute → write-back) without
re-allocation races.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim import Event, Simulator


class Barrier:
    """A reusable barrier for a fixed set of parties."""

    def __init__(self, sim: Simulator, parties: int, latency: int = 2,
                 name: str = "barrier") -> None:
        if parties <= 0:
            raise SimulationError(f"{name}: parties must be positive, got {parties}")
        if latency < 0:
            raise SimulationError(f"{name}: negative latency {latency}")
        self.sim = sim
        self.parties = parties
        self.latency = latency
        self.name = name
        self._generation = 0
        self._arrived = 0
        self._release: Event = sim.event(name=f"{name}.gen0")

    def wait(self) -> typing.Generator:
        """Arrive at the barrier; resumes when all parties have arrived.

        Returns the generation number that was crossed.
        """
        generation = self._generation
        release = self._release
        self._arrived += 1
        if self._arrived > self.parties:  # pragma: no cover - guarded below
            raise SimulationError(f"{self.name}: more arrivals than parties")
        if self._arrived == self.parties:
            # Last arrival: open the next generation, release this one.
            self._generation += 1
            self._arrived = 0
            self._release = self.sim.event(
                name=f"{self.name}.gen{self._generation}")
            if self.latency:
                self.sim.schedule(
                    self.latency, lambda _arg: release.trigger(generation))
            else:
                release.trigger(generation)
            yield release
        else:
            yield release
        return generation

    def reset(self) -> None:
        """Restore boot state: generation zero, nobody waiting.

        Only legal when the current generation has no arrivals (every
        prior generation fully crossed).
        """
        if self._arrived:
            raise SimulationError(
                f"{self.name}: cannot reset with {self._arrived} "
                "parties waiting")
        self._generation = 0
        self._release = self.sim.event(name=f"{self.name}.gen0")

    @property
    def generation(self) -> int:
        """Number of fully-crossed generations so far."""
        return self._generation

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived
