"""Compute-cluster models (Snitch-style: 8 worker cores + 1 DM core).

A cluster executes offloaded job slices.  The *data-mover* (DM) core
runs the device-side runtime (:mod:`repro.cluster.dm_core`): it sleeps
until the host writes a job-descriptor pointer into the cluster's
mailbox, fetches and decodes the descriptor, stages the slice's working
set into the TCDM with the DMA engine, releases the worker cores,
synchronizes on the hardware barrier, writes results back and signals
completion to the host.

Worker cores (:mod:`repro.cluster.worker`) model per-core compute time
with the kernel's calibrated streaming-loop rate; the slowest core's
sub-slice bounds the cluster's compute phase, so uneven splits show up
as real skew.
"""

from repro.cluster.barrier import Barrier
from repro.cluster.cluster import Cluster
from repro.cluster.dma import DmaEngine
from repro.cluster.mailbox import Mailbox
from repro.cluster.worker import WorkerCore

__all__ = ["Barrier", "Cluster", "DmaEngine", "Mailbox", "WorkerCore"]
