"""Per-cluster DMA engine.

Bulk job data moves over two shared, bandwidth-arbitrated memory
channels (independent read and write channels, AXI-style), not over the
narrow control interconnect.  Every cluster owns a DMA engine; when all
M clusters stage their slices simultaneously, their transfers serialize
on the shared channel, so the aggregate staging time is
``total_bytes / channel_width`` — for DAXPY's 16·N inbound bytes over a
64 B/cycle channel, the paper's ``N/4`` term, independent of M.

Timing only: the engine charges setup and channel occupancy.  The
functional byte movement is performed by the device runtime at transfer
completion (see :mod:`repro.cluster.dm_core`), keeping state changes
atomic at a single simulated instant.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim import Simulator, ThroughputChannel


class DmaEngine:
    """One cluster's DMA engine over the shared memory channels."""

    def __init__(self, sim: Simulator, read_channel: ThroughputChannel,
                 write_channel: ThroughputChannel, setup_cycles: int = 8,
                 name: str = "dma") -> None:
        if setup_cycles < 0:
            raise SimulationError(f"{name}: negative setup cycles")
        self.sim = sim
        self.read_channel = read_channel
        self.write_channel = write_channel
        self.setup_cycles = setup_cycles
        self.name = name
        self.transfers_in = 0
        self.transfers_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def reset(self) -> None:
        """Zero the statistics counters (boot state)."""
        self.transfers_in = 0
        self.transfers_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def transfer_in(self, nbytes: int) -> typing.Generator:
        """Stage ``nbytes`` from main memory into the TCDM.

        Process-style: resumes when the transfer has fully landed.
        Zero-byte transfers complete immediately (no setup either).
        """
        yield from self._transfer(self.read_channel, nbytes, inbound=True)

    def transfer_out(self, nbytes: int) -> typing.Generator:
        """Write ``nbytes`` of results back to main memory."""
        yield from self._transfer(self.write_channel, nbytes, inbound=False)

    def _transfer(self, channel: ThroughputChannel, nbytes: int,
                  inbound: bool) -> typing.Generator:
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        if nbytes == 0:
            return
        if inbound:
            self.transfers_in += 1
            self.bytes_in += nbytes
        else:
            self.transfers_out += 1
            self.bytes_out += nbytes
        if self.setup_cycles:
            yield self.setup_cycles
        yield channel.transfer(nbytes)
