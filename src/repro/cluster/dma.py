"""Per-cluster DMA engine.

Bulk job data moves over two shared, bandwidth-arbitrated memory
channels (independent read and write channels, AXI-style), not over the
narrow control interconnect.  Every cluster owns a DMA engine; when all
M clusters stage their slices simultaneously, their transfers serialize
on the shared channel, so the aggregate staging time is
``total_bytes / channel_width`` — for DAXPY's 16·N inbound bytes over a
64 B/cycle channel, the paper's ``N/4`` term, independent of M.

Timing only: the engine charges setup and channel occupancy.  The
functional byte movement is performed by the device runtime at transfer
completion (see :mod:`repro.cluster.dm_core`), keeping state changes
atomic at a single simulated instant.
"""

from __future__ import annotations

import typing

from repro import flags
from repro.errors import SimulationError
from repro.sim import Event, Simulator, ThroughputChannel


class DmaEngine:
    """One cluster's DMA engine over the shared memory channels."""

    def __init__(self, sim: Simulator, read_channel: ThroughputChannel,
                 write_channel: ThroughputChannel, setup_cycles: int = 8,
                 name: str = "dma") -> None:
        if setup_cycles < 0:
            raise SimulationError(f"{name}: negative setup cycles")
        self.sim = sim
        self.read_channel = read_channel
        self.write_channel = write_channel
        self.setup_cycles = setup_cycles
        self.name = name
        self.transfers_in = 0
        self.transfers_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Transfers resolved through a channel reservation (one parked
        #: event) instead of the setup-then-transfer event pair.
        self.ff_transfers = 0
        #: Transfers that wanted the fast path but had to take the
        #: event loop (channel without reservations, mismatched setup
        #: lead, or a poisoned reservation window).
        self.ff_fallbacks = 0

    def reset(self) -> None:
        """Zero the statistics counters (boot state)."""
        self.transfers_in = 0
        self.transfers_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.ff_transfers = 0
        self.ff_fallbacks = 0

    def snapshot(self) -> typing.Tuple[int, ...]:
        """Capture the statistics counters; pair with :meth:`restore`."""
        return (self.transfers_in, self.transfers_out, self.bytes_in,
                self.bytes_out, self.ff_transfers, self.ff_fallbacks)

    def restore(self, state: typing.Tuple[int, ...]) -> None:
        """Restore a :meth:`snapshot` of the statistics counters."""
        (self.transfers_in, self.transfers_out, self.bytes_in,
         self.bytes_out, self.ff_transfers, self.ff_fallbacks) = state

    def transfer_in(self, nbytes: int) -> typing.Generator:
        """Stage ``nbytes`` from main memory into the TCDM.

        Process-style: resumes when the transfer has fully landed.
        Zero-byte transfers complete immediately (no setup either).
        """
        yield from self._transfer(self.read_channel, nbytes, inbound=True)

    def transfer_out(self, nbytes: int) -> typing.Generator:
        """Write ``nbytes`` of results back to main memory."""
        yield from self._transfer(self.write_channel, nbytes, inbound=False)

    def reserve_in(self, nbytes: int) -> typing.Optional[Event]:
        """Non-generator form of :meth:`transfer_in`'s fast path.

        Commits the transfer's channel slot in closed form and returns
        the completion event for the caller to park on directly (the DM
        core's flattened fast path).  Returns ``None`` — with nothing
        charged — when the closed form is unavailable (zero bytes or no
        reservation) and the caller must run the reference generator.
        Callers must have checked ``REPRO_NAIVE_CHANNEL`` themselves.
        """
        return self._reserve(self.read_channel, nbytes, inbound=True)

    def reserve_out(self, nbytes: int) -> typing.Optional[Event]:
        """Outbound counterpart of :meth:`reserve_in`."""
        return self._reserve(self.write_channel, nbytes, inbound=False)

    def _reserve(self, channel: ThroughputChannel, nbytes: int,
                 inbound: bool) -> typing.Optional[Event]:
        if nbytes <= 0 or not channel.can_reserve(self.setup_cycles):
            return None
        if inbound:
            self.transfers_in += 1
            self.bytes_in += nbytes
        else:
            self.transfers_out += 1
            self.bytes_out += nbytes
        self.ff_transfers += 1
        return channel.reserve_transfer(self.setup_cycles, nbytes)

    def _transfer(self, channel: ThroughputChannel, nbytes: int,
                  inbound: bool) -> typing.Generator:
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        if nbytes == 0:
            return
        if not flags.naive_channel():
            # Fast path: commit the transfer's channel slot in closed
            # form and park once on its completion, instead of waking
            # for the setup delay and again for the channel grant.
            # Cycle- and order-identical to the event path (see
            # repro.sim.resource module docstring).
            done = self._reserve(channel, nbytes, inbound)
            if done is not None:
                yield done
                return
            self.ff_fallbacks += 1
        if inbound:
            self.transfers_in += 1
            self.bytes_in += nbytes
        else:
            self.transfers_out += 1
            self.bytes_out += nbytes
        if self.setup_cycles:
            yield self.setup_cycles
        yield channel.transfer(nbytes)
