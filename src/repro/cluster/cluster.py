"""The cluster top-level: components + the DM core process."""

from __future__ import annotations

import functools
import typing

import numpy

from repro import flags
from repro.cluster.barrier import Barrier
from repro.cluster.dm_core import serve_jobs
from repro.cluster.dma import DmaEngine
from repro.cluster.mailbox import Mailbox
from repro.cluster.worker import WorkerCore, split_among_cores
from repro.errors import ConfigError
from repro.mem.memory import MainMemory
from repro.mem.tcdm import Tcdm
from repro.noc.xbar import Interconnect
from repro.sim import Simulator, ThroughputChannel, TraceRecorder

if typing.TYPE_CHECKING:
    from repro.kernels.base import Kernel, KernelTiming, WorkSlice
    from repro.soc.fabricbarrier import FabricBarrier
    from repro.soc.tiles import ResolvedTile


@functools.lru_cache(maxsize=4096)
def _phase_core_cycles(kernel: "Kernel", elements: int, num_cores: int,
                       n: int,
                       timing: "typing.Optional[KernelTiming]" = None
                       ) -> typing.Tuple[int, ...]:
    """Per-core compute cycles for one cluster compute phase.

    The whole phase's timing is a function of the cluster slice's
    element count alone (the block schedule splits counts, not
    positions), so one NumPy pass over the per-core counts — via the
    kernel's vectorized timing — covers every cluster and every job of
    a sweep that shares the shape.  Kernel instances are registry
    singletons and ``KernelTiming`` is frozen, so keying the memo on
    the objects is stable.  ``timing`` is a tile class's per-kernel
    rate override; ``None`` uses the kernel's own (default-class)
    timing, including any ``compute_cycles`` subclass override.
    """
    from repro.kernels.base import split_range
    counts = numpy.fromiter(
        (sub.hi - sub.lo for sub in split_range(elements, num_cores)),
        dtype=numpy.int64, count=num_cores)
    if timing is None:
        cycles = kernel.compute_cycles_array(counts, n)
    else:
        cycles = timing.cycles_array(counts)
    return tuple(int(c) for c in cycles)


def _worker_body(cluster: "Cluster", worker: WorkerCore, kernel: "Kernel",
                 sub: "WorkSlice", n: int,
                 timing: "typing.Optional[KernelTiming]"
                 ) -> typing.Generator:
    """One spawned worker core: compute, then meet at the barrier.

    The reference compute-phase body, used when ``REPRO_NAIVE_BARRIER``
    disables the closed-form crossing.
    """
    yield from worker.compute(kernel, sub, n, timing)
    yield from cluster.barrier.wait()


class Cluster:
    """One compute cluster: DM core, worker cores, TCDM, DMA, barrier.

    The cluster is passive until :meth:`start` spawns the DM core's
    :func:`~repro.cluster.dm_core.serve_jobs` loop; after that it serves
    every job the host dispatches to its mailbox for the lifetime of the
    simulation.
    """

    def __init__(self, sim: Simulator, cluster_id: int, noc: Interconnect,
                 memory: MainMemory, tcdm: Tcdm, mailbox: Mailbox,
                 read_channel: ThroughputChannel,
                 write_channel: ThroughputChannel,
                 fabric_barrier: typing.Optional["FabricBarrier"] = None,
                 num_workers: int = 8,
                 wake_latency: int = 4,
                 dm_decode_cycles: int = 12,
                 dma_setup_cycles: int = 8,
                 barrier_latency: int = 2,
                 worker_wake_latency: int = 2,
                 tile: "typing.Optional[ResolvedTile]" = None,
                 trace: typing.Optional[TraceRecorder] = None) -> None:
        if num_workers <= 0:
            raise ConfigError(
                f"cluster {cluster_id} needs at least one worker core, "
                f"got {num_workers}")
        if wake_latency < 0 or dm_decode_cycles < 0:
            raise ConfigError(
                f"cluster {cluster_id}: negative DM-core latency")
        self.sim = sim
        self.cluster_id = cluster_id
        self.noc = noc
        self.memory = memory
        self.tcdm = tcdm
        self.mailbox = mailbox
        self.fabric_barrier = fabric_barrier
        self.wake_latency = wake_latency
        self.dm_decode_cycles = dm_decode_cycles
        #: The resolved tile spec this cluster was built from (``None``
        #: for hand-built clusters, which behave as the default class).
        self.tile = tile
        self.trace = (trace if trace is not None
                      else TraceRecorder(sim, enabled=False))
        self.dma = DmaEngine(
            sim, read_channel, write_channel, setup_cycles=dma_setup_cycles,
            name=f"cluster{cluster_id}.dma")
        self.workers = [
            WorkerCore(sim, cluster_id, core_id,
                       wake_latency=worker_wake_latency)
            for core_id in range(num_workers)
        ]
        # Workers plus the DM core meet at the hardware barrier.
        self.barrier = Barrier(
            sim, parties=num_workers + 1, latency=barrier_latency,
            name=f"cluster{cluster_id}.barrier")
        self.jobs_completed = 0
        #: Compute phases resolved through the barrier's closed-form
        #: crossing instead of one spawned process per worker core.
        self.ff_compute_phases = 0
        self._dm_process = None

    def compute_phase(self, kernel: "Kernel", work: "WorkSlice", n: int,
                      name_suffix: str = "") -> typing.Generator:
        """Run one worker compute phase over ``work`` (DM-core side).

        Fast path (default): every core's finish delay is known up
        front (wake latency plus calibrated loop cycles), so the phase
        charges all worker statistics now and crosses the barrier in
        closed form — two timer callbacks instead of ``num_workers``
        spawned processes.  ``REPRO_NAIVE_BARRIER`` selects the
        reference path: spawn one process per core, each arriving at
        the barrier individually.  Both paths resume the DM core at the
        identical cycle with identical event ordering.
        """
        if flags.naive_barrier():
            timing = self.compute_timing(kernel)
            sub_slices = split_among_cores(work, len(self.workers))
            label = f"cluster{self.cluster_id}"
            for worker, sub in zip(self.workers, sub_slices):
                self.sim.spawn(
                    _worker_body(self, worker, kernel, sub, n, timing),
                    name=f"{label}.core{worker.core_id}{name_suffix}",
                )
            yield from self.barrier.wait()
            return
        yield self.compute_phase_fast(kernel, work, n)

    def compute_phase_fast(self, kernel: "Kernel", work: "WorkSlice",
                           n: int) -> "typing.Any":
        """Non-generator form of :meth:`compute_phase`'s fast path.

        Charges every worker core now and returns the barrier release
        event for the caller to park on directly (the DM core's
        flattened fast path).  Callers must have checked
        ``REPRO_NAIVE_BARRIER`` themselves.
        """
        cycles = _phase_core_cycles(
            kernel, work.elements, len(self.workers), n,
            self.compute_timing(kernel))
        last = 0
        for worker, worker_cycles in zip(self.workers, cycles):
            worker.jobs_executed += 1
            worker.busy_cycles += worker_cycles
            delay = worker.wake_latency + worker_cycles
            if delay > last:
                last = delay
        self.ff_compute_phases += 1
        return self.barrier.cross_all_known(last)

    def compute_timing(self, kernel: "Kernel"
                       ) -> "typing.Optional[KernelTiming]":
        """This tile's per-core rate for ``kernel``, or ``None``.

        ``None`` means "use the kernel's own timing" — the default
        class and hand-built clusters, preserving bit-identity with the
        homogeneous fabric.  Rated tile classes must rate every kernel
        they run (``ConfigError`` otherwise, raised by the tile spec).
        """
        if self.tile is None:
            return None
        return self.tile.timing_for(kernel.name)

    def start(self):
        """Spawn the DM core's job-serving loop (idempotent)."""
        if self._dm_process is None:
            self._dm_process = self.sim.spawn(
                serve_jobs(self), name=f"cluster{self.cluster_id}.dm")
        return self._dm_process

    def reset(self) -> None:
        """Restore boot state after a drained run.

        The DM core's :func:`serve_jobs` process survives: parked on its
        mailbox event it is indistinguishable from a freshly-started
        loop, so it is *not* respawned (see
        :meth:`repro.soc.manticore.ManticoreSystem.reset` for the
        system-wide invariants).
        """
        self.jobs_completed = 0
        self.ff_compute_phases = 0
        self.mailbox.reset()
        self.dma.reset()
        self.barrier.reset()
        for worker in self.workers:
            worker.reset()
        self.tcdm.reset()

    def snapshot(self) -> typing.Tuple:
        """Capture cluster state for warm restore (quiescent only)."""
        return (
            self.jobs_completed,
            self.ff_compute_phases,
            self.mailbox.snapshot(),
            self.dma.snapshot(),
            self.barrier.snapshot(),
            tuple(worker.snapshot() for worker in self.workers),
            self.tcdm.snapshot(),
        )

    def restore(self, state: typing.Tuple) -> None:
        """Restore a :meth:`snapshot` (quiescent states only)."""
        (self.jobs_completed, self.ff_compute_phases, mailbox, dma,
         barrier, workers, tcdm) = state
        self.mailbox.restore(mailbox)
        self.dma.restore(dma)
        self.barrier.restore(barrier)
        for worker, wstate in zip(self.workers, workers):
            worker.restore(wstate)
        self.tcdm.restore(tcdm)

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cluster {self.cluster_id} workers={self.num_workers} "
                f"jobs={self.jobs_completed}>")
