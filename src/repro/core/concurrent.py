"""Concurrent space-shared offloads: several jobs, disjoint cluster ranges.

A 32-cluster fabric running one 16-cluster job leaves half the machine
idle; space sharing launches several jobs at once on disjoint cluster
ranges.  Because all jobs' constant offload overheads (descriptor
stores, dispatch, wake-up, synchronization) overlap in time — and the
shared memory channels serialize the same aggregate DMA either way —
space sharing amortizes exactly the overhead the paper attacks; see
``benchmarks/bench_concurrent.py`` (experiment E10).

Cluster ranges are assigned contiguously in job order.  Completion uses
a single credit-counter threshold equal to the total cluster count (the
unit doubles as a cross-job completion barrier), or one AMO flag per
job on baseline hardware.

Each job is staged through :class:`repro.core.staging.JobBinding`, the
same binding the plain offload path uses.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.staging import DEFAULT_MAX_CYCLES, JobBinding, run_to_completion
from repro.errors import OffloadError
from repro.runtime.api import make_runtime
from repro.runtime.trace import build_offload_trace
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class ConcurrentJob:
    """One job in a concurrent launch."""

    kernel_name: str
    n: int
    num_clusters: int
    scalars: typing.Optional[typing.Mapping[str, float]] = None
    inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None
    seed: int = 0
    exec_mode: str = "phased"


@dataclasses.dataclass(frozen=True)
class ConcurrentJobResult:
    """One job's outcome within a concurrent launch."""

    kernel_name: str
    n: int
    num_clusters: int
    first_cluster: int
    outputs: typing.Mapping[str, numpy.ndarray]
    #: Cycle at which this job's last cluster signalled completion.
    completed_cycle: int
    verified: typing.Optional[bool]


@dataclasses.dataclass(frozen=True)
class ConcurrentOffloadResult:
    """A whole concurrent launch."""

    jobs: typing.Tuple[ConcurrentJobResult, ...]
    start_cycle: int
    end_cycle: int
    variant: str

    @property
    def makespan_cycles(self) -> int:
        """Host-observed time from launch to all-jobs-complete."""
        return self.end_cycle - self.start_cycle

    def __str__(self) -> str:
        names = "+".join(job.kernel_name for job in self.jobs)
        return (f"concurrent[{names}] on "
                f"{sum(j.num_clusters for j in self.jobs)} clusters "
                f"[{self.variant}]: {self.makespan_cycles} cycles")


def offload_concurrent(system: ManticoreSystem,
                       jobs: typing.Sequence[ConcurrentJob],
                       variant: str = "auto", verify: bool = True,
                       max_cycles: int = DEFAULT_MAX_CYCLES
                       ) -> ConcurrentOffloadResult:
    """Launch several jobs at once on disjoint cluster ranges.

    Ranges are assigned contiguously in job order; their total width
    must fit the fabric.

    Raises
    ------
    OffloadError
        On empty launches, over-wide totals, or invalid job requests.
    """
    if not jobs:
        raise OffloadError("concurrent offload of zero jobs")
    total = sum(job.num_clusters for job in jobs)
    if total > system.config.num_clusters:
        raise OffloadError(
            f"concurrent jobs need {total} clusters, fabric has "
            f"{system.config.num_clusters}")

    runtime = make_runtime(system, variant)

    bindings: typing.List[JobBinding] = []
    first = 0
    for job in jobs:
        bindings.append(JobBinding.bind(
            system, runtime, job.kernel_name, job.n, job.num_clusters,
            scalars=job.scalars, inputs=job.inputs, seed=job.seed,
            exec_mode=job.exec_mode, first_cluster=first))
        first += job.num_clusters

    flag_addrs = [binding.flag_addr for binding in bindings
                  if binding.flag_addr is not None]
    result_box: typing.Dict[str, int] = {}
    program = runtime.concurrent_offload_program(
        [(binding.desc, binding.desc_addr) for binding in bindings],
        flag_addrs if flag_addrs else None, result_box)
    process = system.host.run_program(program, name="offload.concurrent")
    run_to_completion(system, process, max_cycles)
    system.run()

    trace = build_offload_trace(
        system.trace, result_box["start_cycle"], result_box["end_cycle"])
    completion_by_cluster = {
        phases.cluster_id: phases.completion_signalled
        for phases in trace.clusters
    }

    job_results = []
    for job, binding in zip(jobs, bindings):
        outputs, verified = binding.finish(verify)
        first_cluster = binding.desc.first_cluster
        completed = max(
            completion_by_cluster[cid]
            for cid in range(first_cluster,
                             first_cluster + job.num_clusters))
        job_results.append(ConcurrentJobResult(
            kernel_name=job.kernel_name, n=job.n,
            num_clusters=job.num_clusters, first_cluster=first_cluster,
            outputs=outputs, completed_cycle=completed, verified=verified))

    return ConcurrentOffloadResult(
        jobs=tuple(job_results),
        start_cycle=result_box["start_cycle"],
        end_cycle=result_box["end_cycle"],
        variant=runtime.name)
