"""Concurrent space-shared offloads: several jobs, disjoint cluster ranges.

A 32-cluster fabric running one 16-cluster job leaves half the machine
idle; space sharing launches several jobs at once on disjoint cluster
ranges.  Because all jobs' constant offload overheads (descriptor
stores, dispatch, wake-up, synchronization) overlap in time — and the
shared memory channels serialize the same aggregate DMA either way —
space sharing amortizes exactly the overhead the paper attacks; see
``benchmarks/bench_concurrent.py`` (experiment E10).

Cluster ranges are assigned contiguously in job order.  Completion uses
a single credit-counter threshold equal to the total cluster count (the
unit doubles as a cross-job completion barrier), or one AMO flag per
job on baseline hardware.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import abi
from repro.core.offload import (
    DEFAULT_MAX_CYCLES,
    EXEC_MODES,
    _check_offload_shape,
    _prepare_inputs,
    _run_to_completion,
    _verify_outputs,
)
from repro.errors import OffloadError
from repro.kernels.registry import get_kernel
from repro.runtime.api import make_runtime
from repro.runtime.trace import build_offload_trace
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class ConcurrentJob:
    """One job in a concurrent launch."""

    kernel_name: str
    n: int
    num_clusters: int
    scalars: typing.Optional[typing.Mapping[str, float]] = None
    inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None
    seed: int = 0
    exec_mode: str = "phased"


@dataclasses.dataclass(frozen=True)
class ConcurrentJobResult:
    """One job's outcome within a concurrent launch."""

    kernel_name: str
    n: int
    num_clusters: int
    first_cluster: int
    outputs: typing.Mapping[str, numpy.ndarray]
    #: Cycle at which this job's last cluster signalled completion.
    completed_cycle: int
    verified: typing.Optional[bool]


@dataclasses.dataclass(frozen=True)
class ConcurrentOffloadResult:
    """A whole concurrent launch."""

    jobs: typing.Tuple[ConcurrentJobResult, ...]
    start_cycle: int
    end_cycle: int
    variant: str

    @property
    def makespan_cycles(self) -> int:
        """Host-observed time from launch to all-jobs-complete."""
        return self.end_cycle - self.start_cycle

    def __str__(self) -> str:
        names = "+".join(job.kernel_name for job in self.jobs)
        return (f"concurrent[{names}] on "
                f"{sum(j.num_clusters for j in self.jobs)} clusters "
                f"[{self.variant}]: {self.makespan_cycles} cycles")


def offload_concurrent(system: ManticoreSystem,
                       jobs: typing.Sequence[ConcurrentJob],
                       variant: str = "auto", verify: bool = True,
                       max_cycles: int = DEFAULT_MAX_CYCLES
                       ) -> ConcurrentOffloadResult:
    """Launch several jobs at once on disjoint cluster ranges.

    Ranges are assigned contiguously in job order; their total width
    must fit the fabric.

    Raises
    ------
    OffloadError
        On empty launches, over-wide totals, or invalid job requests.
    """
    if not jobs:
        raise OffloadError("concurrent offload of zero jobs")
    total = sum(job.num_clusters for job in jobs)
    if total > system.config.num_clusters:
        raise OffloadError(
            f"concurrent jobs need {total} clusters, fabric has "
            f"{system.config.num_clusters}")

    runtime = make_runtime(system, variant)
    memory = system.memory

    descs: typing.List[typing.Tuple[abi.JobDescriptor, int]] = []
    staged = []
    flag_addrs: typing.List[int] = []
    first = 0
    for job in jobs:
        kernel = get_kernel(job.kernel_name)
        scalars = dict(job.scalars) if job.scalars else {
            name: 1.0 for name in kernel.scalar_names}
        kernel.validate(job.n, scalars)
        if job.exec_mode not in EXEC_MODES:
            raise OffloadError(f"unknown exec mode {job.exec_mode!r}")
        _check_offload_shape(
            system, kernel, job.n, job.num_clusters,
            double_buffered=(job.exec_mode == "double_buffered"))
        inputs = _prepare_inputs(kernel, job.n, job.inputs, job.seed)

        input_addrs = {}
        for name in kernel.input_names:
            addr = memory.alloc_f64(kernel.input_length(name, job.n))
            memory.write_f64(addr, inputs[name])
            input_addrs[name] = addr
        output_addrs = {}
        for name in kernel.output_names:
            alias = kernel.output_alias(name)
            if alias is not None:
                output_addrs[name] = input_addrs[alias]
            else:
                output_addrs[name] = memory.alloc_f64(
                    kernel.output_length(name, job.n, job.num_clusters))

        if runtime.sync_mode == abi.SYNC_MODE_AMO:
            flag_addr = memory.alloc(8)
            flag_addrs.append(flag_addr)
            completion_addr = flag_addr
        else:
            completion_addr = system.syncunit_increment_addr

        desc = abi.JobDescriptor(
            kernel_name=job.kernel_name, n=job.n,
            num_clusters=job.num_clusters, first_cluster=first,
            sync_mode=runtime.sync_mode, completion_addr=completion_addr,
            exec_mode=EXEC_MODES[job.exec_mode], scalars=scalars,
            input_addrs=input_addrs, output_addrs=output_addrs)
        desc_addr = memory.alloc(8 * max(desc.words, 8), align=64)
        descs.append((desc, desc_addr))
        staged.append((kernel, scalars, inputs, output_addrs, first))
        first += job.num_clusters

    result_box: typing.Dict[str, int] = {}
    program = runtime.concurrent_offload_program(
        descs, flag_addrs if flag_addrs else None, result_box)
    process = system.host.run_program(program, name="offload.concurrent")
    _run_to_completion(system, process, max_cycles)
    system.run()

    trace = build_offload_trace(
        system.trace, result_box["start_cycle"], result_box["end_cycle"])
    completion_by_cluster = {
        phases.cluster_id: phases.completion_signalled
        for phases in trace.clusters
    }

    job_results = []
    for job, (kernel, scalars, inputs, output_addrs, first_cluster) \
            in zip(jobs, staged):
        outputs = {
            name: memory.read_f64(
                output_addrs[name],
                kernel.output_length(name, job.n, job.num_clusters))
            for name in kernel.output_names
        }
        verified = None
        if verify:
            _verify_outputs(kernel, job.n, job.num_clusters, scalars,
                            inputs, outputs)
            verified = True
        completed = max(
            completion_by_cluster[cid]
            for cid in range(first_cluster,
                             first_cluster + job.num_clusters))
        job_results.append(ConcurrentJobResult(
            kernel_name=job.kernel_name, n=job.n,
            num_clusters=job.num_clusters, first_cluster=first_cluster,
            outputs=outputs, completed_cycle=completed, verified=verified))

    return ConcurrentOffloadResult(
        jobs=tuple(job_results),
        start_cycle=result_box["start_cycle"],
        end_cycle=result_box["end_cycle"],
        variant=runtime.name)
