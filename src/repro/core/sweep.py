"""Measurement sweeps over (kernel, N, M, variant) grids.

Every figure in the paper is a view over such a grid: Fig. 1 (left) is
``runtime vs M`` at fixed N for two variants, Fig. 1 (right) is the
ratio of two grids, and the MAPE table validates a model against one.
:func:`sweep` runs one simulation per grid point on a boot-state SoC
(pooled instances are reset bit-identically between points, so no state
leaks) and returns a queryable :class:`SweepResult`.

Grids rarely pay one simulation per point in practice: the
:class:`~repro.core.executor.SweepExecutor` consults the content-
addressed :class:`~repro.core.cache.SweepCache` first, then hands the
misses to the :class:`~repro.core.batch.BatchPlanner`, which times
provable points closed-form from a handful of calibration simulations
— and the calibrations themselves are persisted in the same cache (the
*calibration store*), so a warm store can measure a brand-new grid
without entering the event engine at all.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import OffloadError
from repro.soc.config import SoCConfig

if typing.TYPE_CHECKING:
    from repro.core.cache import SweepCache


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One measured grid point."""

    kernel_name: str
    n: int
    num_clusters: int
    variant: str
    runtime_cycles: int
    phases: typing.Mapping[str, int]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """An immutable collection of sweep points with query helpers."""

    points: typing.Tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> typing.Iterator[SweepPoint]:
        return iter(self.points)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, kernel_name: typing.Optional[str] = None,
               n: typing.Optional[int] = None,
               num_clusters: typing.Optional[int] = None,
               variant: typing.Optional[str] = None) -> "SweepResult":
        """Sub-grid matching the given coordinates."""
        selected = tuple(
            p for p in self.points
            if (kernel_name is None or p.kernel_name == kernel_name)
            and (n is None or p.n == n)
            and (num_clusters is None or p.num_clusters == num_clusters)
            and (variant is None or p.variant == variant)
        )
        return SweepResult(points=selected)

    def runtime(self, n: int, num_clusters: int) -> int:
        """The single runtime at (N, M); raises if absent or ambiguous."""
        matches = [p for p in self.points
                   if p.n == n and p.num_clusters == num_clusters]
        if len(matches) != 1:
            raise OffloadError(
                f"{len(matches)} sweep points at N={n}, M={num_clusters}; "
                "filter by kernel/variant first")
        return matches[0].runtime_cycles

    def runtimes_by_m(self, n: int) -> typing.Dict[int, int]:
        """``{M: cycles}`` at fixed N (after filtering to one variant)."""
        result: typing.Dict[int, int] = {}
        for point in self.points:
            if point.n != n:
                continue
            if point.num_clusters in result:
                raise OffloadError(
                    f"duplicate M={point.num_clusters} at N={n}; "
                    "filter by kernel/variant first")
            result[point.num_clusters] = point.runtime_cycles
        return dict(sorted(result.items()))

    def _memo(self, slot: str, compute: typing.Callable[[], typing.Any]
              ) -> typing.Any:
        """Lazily cache a derived view (the points tuple is immutable).

        The dataclass is frozen, so cached views go through
        ``object.__setattr__``; they are plain derived data, never part
        of equality or ``repr``.
        """
        cached = self.__dict__.get(slot)
        if cached is None:
            cached = compute()
            object.__setattr__(self, slot, cached)
        return cached

    def runtime_grid(self) -> typing.Dict[typing.Tuple[int, int], int]:
        """``{(M, N): cycles}`` over the whole (filtered) result.

        Memoized: large analyses (model fits, speedup grids) call this
        repeatedly; the scan runs once and callers get a fresh copy.
        """

        def compute() -> typing.Dict[typing.Tuple[int, int], int]:
            grid: typing.Dict[typing.Tuple[int, int], int] = {}
            for point in self.points:
                key = (point.num_clusters, point.n)
                if key in grid:
                    raise OffloadError(
                        f"duplicate grid point {key}; filter by "
                        "kernel/variant first")
                grid[key] = point.runtime_cycles
            return grid

        return dict(self._memo("_runtime_grid", compute))

    def triples(self) -> typing.List[typing.Tuple[int, int, float]]:
        """``(M, N, cycles)`` triples for :meth:`OffloadModel.fit`."""
        return [(p.num_clusters, p.n, float(p.runtime_cycles))
                for p in self.points]

    def n_values(self) -> typing.List[int]:
        return list(self._memo(
            "_n_values", lambda: tuple(sorted({p.n for p in self.points}))))

    def m_values(self) -> typing.List[int]:
        return list(self._memo(
            "_m_values",
            lambda: tuple(sorted({p.num_clusters for p in self.points}))))

    def speedup_grid(self, baseline: "SweepResult"
                     ) -> typing.Dict[typing.Tuple[int, int], float]:
        """``{(M, N): baseline_cycles / self_cycles}`` on shared points.

        This is Fig. 1 (right): the speedup of the extended design over
        the baseline across the grid.
        """
        ours = self.runtime_grid()
        theirs = baseline.runtime_grid()
        shared = sorted(set(ours) & set(theirs))
        if not shared:
            raise OffloadError("the two sweeps share no grid points")
        return {key: theirs[key] / ours[key] for key in shared}

    def merged(self, other: "SweepResult") -> "SweepResult":
        """Concatenation of two sweeps."""
        return SweepResult(points=self.points + other.points)


def sweep(config: SoCConfig, kernel_name: str,
          n_values: typing.Sequence[int], m_values: typing.Sequence[int],
          variant: str = "auto",
          scalars: typing.Optional[typing.Mapping[str, float]] = None,
          seed: int = 0, verify: bool = True,
          progress: typing.Optional[typing.Callable[[SweepPoint], None]] = None,
          jobs: int = 1, cache: typing.Optional["SweepCache"] = None,
          reuse: bool = True,
          tile_group: typing.Optional[str] = None) -> SweepResult:
    """Measure a full (N, M) grid, one boot-state SoC per point.

    Every grid point is independent, so execution can fan out over
    worker processes; results come back in grid order (N-major, then M)
    regardless of ``jobs``, bit-identical to the serial path.  See
    :class:`repro.core.executor.SweepExecutor` for the machinery.

    Parameters
    ----------
    config:
        Fabric configuration; ``config.num_clusters`` is the fabric
        size, which every ``m`` must fit within.
    variant:
        Runtime variant for every point (``auto`` = all hardware
        features present in ``config``).
    progress:
        Optional callback invoked after each measured point, in grid
        order (used by the CLI to stream results).
    jobs:
        Worker processes: ``1`` (default) runs serially in-process,
        ``0`` uses every core, ``k > 1`` uses ``k`` workers.
    cache:
        Optional :class:`~repro.core.cache.SweepCache`; previously
        measured points are replayed from it instead of re-simulated.
    reuse:
        Lease SoC instances from a per-process
        :class:`~repro.soc.pool.SystemPool` (default) instead of
        constructing one per point; measurements are bit-identical
        either way.  ``REPRO_FRESH_SYSTEMS`` overrides to fresh.
    tile_group:
        Name of the fabric group to sweep over (heterogeneous fabrics);
        every ``m`` must fit within that group's tile count.  ``None``
        sweeps the fabric from cluster 0, the homogeneous behaviour.
    """
    from repro.core.executor import SweepExecutor

    executor = SweepExecutor(jobs=jobs, cache=cache, reuse=reuse)
    return executor.run(config, kernel_name, n_values, m_values,
                        variant=variant, scalars=scalars, seed=seed,
                        verify=verify, progress=progress,
                        tile_group=tile_group)
