"""Measurement sweeps over (kernel, N, M, variant) grids.

Every figure in the paper is a view over such a grid: Fig. 1 (left) is
``runtime vs M`` at fixed N for two variants, Fig. 1 (right) is the
ratio of two grids, and the MAPE table validates a model against one.
:func:`sweep` runs one simulation per grid point on a *fresh* SoC (no
state leaks between points) and returns a queryable
:class:`SweepResult`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.offload import offload
from repro.errors import OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One measured grid point."""

    kernel_name: str
    n: int
    num_clusters: int
    variant: str
    runtime_cycles: int
    phases: typing.Mapping[str, int]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """An immutable collection of sweep points with query helpers."""

    points: typing.Tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> typing.Iterator[SweepPoint]:
        return iter(self.points)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(self, kernel_name: typing.Optional[str] = None,
               n: typing.Optional[int] = None,
               num_clusters: typing.Optional[int] = None,
               variant: typing.Optional[str] = None) -> "SweepResult":
        """Sub-grid matching the given coordinates."""
        selected = tuple(
            p for p in self.points
            if (kernel_name is None or p.kernel_name == kernel_name)
            and (n is None or p.n == n)
            and (num_clusters is None or p.num_clusters == num_clusters)
            and (variant is None or p.variant == variant)
        )
        return SweepResult(points=selected)

    def runtime(self, n: int, num_clusters: int) -> int:
        """The single runtime at (N, M); raises if absent or ambiguous."""
        matches = [p for p in self.points
                   if p.n == n and p.num_clusters == num_clusters]
        if len(matches) != 1:
            raise OffloadError(
                f"{len(matches)} sweep points at N={n}, M={num_clusters}; "
                "filter by kernel/variant first")
        return matches[0].runtime_cycles

    def runtimes_by_m(self, n: int) -> typing.Dict[int, int]:
        """``{M: cycles}`` at fixed N (after filtering to one variant)."""
        result: typing.Dict[int, int] = {}
        for point in self.points:
            if point.n != n:
                continue
            if point.num_clusters in result:
                raise OffloadError(
                    f"duplicate M={point.num_clusters} at N={n}; "
                    "filter by kernel/variant first")
            result[point.num_clusters] = point.runtime_cycles
        return dict(sorted(result.items()))

    def runtime_grid(self) -> typing.Dict[typing.Tuple[int, int], int]:
        """``{(M, N): cycles}`` over the whole (filtered) result."""
        grid: typing.Dict[typing.Tuple[int, int], int] = {}
        for point in self.points:
            key = (point.num_clusters, point.n)
            if key in grid:
                raise OffloadError(
                    f"duplicate grid point {key}; filter by kernel/variant "
                    "first")
            grid[key] = point.runtime_cycles
        return grid

    def triples(self) -> typing.List[typing.Tuple[int, int, float]]:
        """``(M, N, cycles)`` triples for :meth:`OffloadModel.fit`."""
        return [(p.num_clusters, p.n, float(p.runtime_cycles))
                for p in self.points]

    def n_values(self) -> typing.List[int]:
        return sorted({p.n for p in self.points})

    def m_values(self) -> typing.List[int]:
        return sorted({p.num_clusters for p in self.points})

    def speedup_grid(self, baseline: "SweepResult"
                     ) -> typing.Dict[typing.Tuple[int, int], float]:
        """``{(M, N): baseline_cycles / self_cycles}`` on shared points.

        This is Fig. 1 (right): the speedup of the extended design over
        the baseline across the grid.
        """
        ours = self.runtime_grid()
        theirs = baseline.runtime_grid()
        shared = sorted(set(ours) & set(theirs))
        if not shared:
            raise OffloadError("the two sweeps share no grid points")
        return {key: theirs[key] / ours[key] for key in shared}

    def merged(self, other: "SweepResult") -> "SweepResult":
        """Concatenation of two sweeps."""
        return SweepResult(points=self.points + other.points)


def sweep(config: SoCConfig, kernel_name: str,
          n_values: typing.Sequence[int], m_values: typing.Sequence[int],
          variant: str = "auto",
          scalars: typing.Optional[typing.Mapping[str, float]] = None,
          seed: int = 0, verify: bool = True,
          progress: typing.Optional[typing.Callable[[SweepPoint], None]] = None
          ) -> SweepResult:
    """Measure a full (N, M) grid, one fresh SoC per point.

    Parameters
    ----------
    config:
        Fabric configuration; ``config.num_clusters`` is the fabric
        size, which every ``m`` must fit within.
    variant:
        Runtime variant for every point (``auto`` = all hardware
        features present in ``config``).
    progress:
        Optional callback invoked after each measured point (used by
        the CLI to stream results).
    """
    if not n_values or not m_values:
        raise OffloadError("sweep needs at least one N and one M value")
    bad = [m for m in m_values if m > config.num_clusters]
    if bad:
        raise OffloadError(
            f"m_values {bad} exceed the fabric size {config.num_clusters}")
    points = []
    for n in n_values:
        for m in m_values:
            system = ManticoreSystem(config)
            result = offload(system, kernel_name, n, m, scalars=scalars,
                             variant=variant, seed=seed, verify=verify)
            point = SweepPoint(
                kernel_name=kernel_name, n=n, num_clusters=m,
                variant=result.variant,
                runtime_cycles=result.runtime_cycles,
                phases=result.trace.phase_summary())
            points.append(point)
            if progress is not None:
                progress(point)
    return SweepResult(points=tuple(points))
