"""The paper's contribution: offload measurement, modeling, decisions.

- :mod:`repro.core.offload` — run one offloaded job end to end on a
  simulated SoC and measure it;
- :mod:`repro.core.staging` — the shared job-binding lifecycle every
  launch shape (plain, host, overlapped, concurrent) stages through;
- :mod:`repro.core.sweep` — measure grids of (kernel, N, M, variant)
  points, the raw material of every figure;
- :mod:`repro.core.executor` — parallel fan-out of sweep grids over
  worker processes, with deterministic grid-order reassembly;
- :mod:`repro.core.cache` — content-addressed memoization of measured
  sweep points (keyed on config digest + job coordinates);
- :mod:`repro.core.model` — the analytic runtime model (Eq. 1,
  generalized) and its least-squares fit;
- :mod:`repro.core.mape` — the validation metric (Eq. 2);
- :mod:`repro.core.decision` — the offload decision problem (Eq. 3 and
  extensions: deadline feasibility, host-vs-accelerator choice, energy).
"""

from repro.core.cache import SweepCache
from repro.core.decision import OffloadDecision, min_clusters_for_deadline
from repro.core.executor import SweepExecutor
from repro.core.mape import mape, mape_table
from repro.core.model import OffloadModel, PAPER_DAXPY_MODEL
from repro.core.offload import OffloadResult, offload, offload_daxpy
from repro.core.staging import JobBinding
from repro.core.sweep import SweepPoint, SweepResult, sweep

__all__ = [
    "JobBinding",
    "OffloadDecision",
    "OffloadModel",
    "OffloadResult",
    "PAPER_DAXPY_MODEL",
    "SweepCache",
    "SweepExecutor",
    "SweepPoint",
    "SweepResult",
    "mape",
    "mape_table",
    "min_clusters_for_deadline",
    "offload",
    "offload_daxpy",
    "sweep",
]
