"""Batched sweep timing: predict whole N-columns from one calibration.

A sweep grid re-runs the same offload protocol over and over with only
the problem size N changing: the host setup, descriptor store,
completion arming, doorbell distribution and cluster wake/decode
sequence are all independent of N, and once the start barrier releases,
every downstream cycle (DMA chains on the shared channels, the
closed-form compute phase, the completion stores and the host's
poll/WFI observation) is a deterministic integer function of the slice
shapes.  :class:`BatchPlanner` exploits that: for every group of grid
points sharing an offload width M it simulates **one** calibration
point through the event engine, extracts the N-independent prefix from
its :class:`~repro.runtime.trace.OffloadTrace`, and times every other N
of the group as NumPy array arithmetic — bit-identical to the event
engine, a property the planner *proves* per group before using it:

- **structural preconditions** — only the four paper protocol variants
  (exact strategy types), a full ``0..M-1`` cluster range, non-empty
  DMA transfers for every working slice, and shapes that fit TCDM and
  main memory are predictable; anything else stays on the event engine;
- **residual check** — the closed form is evaluated at the calibration
  N and compared against the *measured* trace, marker for marker
  (per-cluster DMA/compute/completion cycles, end cycle, every phase);
  any mismatch falls the whole group back;
- **ambiguity fallbacks** — completion schedules the algebra cannot
  order against the host's first poll read or WFI entry (same-cycle
  races) are refused point by point.

``REPRO_NAIVE_BATCH`` disables the planner entirely; the A/B property
suite (``tests/property/test_batch_identity.py``) asserts both paths
return equal :class:`~repro.core.sweep.SweepPoint` streams.

The M axis: affine prefix prediction
------------------------------------
One calibration per (variant, M) group still leaves the M axis paying
one full event simulation per offload width — on a Fig.-1 shaped grid
(one N, M = 1..32) that is *every* point.  But the prefix itself is
structured: the paper's runtime model (Eq. 1) treats dispatch cost as
affine in the cluster count, and the two shipped dispatch strategies
declare exactly where that holds
(:attr:`~repro.runtime.strategies.DispatchStrategy
.affine_dispatch_min_m`: sequential stores from M = 1, multicast from
M = 2 — its single-cluster case is a plain store off the line).  So
instead of calibrating every M group, the planner event-simulates
**two anchor** M values, fits each prefix field as an integer-affine
function of M (non-integer slope → refuse), verifies the fitted line
*residual-exactly* against a third held-out M — a full
marker-for-marker :func:`matches_trace` check, not just the prefix —
and synthesizes the prefix for every other M in the anchor span
closed-form.  Any failure (anchor residual, non-affine fit, holdout
mismatch) falls that sweep back to per-group calibration; M values
outside the fitted span or below the declared domain are calibrated
per group as before.  ``REPRO_NAIVE_MPREDICT`` restores the
one-calibration-per-group path bit-for-bit.

The calibration store
---------------------
Prefixes and fitted M-models are pure functions of
(config digest, kernel, resolved variant, scalars, seed) — N never
enters — so :class:`~repro.core.cache.SweepCache` content-addresses
them persistently (:func:`~repro.core.cache.calibration_key`, schema
versioned).  A warm store lets a sweep over *new* problem sizes skip
calibration entirely and go straight to array algebra: the planner
stores every residual-validated per-M prefix and every
holdout-validated M-model, and consults the store before simulating.

Why the tail is a closed form
-----------------------------
All M clusters resume from the start fabric barrier on the same cycle
``T_rel`` in cluster-id order, so the shared read channel serves their
input DMAs back to back: ``din_i = T_rel + dma_setup + Σ ceil(bytes_in_j
/ read_width)`` over working clusters ``j ≤ i``.  The compute phase is
the barrier's closed-form crossing (wake + max per-core cycles +
latency).  Output DMAs commit in ``(compute_done, cluster_id)`` order
and chain the same way on the write channel.  Completion is either the
serial AMO unit (service chain in commit order, then the host's
analytic poll schedule) or the sync unit's credit counter (threshold
match on the last delivery, IRQ after the wire + raise latency, WFI
wake).  Every term is an integer from :class:`~repro.soc.config.SoCConfig`.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import flags
from repro.core.cache import calibration_key
from repro.core.sweep import SweepPoint
from repro.errors import ConfigError, KernelError, OffloadError
from repro.kernels.base import Kernel, split_range
from repro.kernels.registry import get_kernel
from repro.runtime.strategies import (
    AmoPollCompletion,
    MulticastDispatch,
    SequentialStoreDispatch,
    SyncUnitCompletion,
    VariantSpec,
    get_variant,
    variant_for_features,
)
from repro.soc.config import SoCConfig

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.cache import SweepCache
    from repro.runtime.trace import OffloadTrace
    from repro.soc.pool import SystemPool
    from repro.soc.tiles import ResolvedTile

#: Main-memory slack the conservative fit check keeps free: descriptor
#: slot (8 words minimum, 64-byte aligned), completion flag, and
#: allocation padding, rounded up generously.
_MEMORY_SLACK_BYTES = 4096

#: Dispatch strategies whose doorbell schedule the planner can prove
#: N-independent (exact types — subclasses may override timing).
_PROVABLE_DISPATCH = (SequentialStoreDispatch, MulticastDispatch)

#: Completion strategies the tail algebra models (exact types).
_PROVABLE_COMPLETION = (AmoPollCompletion, SyncUnitCompletion)


@dataclasses.dataclass(frozen=True)
class _Prefix:
    """The N-independent head of one (config, variant, M) group.

    Extracted from a calibration offload's trace: absolute cycles of
    the host-side markers plus ``release_cycle``, the cycle every
    participating cluster resumes from the start fabric barrier
    (``max(decoded) + arrival latency + release latency``).
    """

    start_cycle: int
    dispatch_start: int
    dispatch_done: int
    release_cycle: int

    def fields(self) -> typing.Tuple[int, int, int, int]:
        """The prefix as an ordered tuple (the M-model's field order)."""
        return (self.start_cycle, self.dispatch_start,
                self.dispatch_done, self.release_cycle)


@dataclasses.dataclass(frozen=True)
class MPrefixModel:
    """Affine-in-M model of one (config, kernel, variant)'s prefix.

    Each :class:`_Prefix` field is ``base[i] + slope[i] * (m - m_lo)``
    with integer slopes — the fit refuses anything else, because
    event-engine cycles are integers and a fractional slope means the
    claimed affinity is simply false.  The model only speaks for
    ``max(min_m, m_lo) <= m <= m_hi``: ``min_m`` is the strategy's
    declared affine domain and ``[m_lo, m_hi]`` the anchor span, so
    every synthesized prefix is an *interpolation* between
    residual-checked calibrations, never an extrapolation past them.
    """

    min_m: int
    m_lo: int
    m_hi: int
    base: typing.Tuple[int, int, int, int]
    slope: typing.Tuple[int, int, int, int]

    def predict(self, m: int) -> typing.Optional[_Prefix]:
        """The synthesized prefix at ``m``, or ``None`` outside range."""
        if m < self.min_m or m < self.m_lo or m > self.m_hi:
            return None
        delta = m - self.m_lo
        start, dispatch_start, dispatch_done, release = (
            b + s * delta for b, s in zip(self.base, self.slope))
        return _Prefix(start_cycle=start, dispatch_start=dispatch_start,
                       dispatch_done=dispatch_done, release_cycle=release)


def fit_prefix_model(min_m: int, m_lo: int, prefix_lo: _Prefix,
                     m_hi: int,
                     prefix_hi: _Prefix) -> typing.Optional[MPrefixModel]:
    """Fit the affine M-model through two anchor prefixes.

    ``None`` when the anchors coincide or any field's slope is not an
    exact integer — a fractional slope cannot reproduce integer cycle
    counts, so the affinity claim is already refuted by the anchors
    themselves.  A successful fit is *necessary, not sufficient*:
    callers must still verify the model residual-exactly against a
    held-out third M before trusting it.
    """
    if m_lo >= m_hi:
        return None
    span = m_hi - m_lo
    lo = prefix_lo.fields()
    hi = prefix_hi.fields()
    slopes = []
    for value_lo, value_hi in zip(lo, hi):
        diff = value_hi - value_lo
        if diff % span:
            return None
        slopes.append(diff // span)
    return MPrefixModel(min_m=min_m, m_lo=m_lo, m_hi=m_hi,
                        base=lo, slope=tuple(slopes))


def affine_domain(spec: VariantSpec) -> typing.Optional[int]:
    """The M floor from which ``spec``'s prefix is declared affine.

    ``None`` unless *both* sides declare: the dispatch strategy an
    affine doorbell schedule (with its domain floor) and the completion
    strategy an M-independent arming fragment.  The declarations ride
    on the exact strategy types :func:`resolve_spec` already enforces,
    so a subclass overriding timing never reaches this layer.
    """
    floor = type(spec.dispatch).affine_dispatch_min_m
    if floor is None or not type(spec.completion).prefix_affine_in_m:
        return None
    return floor


# ----------------------------------------------------------------------
# Calibration-store payloads
# ----------------------------------------------------------------------
_PREFIX_KEYS = ("start_cycle", "dispatch_start", "dispatch_done",
                "release_cycle")


def encode_prefix(prefix: _Prefix) -> typing.Dict[str, int]:
    """JSON payload of one validated per-M dispatch prefix."""
    return dict(zip(_PREFIX_KEYS, prefix.fields()))


def decode_prefix(payload: typing.Optional[typing.Mapping[str, typing.Any]]
                  ) -> typing.Optional[_Prefix]:
    """Rebuild a stored prefix; ``None`` on any shape/type mismatch."""
    if payload is None:
        return None
    values = [payload.get(key) for key in _PREFIX_KEYS]
    if any(not isinstance(v, int) or isinstance(v, bool) for v in values):
        return None
    return _Prefix(*values)


def encode_mmodel(model: MPrefixModel) -> typing.Dict[str, typing.Any]:
    """JSON payload of one holdout-validated affine M-model."""
    return {"min_m": model.min_m, "m_lo": model.m_lo, "m_hi": model.m_hi,
            "base": list(model.base), "slope": list(model.slope)}


def decode_mmodel(payload: typing.Optional[
        typing.Mapping[str, typing.Any]]) -> typing.Optional[MPrefixModel]:
    """Rebuild a stored M-model; ``None`` on any shape/type mismatch."""
    if payload is None:
        return None

    def ints(value: typing.Any, count: int) -> typing.Optional[
            typing.Tuple[int, ...]]:
        if (not isinstance(value, (list, tuple)) or len(value) != count
                or any(not isinstance(v, int) or isinstance(v, bool)
                       for v in value)):
            return None
        return tuple(value)

    scalars = ints([payload.get("min_m"), payload.get("m_lo"),
                    payload.get("m_hi")], 3)
    base = ints(payload.get("base"), 4)
    slope = ints(payload.get("slope"), 4)
    if scalars is None or base is None or slope is None:
        return None
    if scalars[1] >= scalars[2]:
        return None
    return MPrefixModel(min_m=scalars[0], m_lo=scalars[1],
                        m_hi=scalars[2], base=base, slope=slope)


@dataclasses.dataclass(frozen=True)
class _Prediction:
    """One predicted grid point plus the markers the residual check needs.

    Per-cluster entries are ``None`` for clusters whose slice is empty,
    mirroring :class:`~repro.runtime.trace.ClusterPhases`.
    """

    point: SweepPoint
    end_cycle: int
    dma_in_done: typing.Tuple[typing.Optional[int], ...]
    compute_done: typing.Tuple[typing.Optional[int], ...]
    dma_out_done: typing.Tuple[typing.Optional[int], ...]
    completion_signalled: typing.Tuple[int, ...]


def resolve_spec(config: SoCConfig,
                 variant: str) -> typing.Optional[VariantSpec]:
    """The variant spec the planner can prove, or ``None``.

    ``None`` means the whole sweep stays on the event engine: unknown
    variant names and software/hardware mismatches must surface the
    event path's own :class:`~repro.errors.OffloadError`, and strategy
    types outside the four paper protocols have timing the closed form
    has not modelled.
    """
    try:
        if variant == "auto":
            spec = variant_for_features(config.multicast, config.hw_sync)
        else:
            spec = get_variant(variant)
    except OffloadError:
        return None
    if spec.use_multicast and not config.multicast:
        return None
    if spec.use_hw_sync and not config.hw_sync:
        return None
    if type(spec.dispatch) not in _PROVABLE_DISPATCH:
        return None
    if type(spec.completion) not in _PROVABLE_COMPLETION:
        return None
    return spec


def point_provable(config: SoCConfig, kernel: Kernel, n: int, m: int,
                   scalars: typing.Mapping[str, float],
                   tile: typing.Optional["ResolvedTile"] = None) -> bool:
    """Whether one (N, M) point's tail is safely predictable.

    Refuses anything whose event-engine run would raise (invalid shape,
    TCDM or main-memory overflow, a tile class without a rate for this
    kernel — the event path must own the error) and any slice shape the
    DMA-chain algebra cannot order (zero-byte transfers skip the
    channel reservation entirely, changing the arbitration order the
    closed form assumes).  ``tile`` is the resolved tile the point runs
    on; ``None`` reads the homogeneous config knobs directly.
    """
    try:
        kernel.validate(n, scalars)
        slices = split_range(n, m)
    except KernelError:
        return False
    tcdm_bytes = config.tcdm_bytes
    if tile is not None:
        tcdm_bytes = tile.tcdm_bytes
        try:
            tile.timing_for(kernel.name)
        except ConfigError:
            return False
    largest = slices[0]
    if kernel.slice_tcdm_bytes(largest.lo, largest.hi, n) > tcdm_bytes:
        return False
    staged = sum(8 * kernel.input_length(name, n)
                 for name in kernel.input_names)
    staged += sum(8 * kernel.output_length(name, n, m)
                  for name in kernel.output_names
                  if kernel.output_alias(name) is None)
    if staged + _MEMORY_SLACK_BYTES > config.main_memory_bytes:
        return False
    for work in slices:
        if work.empty:
            continue
        if kernel.slice_bytes_in(work.lo, work.hi, n) <= 0:
            return False
        if kernel.slice_bytes_out(work.lo, work.hi, n) <= 0:
            return False
    return True


def extract_prefix(config: SoCConfig, trace: "OffloadTrace", m: int,
                   first: int = 0) -> typing.Optional[_Prefix]:
    """Pull the N-independent prefix out of a calibration trace.

    ``None`` if the trace does not show the contiguous
    ``first..first+M-1`` cluster range the algebra assumes (partial
    doorbell delivery, a launch outside the expected tile group).
    """
    if [c.cluster_id for c in trace.clusters] != list(range(first,
                                                           first + m)):
        return None
    release = (max(c.decoded for c in trace.clusters)
               + config.fabric_barrier_arrival_latency
               + config.fabric_barrier_release_latency)
    return _Prefix(start_cycle=trace.start_cycle,
                   dispatch_start=trace.dispatch_start,
                   dispatch_done=trace.dispatch_done,
                   release_cycle=release)


def predict_point(config: SoCConfig, kernel: Kernel, spec: VariantSpec,
                  prefix: _Prefix, n: int, m: int,
                  tile: typing.Optional["ResolvedTile"] = None,
                  ) -> typing.Optional[_Prediction]:
    """Time one grid point with the closed-form tail algebra.

    Returns ``None`` when the completion schedule is ambiguous against
    the host's observation (same-cycle races the event engine resolves
    through queue internals the algebra does not model); callers fall
    such points back to the event engine.

    ``tile`` supplies the per-tile-class knobs (core count, DMA setup,
    wake/barrier latencies, kernel compute rates); ``None`` reads the
    homogeneous config knobs, the pre-fabric behaviour.  Either way the
    residual check (:func:`matches_trace`) guards the algebra against
    the event engine, so a knob this form mis-models falls the group
    back instead of diverging.
    """
    if tile is None:
        cores = config.cores_per_cluster
        dma_setup = config.dma_setup_cycles
        worker_wake = config.worker_wake_latency
        barrier = config.barrier_latency
        timing = None
    else:
        cores = tile.cores_per_tile
        dma_setup = tile.dma_setup_cycles
        worker_wake = tile.worker_wake_latency
        barrier = tile.barrier_latency
        timing = tile.timing_for(kernel.name)
    slices = split_range(n, m)
    elems = numpy.fromiter((s.hi - s.lo for s in slices),
                           dtype=numpy.int64, count=m)
    nonempty = elems > 0
    ids = numpy.flatnonzero(nonempty)
    if ids.size == 0:
        return None
    release = prefix.release_cycle

    # Input DMA: every working cluster issues its read reservation at
    # release + dma_setup; the shared channel serves them in cluster-id
    # order, so finishes are one cumulative sum.
    b_in = numpy.fromiter(
        (kernel.slice_bytes_in(slices[i].lo, slices[i].hi, n) for i in ids),
        dtype=numpy.int64, count=ids.size)
    read_cycles = -(-b_in // config.mem_read_width_bytes)
    din = (release + dma_setup + numpy.cumsum(read_cycles))

    # Compute: the barrier's closed-form crossing.  Per-core counts are
    # q+1 (the first e mod cores workers) and q, so the phase maximum
    # needs at most two vectorized timing evaluations per cluster.
    q, r = numpy.divmod(elems[ids], cores)
    if timing is None:
        cyc_lo = kernel.compute_cycles_array(q, n)
        cyc_hi = kernel.compute_cycles_array(q + 1, n)
    else:
        cyc_lo = timing.cycles_array(q)
        cyc_hi = timing.cycles_array(q + 1)
    phase_max = numpy.where(r > 0, numpy.maximum(cyc_hi, cyc_lo), cyc_lo)
    compute_done = din + worker_wake + phase_max + barrier

    # Output DMA: reservations commit in (compute_done, cluster_id)
    # order and chain on the otherwise-idle write channel.
    b_out = numpy.fromiter(
        (kernel.slice_bytes_out(slices[i].lo, slices[i].hi, n) for i in ids),
        dtype=numpy.int64, count=ids.size)
    write_cycles = -(-b_out // config.mem_write_width_bytes)
    dout = numpy.empty_like(compute_done)
    next_free = 0
    for k in numpy.lexsort((ids, compute_done)):
        issue = int(compute_done[k]) + dma_setup
        start = issue if issue > next_free else next_free
        next_free = start + int(write_cycles[k])
        dout[k] = next_free

    # Completion-store commit cycle per cluster: empty slices signal
    # straight from the start-barrier release, working ones after their
    # write-back lands.
    signal = numpy.full(m, release, dtype=numpy.int64)
    signal[ids] = dout
    port_occ = config.noc_cluster_port_occupancy
    req = config.noc_request_latency
    resp = config.noc_response_latency
    dispatch_done = prefix.dispatch_done

    if isinstance(spec.completion, AmoPollCompletion):
        # The memory's AMO unit services increments in commit order;
        # the host's poll schedule is the analytic fast-forward form.
        arrival = signal + port_occ + req
        completion = numpy.empty(m, dtype=numpy.int64)
        finish = 0
        for cid in sorted(range(m), key=lambda c: (int(signal[c]), c)):
            at = int(arrival[cid])
            finish = (at if at > finish else finish) \
                + config.noc_amo_service_cycles
            completion[cid] = finish + resp
        crossing_write = finish
        read0 = dispatch_done + config.noc_load_occupancy + req
        period = (config.noc_load_occupancy + req + resp
                  + config.host_poll_gap_cycles)
        if crossing_write <= read0:
            # The threshold may cross before (or on the very cycle) the
            # first poll read observes the flag — the first-iteration
            # path, which the algebra does not model.
            return None
        success = (crossing_write - read0) // period + 1
        end = read0 + success * period + resp
    else:
        # Sync unit: posted increments issue one port-occupancy after
        # commit; the threshold matches on the last delivery and the
        # IRQ raises after the raise latency.  WFI always pays the wake
        # latency from whichever of (raise, entry) comes last.
        issued = signal + port_occ
        completion = issued.copy()
        raise_cycle = (int(issued.max()) + req
                       + config.syncunit_irq_latency)
        if raise_cycle == dispatch_done:
            # Same-cycle IRQ-vs-WFI entry: ordering depends on queue
            # internals, not on the algebra's inputs.
            return None
        latest = raise_cycle if raise_cycle > dispatch_done else dispatch_done
        end = latest + config.host_wfi_wake_latency

    last_signal = int(completion.max())
    phases = {
        "setup": int(prefix.dispatch_start - prefix.start_cycle),
        "dispatch": int(dispatch_done - prefix.dispatch_start),
        "completion_wait": int(end - dispatch_done),
        "sync_overhead": int(end - last_signal),
        "total": int(end - prefix.start_cycle),
    }
    point = SweepPoint(
        kernel_name=kernel.name, n=n, num_clusters=m, variant=spec.name,
        runtime_cycles=phases["total"], phases=phases)

    def full(values: numpy.ndarray) -> typing.Tuple[
            typing.Optional[int], ...]:
        out: typing.List[typing.Optional[int]] = [None] * m
        for slot, cid in enumerate(ids):
            out[int(cid)] = int(values[slot])
        return tuple(out)

    return _Prediction(
        point=point, end_cycle=int(end),
        dma_in_done=full(din), compute_done=full(compute_done),
        dma_out_done=full(dout),
        completion_signalled=tuple(int(c) for c in completion))


def matches_trace(prediction: _Prediction, trace: "OffloadTrace",
                  measured: SweepPoint, first: int = 0) -> bool:
    """Whether a prediction reproduces a measured point exactly.

    This is the per-group residual check: evaluated at the calibration
    N, marker for marker.  Any drift between the algebra and the event
    engine — a protocol change, a timing constant moved, an arbitration
    order the proof missed — fails here and falls the group back, so
    batched numbers can never silently diverge.  Prediction arrays are
    group-local (slot 0 = cluster ``first``), so trace cluster ids are
    rebased before indexing.
    """
    if prediction.point != measured:
        return False
    if prediction.end_cycle != trace.end_cycle:
        return False
    for cluster in trace.clusters:
        cid = cluster.cluster_id - first
        if cid < 0 or cid >= len(prediction.completion_signalled):
            return False
        if prediction.dma_in_done[cid] != cluster.dma_in_done:
            return False
        if prediction.compute_done[cid] != cluster.compute_done:
            return False
        if prediction.dma_out_done[cid] != cluster.dma_out_done:
            return False
        if prediction.completion_signalled[cid] \
                != cluster.completion_signalled:
            return False
    return True


class BatchPlanner:
    """Times groups of sweep points from single calibration simulations.

    Built per :meth:`~repro.core.executor.SweepExecutor.run` call;
    :meth:`consume` takes the executor's pending list and fills every
    slot it can prove, returning what must still go through the event
    engine.  Counters:

    - ``planned_points`` — slots filled by closed-form prediction;
    - ``calibration_points`` — event-engine simulations the planner ran
      itself (their slots are filled with the *measured* result);
    - ``fallback_points`` — pending points handed back to the event
      engine (structural refusals, residual-check failures, ambiguous
      completion schedules, groups too small to profit);
    - ``prefixes_calibrated`` / ``prefixes_predicted`` — M groups whose
      prefix came from a calibration simulation vs. from the affine
      M-model or the calibration store (no simulation at all);
    - ``mmodels_fitted`` — affine M-models fitted *and* holdout-
      validated this run;
    - ``holdout_fallbacks`` — M-model fit attempts abandoned (anchor
      residual failure, non-integer slope, or holdout mismatch), each
      falling the affected groups back to per-group calibration;
    - ``store_hits`` / ``store_misses`` — calibration-store lookups
      (per-M prefixes and M-models) against the executor's
      :class:`~repro.core.cache.SweepCache`.
    """

    def __init__(self, pool: "SystemPool", reuse: bool = True,
                 cache: typing.Optional["SweepCache"] = None) -> None:
        self.pool = pool
        self.reuse = reuse
        self.cache = cache
        self.planned_points = 0
        self.calibration_points = 0
        self.fallback_points = 0
        self.prefixes_calibrated = 0
        self.prefixes_predicted = 0
        self.mmodels_fitted = 0
        self.holdout_fallbacks = 0
        self.store_hits = 0
        self.store_misses = 0

    def consume(self, config: SoCConfig, kernel_name: str, variant: str,
                scalars: typing.Optional[typing.Mapping[str, float]],
                seed: int, verify: bool,
                pending: typing.Sequence[typing.Tuple[int, int, int]],
                slots: typing.List[typing.Optional[SweepPoint]],
                tile_group: typing.Optional[str] = None,
                ) -> typing.List[typing.Tuple[int, int, int]]:
        """Fill predictable ``slots`` entries; return the leftovers.

        ``pending`` holds ``(slot_index, n, m)`` triples exactly as the
        executor builds them; the returned list preserves their relative
        order so the event engine visits leftovers in grid order.

        Per M group the prefix comes from the cheapest trustworthy
        source: a stored per-M prefix (no simulation), a stored or
        freshly fitted-and-holdout-checked affine M-model (no
        simulation), or a calibration simulation (the PR-7 path, which
        also residual-checks the tail algebra and feeds the store).
        ``REPRO_NAIVE_MPREDICT`` pins every group to the last source.

        ``tile_group`` names the fabric group the sweep targets; the
        planner then proves and predicts with that group's tile class
        (its TCDM, core count and kernel rates) and calibrates through
        ``offload(tile_group=...)``.  Without a group, each offload
        width M spans clusters ``0..M-1``: a span of one uniform tile
        class is proved against that class, a mixed span falls back to
        the event engine point by point.
        """
        from repro.core.staging import resolve_scalars

        spec = resolve_spec(config, variant)
        if spec is None:
            self.fallback_points += len(pending)
            return list(pending)
        kernel = get_kernel(kernel_name)
        resolved = resolve_scalars(kernel, scalars)
        mpredict = not flags.naive_mpredict()

        group = (config.tile_group(tile_group)
                 if tile_group is not None else None)
        first = group.start if group is not None else 0

        groups: typing.Dict[int, typing.List[
            typing.Tuple[int, int, int]]] = {}
        for entry in pending:
            groups.setdefault(entry[2], []).append(entry)

        remaining: typing.List[typing.Tuple[int, int, int]] = []
        provable_by_m: typing.Dict[int, typing.List[
            typing.Tuple[int, int, int]]] = {}
        tiles_by_m: typing.Dict[int, "ResolvedTile"] = {}
        for m, members in groups.items():
            tile = (group.tile if group is not None
                    else config.span_tile(0, m))
            if tile is None:
                # Mixed tile classes across clusters 0..M-1: the
                # per-cluster knobs differ mid-span, which the uniform
                # tail algebra does not model.
                self.fallback_points += len(members)
                remaining.extend(members)
                continue
            provable = [entry for entry in members
                        if point_provable(config, kernel, entry[1], m,
                                          resolved, tile)]
            refused = [entry for entry in members if entry not in provable]
            self.fallback_points += len(refused)
            remaining.extend(refused)
            if provable:
                provable_by_m[m] = provable
                tiles_by_m[m] = tile

        # The store speaks the *resolved* variant and scalars, so
        # "auto" and the explicit name (or default and explicit
        # scalars) share calibration entries.  The group name joins the
        # coordinates because one config digest covers every group of a
        # heterogeneous fabric.
        store_coords = (config, kernel.name, spec.name, resolved, seed,
                        tile_group or "")
        prefixes: typing.Dict[int, _Prefix] = {}
        model: typing.Optional[MPrefixModel] = None
        handled: typing.Set[int] = set()
        if mpredict:
            for m in provable_by_m:
                stored = self._load_prefix(store_coords, m)
                if stored is not None:
                    prefixes[m] = stored
            model = self._load_model(store_coords)
            if model is None:
                model = self._fit_model(
                    config, kernel, spec, store_coords, provable_by_m,
                    tiles_by_m, first, tile_group, prefixes, handled,
                    variant, scalars, seed, verify, slots, remaining)

        for m, provable in provable_by_m.items():
            if m in handled:
                continue
            prefix = prefixes.get(m)
            if prefix is None and model is not None:
                prefix = model.predict(m)
            if mpredict and prefix is not None:
                self.prefixes_predicted += 1
                remaining.extend(self._predict_group(
                    config, kernel, spec, prefix, m, tiles_by_m[m],
                    provable, slots))
                continue
            if len(provable) < 2:
                # A lone provable point gains nothing from calibrating
                # itself (and no trusted prefix reached us).
                self.fallback_points += len(provable)
                remaining.extend(provable)
                continue
            fallbacks, validated = self._plan_group(
                config, kernel, spec, m, tiles_by_m[m], first,
                tile_group, provable, variant, scalars, seed, verify,
                slots)
            remaining.extend(fallbacks)
            self.prefixes_calibrated += 1
            if mpredict and validated is not None:
                self._store_prefix(store_coords, m, validated)

        order = {id(entry): rank for rank, entry in enumerate(pending)}
        remaining.sort(key=lambda entry: order[id(entry)])
        return remaining

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _calibrate(self, config: SoCConfig, kernel_name: str, n: int,
                   m: int, variant: str,
                   scalars: typing.Optional[typing.Mapping[str, float]],
                   seed: int, verify: bool,
                   tile_group: typing.Optional[str] = None):
        """One event-engine simulation, keeping the full trace."""
        from repro.core.offload import offload
        from repro.soc.manticore import ManticoreSystem

        if self.reuse:
            with self.pool.lease(config) as system:
                result = offload(system, kernel_name, n, m,
                                 scalars=scalars, variant=variant,
                                 seed=seed, verify=verify,
                                 tile_group=tile_group)
        else:
            system = ManticoreSystem(config)
            result = offload(system, kernel_name, n, m, scalars=scalars,
                             variant=variant, seed=seed, verify=verify,
                             tile_group=tile_group)
        self.calibration_points += 1
        return result

    def _plan_group(self, config: SoCConfig, kernel: Kernel,
                    spec: VariantSpec, m: int, tile: "ResolvedTile",
                    first: int, tile_group: typing.Optional[str],
                    members: typing.List[typing.Tuple[int, int, int]],
                    variant: str,
                    scalars: typing.Optional[typing.Mapping[str, float]],
                    seed: int, verify: bool,
                    slots: typing.List[typing.Optional[SweepPoint]],
                    ) -> typing.Tuple[
                        typing.List[typing.Tuple[int, int, int]],
                        typing.Optional[_Prefix]]:
        """Calibrate one member, predict the rest.

        Returns ``(fallbacks, prefix)`` where ``prefix`` is the
        calibration's extracted prefix *only* when the residual check
        passed — i.e. exactly when it is safe to reuse as an M-model
        anchor or a calibration-store entry.
        """
        calibration = min(members, key=lambda entry: entry[0])
        cal_index, cal_n, _m = calibration
        result = self._calibrate(config, kernel.name, cal_n, m, variant,
                                 scalars, seed, verify, tile_group)
        measured = SweepPoint(
            kernel_name=kernel.name, n=cal_n, num_clusters=m,
            variant=result.variant,
            runtime_cycles=result.runtime_cycles,
            phases=result.trace.phase_summary())
        slots[cal_index] = measured
        rest = [entry for entry in members if entry is not calibration]

        prefix = (extract_prefix(config, result.trace, m, first)
                  if result.variant == spec.name else None)
        residual = (predict_point(config, kernel, spec, prefix, cal_n, m,
                                  tile)
                    if prefix is not None else None)
        if residual is None or not matches_trace(residual, result.trace,
                                                 measured, first):
            self.fallback_points += len(rest)
            return rest, None

        fallbacks: typing.List[typing.Tuple[int, int, int]] = []
        for entry in rest:
            index, n, _m = entry
            prediction = predict_point(config, kernel, spec, prefix, n, m,
                                       tile)
            if prediction is None:
                self.fallback_points += 1
                fallbacks.append(entry)
                continue
            slots[index] = prediction.point
            self.planned_points += 1
        return fallbacks, prefix

    def _predict_group(self, config: SoCConfig, kernel: Kernel,
                       spec: VariantSpec, prefix: _Prefix, m: int,
                       tile: "ResolvedTile",
                       members: typing.List[typing.Tuple[int, int, int]],
                       slots: typing.List[typing.Optional[SweepPoint]],
                       ) -> typing.List[typing.Tuple[int, int, int]]:
        """Predict a whole M group from a trusted prefix — no simulation.

        The prefix arrived from the calibration store or the affine
        M-model, both of which rest on residual-checked calibrations;
        per-point ambiguity refusals (``predict_point`` → ``None``)
        still fall back individually.
        """
        fallbacks: typing.List[typing.Tuple[int, int, int]] = []
        for entry in members:
            index, n, _m = entry
            prediction = predict_point(config, kernel, spec, prefix, n, m,
                                       tile)
            if prediction is None:
                self.fallback_points += 1
                fallbacks.append(entry)
                continue
            slots[index] = prediction.point
            self.planned_points += 1
        return fallbacks

    def _fit_model(self, config: SoCConfig, kernel: Kernel,
                   spec: VariantSpec,
                   coords: typing.Tuple, provable_by_m: typing.Dict[
                       int, typing.List[typing.Tuple[int, int, int]]],
                   tiles_by_m: typing.Dict[int, "ResolvedTile"],
                   first: int, tile_group: typing.Optional[str],
                   prefixes: typing.Dict[int, _Prefix],
                   handled: typing.Set[int], variant: str,
                   scalars: typing.Optional[typing.Mapping[str, float]],
                   seed: int, verify: bool,
                   slots: typing.List[typing.Optional[SweepPoint]],
                   remaining: typing.List[typing.Tuple[int, int, int]],
                   ) -> typing.Optional[MPrefixModel]:
        """Fit and holdout-validate the affine M-model for this sweep.

        Anchors are the smallest and largest in-domain M values of the
        sweep (so every other M interpolates), the holdout the median
        in between.  Each of the three takes a full PR-7 calibration
        (residual check included) unless the store already holds its
        prefix.  Any failure — out-of-domain strategies, fewer than
        four in-domain M groups (three calibrations would not beat
        per-group calibrating them), anchor residual failure,
        non-integer slope, holdout mismatch — returns ``None`` and the
        sweep stays on per-group calibration.
        """
        floor = affine_domain(spec)
        if floor is None:
            return None
        eligible = sorted(m for m in provable_by_m if m >= floor)
        if len(eligible) < 4:
            return None
        m_lo, m_hi = eligible[0], eligible[-1]
        m_mid = eligible[len(eligible) // 2]
        anchors: typing.Dict[int, _Prefix] = {}
        for m in (m_lo, m_mid, m_hi):
            known = prefixes.get(m)
            if known is not None:
                # A stored prefix is residual-checked evidence already;
                # anchoring on it keeps the fit simulation-free.
                anchors[m] = known
                continue
            fallbacks, validated = self._plan_group(
                config, kernel, spec, m, tiles_by_m[m], first,
                tile_group, provable_by_m[m], variant, scalars, seed,
                verify, slots)
            remaining.extend(fallbacks)
            handled.add(m)
            self.prefixes_calibrated += 1
            if validated is None:
                self.holdout_fallbacks += 1
                return None
            anchors[m] = validated
            prefixes[m] = validated
            self._store_prefix(coords, m, validated)
        model = fit_prefix_model(floor, m_lo, anchors[m_lo], m_hi,
                                 anchors[m_hi])
        if model is None or model.predict(m_mid) != anchors[m_mid]:
            self.holdout_fallbacks += 1
            return None
        self.mmodels_fitted += 1
        self._store_model(coords, model)
        return model

    # ------------------------------------------------------------------
    # Calibration store plumbing
    # ------------------------------------------------------------------
    def _load_prefix(self, coords: typing.Tuple,
                     m: int) -> typing.Optional[_Prefix]:
        if self.cache is None:
            return None
        config, kernel_name, variant_name, resolved, seed, group = coords
        payload = self.cache.get_record(
            calibration_key("prefix", config, kernel_name, variant_name,
                            resolved, seed, m=m, tile_group=group),
            "prefix")
        prefix = decode_prefix(payload)
        if prefix is None:
            self.store_misses += 1
            return None
        self.store_hits += 1
        return prefix

    def _store_prefix(self, coords: typing.Tuple, m: int,
                      prefix: _Prefix) -> None:
        if self.cache is None:
            return
        config, kernel_name, variant_name, resolved, seed, group = coords
        self.cache.put_record(
            calibration_key("prefix", config, kernel_name, variant_name,
                            resolved, seed, m=m, tile_group=group),
            "prefix", encode_prefix(prefix))

    def _load_model(self, coords: typing.Tuple
                    ) -> typing.Optional[MPrefixModel]:
        if self.cache is None:
            return None
        config, kernel_name, variant_name, resolved, seed, group = coords
        payload = self.cache.get_record(
            calibration_key("mmodel", config, kernel_name, variant_name,
                            resolved, seed, tile_group=group), "mmodel")
        model = decode_mmodel(payload)
        if model is None:
            self.store_misses += 1
            return None
        self.store_hits += 1
        return model

    def _store_model(self, coords: typing.Tuple,
                     model: MPrefixModel) -> None:
        if self.cache is None:
            return
        config, kernel_name, variant_name, resolved, seed, group = coords
        self.cache.put_record(
            calibration_key("mmodel", config, kernel_name, variant_name,
                            resolved, seed, tile_group=group),
            "mmodel", encode_mmodel(model))
