"""The staging layer: binding one job's operands to a system.

Every launch shape — a plain offload, a host-executed job, an
overlapped pair, a space-shared concurrent batch — prepares jobs the
same way: validate the request, generate or check the input buffers,
stage them into main memory, allocate outputs (resolving in-place
aliases), allocate the completion flag, encode the descriptor, and —
after the run — collect and verify the outputs.  :class:`JobBinding`
owns that lifecycle so the launch entry points in
:mod:`repro.core.offload`, :mod:`repro.core.overlap` and
:mod:`repro.core.concurrent` compose it instead of duplicating it.

Allocation order is part of the measured contract: operand addresses
feed the interconnect's routing and the completion flag's watchpoint
fast path, so :meth:`JobBinding.bind` performs its allocations in
exactly the historical order (inputs, outputs, flag, descriptor) —
bindings are bit-identical to the code they replaced (asserted by
``tests/integration/test_cycle_identity.py``).
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import abi
from repro.errors import CycleLimitError, DeadlockError, OffloadError
from repro.kernels.base import Kernel, split_range
from repro.kernels.registry import get_kernel
from repro.soc.manticore import ManticoreSystem

if typing.TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.protocol import OffloadRuntime

#: Simulation-cycle guard against runaway offloads (a 1024-element DAXPY
#: takes around a thousand cycles; nothing sane needs a billion).
DEFAULT_MAX_CYCLES = 1_000_000_000

#: ``exec_mode`` argument values accepted by the offload entry points.
EXEC_MODES = {
    "phased": abi.EXEC_MODE_PHASED,
    "double_buffered": abi.EXEC_MODE_DOUBLE_BUFFERED,
}


# ----------------------------------------------------------------------
# Building blocks (validation, staging, run, verification)
# ----------------------------------------------------------------------
def check_offload_shape(system: ManticoreSystem, kernel: Kernel, n: int,
                        num_clusters: int,
                        double_buffered: bool = False,
                        first_cluster: int = 0) -> None:
    """Validate that a job's widest slice fits the target hardware.

    ``first_cluster`` selects the fabric span the job runs on (a tile
    group's start); the TCDM capacity check then binds against the
    *smallest* scratchpad in the span, which for homogeneous fabrics is
    exactly the config's ``tcdm_bytes``.
    """
    config = system.config
    if not 0 < num_clusters <= config.num_clusters:
        raise OffloadError(
            f"cannot offload to {num_clusters} clusters on a "
            f"{config.num_clusters}-cluster fabric")
    if first_cluster < 0 or first_cluster + num_clusters > config.num_clusters:
        raise OffloadError(
            f"cannot offload to clusters [{first_cluster}, "
            f"{first_cluster + num_clusters}) on a "
            f"{config.num_clusters}-cluster fabric")
    largest = split_range(n, num_clusters)[0]
    footprint = kernel.slice_tcdm_bytes(largest.lo, largest.hi, n)
    if double_buffered:
        # Chunking divides the working set, so a whole slice never has
        # to fit; the device runtime re-checks its chosen chunk pair.
        return
    available = config.min_tcdm_bytes(first_cluster, num_clusters)
    if footprint > available:
        raise OffloadError(
            f"{kernel.name}(n={n}) on {num_clusters} clusters needs "
            f"{footprint} bytes of TCDM per cluster but only "
            f"{available} are available; increase num_clusters "
            "or shrink the job (or use exec_mode='double_buffered')")


#: Deterministic generated inputs, keyed ``(kernel, n, seed)``.  Sweeps
#: revisit the same few problem sizes hundreds of times (once per M and
#: variant), and re-seeding a generator per point is pure overhead.
#: Bounded by wholesale clearing — sweep grids touch a handful of keys.
_INPUT_CACHE: typing.Dict[tuple, typing.Dict[str, numpy.ndarray]] = {}
_INPUT_CACHE_MAX = 64


def prepare_inputs(kernel: Kernel, n: int,
                   inputs: typing.Optional[
                       typing.Mapping[str, numpy.ndarray]],
                   seed: int) -> typing.Dict[str, numpy.ndarray]:
    """Generate deterministic inputs, or validate caller-provided ones."""
    if inputs is None:
        key = (kernel.name, n, seed)
        cached = _INPUT_CACHE.get(key)
        if cached is None:
            rng = numpy.random.default_rng(seed)
            cached = kernel.make_inputs(n, rng)
            if len(_INPUT_CACHE) >= _INPUT_CACHE_MAX:
                _INPUT_CACHE.clear()
            _INPUT_CACHE[key] = cached
        # Hand out copies: callers treat the buffers as their own (the
        # cached master must stay bit-identical to a fresh generation).
        return {name: array.copy() for name, array in cached.items()}
    prepared = {}
    for name in kernel.input_names:
        if name not in inputs:
            raise OffloadError(f"missing input buffer {name!r}")
        array = numpy.asarray(inputs[name], dtype=numpy.float64)
        expected = kernel.input_length(name, n)
        if array.size != expected:
            raise OffloadError(
                f"input {name!r} has {array.size} elements, "
                f"kernel {kernel.name!r} expects {expected} for n={n}")
        prepared[name] = array
    return prepared


def run_to_completion(system: ManticoreSystem, process,
                      max_cycles: int) -> None:
    """Run the simulation until ``process`` finishes, or fail loudly.

    Both failure modes re-raise as :class:`~repro.errors.OffloadError`
    with the kernel's :class:`~repro.sim.SimulationReport` (which
    process is blocked on what, plus the trace tail) carried through on
    the ``report`` attribute and quoted in the message.
    """
    try:
        system.sim.run(until=process, max_cycles=max_cycles)
    except CycleLimitError as err:
        report = getattr(err, "report", None)
        error = OffloadError(
            f"offload exceeded {max_cycles} cycles; the completion "
            "protocol likely deadlocked"
            + (f"\n{report.describe()}" if report is not None else ""))
        error.report = report
        raise error from None
    except DeadlockError as err:
        report = getattr(err, "report", None)
        error = OffloadError(
            "simulation ran out of events before the offload "
            "completed (lost doorbell or completion signal)"
            + (f"\n{report.describe()}" if report is not None else ""))
        error.report = report
        raise error from None


def verify_outputs(kernel: Kernel, n: int, num_clusters: int,
                   scalars, inputs, outputs) -> None:
    """Check measured outputs against the kernel's reference model."""
    expected = kernel.reference(n, scalars, inputs, num_clusters)
    for name, want in expected.items():
        got = outputs[name]
        if not numpy.allclose(got, want, rtol=1e-10, atol=1e-12):
            worst = int(numpy.argmax(numpy.abs(got - want)))
            raise OffloadError(
                f"{kernel.name} output {name!r} mismatches the reference "
                f"(first/worst at index {worst}: got {got[worst]}, "
                f"want {want[worst]})")


def resolve_scalars(kernel: Kernel,
                    scalars: typing.Optional[typing.Mapping[str, float]]
                    ) -> typing.Dict[str, float]:
    """Default every kernel scalar to 1.0 when the caller gave none."""
    if scalars:
        return dict(scalars)
    return {name: 1.0 for name in kernel.scalar_names}


# ----------------------------------------------------------------------
# The binding object
# ----------------------------------------------------------------------
@dataclasses.dataclass
class JobBinding:
    """One job's operands, staged into a system and ready to launch.

    Built by :meth:`bind` (offloaded jobs: full descriptor + completion
    resources) or :meth:`bind_host` (host-executed jobs: operands
    only).  After the run, :meth:`collect_outputs` reads the output
    buffers back and :meth:`verify` checks them against the kernel's
    reference model.
    """

    system: ManticoreSystem
    kernel: Kernel
    n: int
    num_clusters: int
    scalars: typing.Dict[str, float]
    inputs: typing.Dict[str, numpy.ndarray]
    input_addrs: typing.Dict[str, int]
    output_addrs: typing.Dict[str, int]
    #: Completion-flag address (flag-based completion only).
    flag_addr: typing.Optional[int] = None
    #: Encoded job descriptor (offloaded jobs only).
    desc: typing.Optional[abi.JobDescriptor] = None
    #: Where the descriptor lives in shared memory (offloaded only).
    desc_addr: typing.Optional[int] = None

    @classmethod
    def bind(cls, system: ManticoreSystem, runtime: "OffloadRuntime",
             kernel_name: str, n: int, num_clusters: int,
             scalars: typing.Optional[typing.Mapping[str, float]] = None,
             inputs: typing.Optional[
                 typing.Mapping[str, numpy.ndarray]] = None,
             seed: int = 0, exec_mode: str = "phased",
             first_cluster: int = 0) -> "JobBinding":
        """Validate, stage and describe one offloaded job.

        Performs the full pre-launch lifecycle: request validation,
        input preparation, operand staging (inputs, then outputs with
        in-place aliases resolved), completion-resource allocation via
        the runtime's completion strategy, descriptor encoding and
        descriptor-slot allocation — in exactly that order.
        """
        kernel = get_kernel(kernel_name)
        scalars = resolve_scalars(kernel, scalars)
        kernel.validate(n, scalars)
        if exec_mode not in EXEC_MODES:
            raise OffloadError(
                f"unknown exec mode {exec_mode!r}; available: "
                f"{', '.join(sorted(EXEC_MODES))}")
        if exec_mode == "double_buffered":
            for name in kernel.output_names:
                if kernel.output_length(name, n, num_clusters) != n:
                    raise OffloadError(
                        f"double buffering requires an element-wise kernel; "
                        f"{kernel_name!r} output {name!r} depends on the "
                        "offload shape")
        check_offload_shape(system, kernel, n, num_clusters,
                            double_buffered=(exec_mode == "double_buffered"),
                            first_cluster=first_cluster)
        inputs = prepare_inputs(kernel, n, inputs, seed)

        memory = system.memory
        input_addrs, output_addrs = cls._stage_operands(
            memory, kernel, n, num_clusters, inputs)

        flag_addr = None
        if runtime.completion_strategy.uses_flag:
            flag_addr = memory.alloc(8)
        completion_addr = runtime.completion_addr(flag_addr)

        desc = abi.JobDescriptor(
            kernel_name=kernel_name, n=n, num_clusters=num_clusters,
            first_cluster=first_cluster, sync_mode=runtime.sync_mode,
            completion_addr=completion_addr,
            exec_mode=EXEC_MODES[exec_mode], scalars=scalars,
            input_addrs=input_addrs, output_addrs=output_addrs)
        desc_addr = memory.alloc(8 * max(desc.words, 8), align=64)
        return cls(system=system, kernel=kernel, n=n,
                   num_clusters=num_clusters, scalars=scalars,
                   inputs=inputs, input_addrs=input_addrs,
                   output_addrs=output_addrs, flag_addr=flag_addr,
                   desc=desc, desc_addr=desc_addr)

    @classmethod
    def bind_host(cls, system: ManticoreSystem, kernel_name: str, n: int,
                  scalars: typing.Optional[
                      typing.Mapping[str, float]] = None,
                  inputs: typing.Optional[
                      typing.Mapping[str, numpy.ndarray]] = None,
                  seed: int = 0) -> "JobBinding":
        """Validate and stage a job the host core will run itself.

        Same staging as :meth:`bind`, minus everything offload-specific:
        no shape check (the host streams from shared memory), no
        completion flag, no descriptor.
        """
        kernel = get_kernel(kernel_name)
        scalars = resolve_scalars(kernel, scalars)
        kernel.validate(n, scalars)
        inputs = prepare_inputs(kernel, n, inputs, seed)
        input_addrs, output_addrs = cls._stage_operands(
            system.memory, kernel, n, 1, inputs)
        return cls(system=system, kernel=kernel, n=n, num_clusters=1,
                   scalars=scalars, inputs=inputs, input_addrs=input_addrs,
                   output_addrs=output_addrs)

    @staticmethod
    def _stage_operands(memory, kernel: Kernel, n: int, num_clusters: int,
                        inputs: typing.Mapping[str, numpy.ndarray]
                        ) -> typing.Tuple[typing.Dict[str, int],
                                          typing.Dict[str, int]]:
        """Allocate and fill inputs, then allocate (or alias) outputs."""
        input_addrs = {}
        for name in kernel.input_names:
            addr = memory.alloc_f64(kernel.input_length(name, n))
            memory.write_f64(addr, inputs[name])
            input_addrs[name] = addr
        output_addrs = {}
        for name in kernel.output_names:
            alias = kernel.output_alias(name)
            if alias is not None:
                output_addrs[name] = input_addrs[alias]
            else:
                output_addrs[name] = memory.alloc_f64(
                    kernel.output_length(name, n, num_clusters))
        return input_addrs, output_addrs

    # ------------------------------------------------------------------
    # Post-run collection and verification
    # ------------------------------------------------------------------
    def collect_outputs(self) -> typing.Dict[str, numpy.ndarray]:
        """Read every output buffer back from main memory."""
        memory = self.system.memory
        return {
            name: memory.read_f64(
                self.output_addrs[name],
                self.kernel.output_length(name, self.n, self.num_clusters))
            for name in self.kernel.output_names
        }

    def verify(self, outputs: typing.Mapping[str, numpy.ndarray]) -> None:
        """Check collected outputs against the kernel's reference model."""
        verify_outputs(self.kernel, self.n, self.num_clusters, self.scalars,
                       self.inputs, outputs)

    def finish(self, verify: bool) -> typing.Tuple[
            typing.Dict[str, numpy.ndarray], typing.Optional[bool]]:
        """Collect outputs and optionally verify them in one step.

        Returns ``(outputs, verified)`` where ``verified`` is ``True``
        after a successful check and ``None`` when skipped — the shape
        every result dataclass records.
        """
        outputs = self.collect_outputs()
        if not verify:
            return outputs, None
        self.verify(outputs)
        return outputs, True
