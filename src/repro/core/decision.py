"""The offload decision problem (the paper's Eq. 3 and extensions).

The paper inverts its runtime model under a deadline constraint
``t(M) ≤ t_max`` to obtain the minimum cluster count::

    M_min = ⌈ 2.6·N / (8·(t_max − 367 − N/4)) ⌉        (Eq. 3)

:func:`min_clusters_for_deadline` implements that inversion for any
model in the family (closed form when the dispatch term is zero, exact
search otherwise, since ``d·M`` makes large M hurt as well as help).

Beyond the paper, :func:`decide_offload` answers the *whether* question
the introduction motivates — run on the host or offload, and at what
width — optionally under a deadline and an energy objective.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.model import OffloadModel
from repro.errors import DecisionError, ModelError


@dataclasses.dataclass(frozen=True)
class HostExecutionModel:
    """Runtime of the kernel executed by the host core itself.

    ``t_host(N) = setup + cpe·N`` — the single-issue, cache-warm inner
    loop of an application-class core (CVA6 runs DAXPY around 3
    cycles/element without the accelerator).
    """

    cycles_per_element: float = 3.0
    setup_cycles: float = 10.0

    def predict(self, n: int) -> float:
        if n < 0:
            raise ModelError(f"N must be non-negative, got {n}")
        return self.setup_cycles + self.cycles_per_element * n

    @classmethod
    def fit(cls, measurements: typing.Sequence[typing.Tuple[int, float]]
            ) -> "HostExecutionModel":
        """Least-squares fit from measured ``(n, cycles)`` pairs.

        Use with :func:`repro.core.offload.run_on_host` so the decision
        compares two *measured* models instead of assuming a host rate.
        """
        measurements = list(measurements)
        if len(measurements) < 2:
            raise ModelError(
                f"need at least 2 host measurements, got {len(measurements)}")
        import numpy
        n_values = numpy.array([float(n) for n, _t in measurements])
        t_values = numpy.array([float(t) for _n, t in measurements])
        design = numpy.column_stack([numpy.ones_like(n_values), n_values])
        (setup, rate), _res, rank, _sv = numpy.linalg.lstsq(design, t_values,
                                                            rcond=None)
        if rank < 2:
            raise ModelError("host measurements must span multiple sizes")
        if rate < 0:
            raise ModelError(
                f"fit produced a negative host rate ({rate:.3f} "
                "cycles/element); measurements are not linear in N")
        return cls(cycles_per_element=float(rate),
                   setup_cycles=float(max(0.0, setup)))


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """First-order energy accounting for the offload decision.

    ``E_offload(M, N) = (p_host_idle + M·p_cluster)·t̂(M, N)`` — the
    host idles in WFI while M clusters (and their share of the memory
    system) burn active power for the job duration.
    ``E_host(N) = p_host_active·t_host(N)``.
    Powers are in arbitrary consistent units (e.g. mW at 1 GHz →
    energy in pJ per cycle unit).
    """

    host_active_power: float = 300.0
    host_idle_power: float = 30.0
    cluster_power: float = 25.0

    def offload_energy(self, model: OffloadModel, num_clusters: int,
                       n: int) -> float:
        runtime = model.predict(num_clusters, n)
        return (self.host_idle_power
                + num_clusters * self.cluster_power) * runtime

    def host_energy(self, host_model: HostExecutionModel, n: int) -> float:
        return self.host_active_power * host_model.predict(n)


def _smallest_feasible(model: OffloadModel, n: int, t_max: float,
                       max_clusters: int) -> int:
    """Binary search for the smallest feasible M on a monotone model."""
    lo, hi = 1, max_clusters
    while lo < hi:
        mid = (lo + hi) // 2
        if model.predict(mid, n) <= t_max:
            hi = mid
        else:
            lo = mid + 1
    return lo


def min_clusters_for_deadline(model: OffloadModel, n: int, t_max: float,
                              max_clusters: int = 32) -> int:
    """Minimum M with ``t̂(M, N) ≤ t_max`` (the paper's Eq. 3).

    Raises
    ------
    DecisionError
        If no M in ``[1, max_clusters]`` meets the deadline.  The error
        message distinguishes "infeasible at any width" (deadline below
        the serial floor) from "needs more clusters than the fabric has".
    """
    if max_clusters <= 0:
        raise DecisionError(f"max_clusters must be positive, got {max_clusters}")
    if t_max <= 0:
        raise DecisionError(f"deadline must be positive, got {t_max}")

    serial = model.serial_cycles(n)
    if model.dispatch_coeff == 0:
        # Closed form, exactly the paper's Eq. 3 shape.
        slack = t_max - serial
        parallel = model.compute_coeff * n
        if parallel == 0:
            # Fully-serial job: the deadline either holds at M=1 or never.
            if slack >= 0:
                return 1
            raise DecisionError(
                f"deadline {t_max:.0f} is below the serial floor "
                f"{serial:.0f} cycles for N={n}; no cluster count can "
                "meet it")
        if slack <= 0:
            # Analytically infeasible — but floating-point rounding can
            # make the widest offload land exactly on the deadline (a
            # parallel term below the serial floor's ulp).  Trust the
            # predictions themselves in that boundary case.
            if model.predict(max_clusters, n) <= t_max:
                return _smallest_feasible(model, n, t_max, max_clusters)
            raise DecisionError(
                f"deadline {t_max:.0f} is below the serial floor "
                f"{serial:.0f} cycles for N={n}; no cluster count can "
                "meet it")
        m_min = max(1, math.ceil(parallel / slack))
        if m_min > max_clusters:
            if model.predict(max_clusters, n) <= t_max:
                return _smallest_feasible(model, n, t_max, max_clusters)
            raise DecisionError(
                f"meeting {t_max:.0f} cycles for N={n} needs {m_min} "
                f"clusters, more than the fabric's {max_clusters}")
        # ceil() on exact-boundary floats can land one step off in either
        # direction; snap to the true minimum among the neighbours.
        while m_min > 1 and model.predict(m_min - 1, n) <= t_max:
            m_min -= 1
        while m_min <= max_clusters and model.predict(m_min, n) > t_max:
            m_min += 1
        if m_min > max_clusters:
            raise DecisionError(
                f"meeting {t_max:.0f} cycles for N={n} needs more than the "
                f"fabric's {max_clusters} clusters")
        return m_min

    # With a dispatch term, runtime is not monotone in M: search.
    feasible = [m for m in range(1, max_clusters + 1)
                if model.predict(m, n) <= t_max]
    if not feasible:
        best = min(range(1, max_clusters + 1),
                   key=lambda m: model.predict(m, n))
        raise DecisionError(
            f"no cluster count in [1, {max_clusters}] meets {t_max:.0f} "
            f"cycles for N={n}; best achievable is "
            f"{model.predict(best, n):.0f} cycles at M={best}")
    return min(feasible)


@dataclasses.dataclass(frozen=True)
class OffloadDecision:
    """The answer :func:`decide_offload` returns."""

    #: True if the job should be offloaded at all.
    offload: bool
    #: Chosen cluster count (0 when running on the host).
    num_clusters: int
    #: Predicted cycles of the chosen option.
    predicted_cycles: float
    #: Predicted cycles of executing on the host instead.
    host_cycles: float
    #: Predicted energy of the chosen option (None without EnergyModel).
    predicted_energy: typing.Optional[float] = None
    #: Why this choice was made, for logs and reports.
    reason: str = ""

    @property
    def speedup_vs_host(self) -> float:
        """How much faster the chosen option is than host execution."""
        return self.host_cycles / self.predicted_cycles


def decide_offload(model: OffloadModel, host_model: HostExecutionModel,
                   n: int, max_clusters: int = 32,
                   t_max: typing.Optional[float] = None,
                   energy_model: typing.Optional[EnergyModel] = None,
                   objective: str = "runtime") -> OffloadDecision:
    """Choose between host execution and offloading, and pick M.

    ``objective="runtime"`` minimizes predicted cycles;
    ``objective="energy"`` minimizes predicted energy (requires
    ``energy_model``) among options that satisfy ``t_max`` (if given).

    Raises
    ------
    DecisionError
        If a deadline is given and no option meets it, or the objective
        is invalid.
    """
    if objective not in ("runtime", "energy"):
        raise DecisionError(f"unknown objective {objective!r}")
    if objective == "energy" and energy_model is None:
        raise DecisionError("energy objective requires an EnergyModel")

    host_cycles = host_model.predict(n)

    # Enumerate candidate options: host, and every offload width.
    candidates: typing.List[typing.Tuple[str, int, float, typing.Optional[float]]] = []
    if t_max is None or host_cycles <= t_max:
        host_energy = (energy_model.host_energy(host_model, n)
                       if energy_model else None)
        candidates.append(("host", 0, host_cycles, host_energy))
    for m in range(1, max_clusters + 1):
        cycles = model.predict(m, n)
        if t_max is not None and cycles > t_max:
            continue
        energy = (energy_model.offload_energy(model, m, n)
                  if energy_model else None)
        candidates.append(("offload", m, cycles, energy))

    if not candidates:
        raise DecisionError(
            f"no execution option meets the deadline of {t_max:.0f} "
            f"cycles for N={n}")

    if objective == "runtime":
        kind, m, cycles, energy = min(candidates, key=lambda c: (c[2], c[1]))
        reason = "minimum predicted runtime"
    else:
        kind, m, cycles, energy = min(candidates, key=lambda c: (c[3], c[1]))
        reason = "minimum predicted energy"
    if t_max is not None:
        reason += f" subject to t_max={t_max:.0f}"

    return OffloadDecision(
        offload=(kind == "offload"), num_clusters=m,
        predicted_cycles=cycles, host_cycles=host_cycles,
        predicted_energy=energy, reason=reason)


# ----------------------------------------------------------------------
# Fabric selection: which tile class, and how many of it
# ----------------------------------------------------------------------
#: Cost objectives :func:`choose_fabric` can minimize, each mapping a
#: (option, M) pair to a scalar cost.
FABRIC_OBJECTIVES: typing.Mapping[str, typing.Callable[
    ["FabricOption", int], float]] = {
    "area": lambda option, m: m * option.tile_area_mm2,
    "power": lambda option, m: m * option.tile_power,
    "clusters": lambda option, m: float(m),
}


@dataclasses.dataclass(frozen=True)
class FabricOption:
    """One candidate tile class for the fabric-selection decision.

    Pairs a per-class runtime model (see
    :func:`repro.core.model.fit_class_models`) with the class's
    physical cost per tile and the largest group the fabric could
    host.  Costs default to the Snitch-cluster baseline so a
    homogeneous option list degenerates to Eq. 3.
    """

    tile_class: str
    model: OffloadModel
    max_clusters: int = 32
    tile_area_mm2: float = 1.0
    tile_power: float = 25.0

    def __post_init__(self) -> None:
        if self.max_clusters <= 0:
            raise DecisionError(
                f"fabric option {self.tile_class!r}: max_clusters must "
                f"be positive, got {self.max_clusters}")
        if self.tile_area_mm2 < 0 or self.tile_power < 0:
            raise DecisionError(
                f"fabric option {self.tile_class!r}: tile cost must be "
                "non-negative")


@dataclasses.dataclass(frozen=True)
class FabricDecision:
    """The answer :func:`choose_fabric` returns."""

    #: Winning tile class.
    tile_class: str
    #: Minimum cluster count of that class meeting the deadline.
    num_clusters: int
    #: Predicted cycles at the chosen (class, M).
    predicted_cycles: float
    #: Cost of the chosen deployment under the selected objective.
    cost: float
    #: The objective that was minimized (``area``/``power``/``clusters``).
    objective: str
    #: Per-class outcome, winners and losers alike, for reports:
    #: ``{class: "M=3, cost 12.0 mm^2"}`` or ``{class: "infeasible: …"}``.
    outcomes: typing.Mapping[str, str] = dataclasses.field(
        default_factory=dict)

    def __str__(self) -> str:
        return (f"{self.num_clusters}x {self.tile_class} "
                f"({self.predicted_cycles:.0f} cycles, "
                f"{self.objective} cost {self.cost:g})")


def choose_fabric(options: typing.Sequence[FabricOption], n: int,
                  t_max: float,
                  objective: str = "area") -> FabricDecision:
    """Pick the cheapest (tile class, M) meeting a deadline.

    This is the paper's Eq. 3 inverted *per tile class* and then
    compared across classes: for each option the minimum feasible M is
    computed from its own fitted model, its deployment cost is
    ``M · cost_per_tile`` under ``objective``, and the cheapest
    feasible deployment wins (ties broken by predicted cycles, then by
    class name for determinism).

    Raises
    ------
    DecisionError
        If ``options`` is empty, the objective is unknown, two options
        share a class name, or no class can meet the deadline — the
        message then names each class's failure.
    """
    if not options:
        raise DecisionError("choose_fabric needs at least one option")
    cost_of = FABRIC_OBJECTIVES.get(objective)
    if cost_of is None:
        raise DecisionError(
            f"unknown fabric objective {objective!r}; expected one of "
            f"{sorted(FABRIC_OBJECTIVES)}")
    seen: typing.Set[str] = set()
    for option in options:
        if option.tile_class in seen:
            raise DecisionError(
                f"duplicate fabric option for tile class "
                f"{option.tile_class!r}")
        seen.add(option.tile_class)

    outcomes: typing.Dict[str, str] = {}
    feasible: typing.List[typing.Tuple[float, float, str,
                                       FabricOption, int]] = []
    for option in options:
        try:
            m_min = min_clusters_for_deadline(
                option.model, n, t_max, option.max_clusters)
        except DecisionError as exc:
            outcomes[option.tile_class] = f"infeasible: {exc}"
            continue
        cycles = option.model.predict(m_min, n)
        cost = cost_of(option, m_min)
        outcomes[option.tile_class] = (
            f"M={m_min}, {objective} cost {cost:g}, "
            f"{cycles:.0f} cycles")
        feasible.append((cost, cycles, option.tile_class, option, m_min))

    if not feasible:
        detail = "; ".join(
            f"{name}: {reason}" for name, reason in sorted(outcomes.items()))
        raise DecisionError(
            f"no tile class meets {t_max:.0f} cycles for N={n} — {detail}")

    cost, cycles, _name, option, m_min = min(feasible)
    return FabricDecision(
        tile_class=option.tile_class, num_clusters=m_min,
        predicted_cycles=cycles, cost=cost, objective=objective,
        outcomes=outcomes)
