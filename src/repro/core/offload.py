"""Run one offloaded job end to end and measure it.

:func:`offload` is the package's main entry point: it stages job
operands into the simulated SoC's main memory, encodes the job
descriptor, runs the host's offload routine against the cluster fabric,
checks functional correctness against the kernel's reference, and
returns the measured runtime with a full phase breakdown.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import abi
from repro.errors import CycleLimitError, DeadlockError, OffloadError
from repro.kernels.base import Kernel, split_range
from repro.kernels.registry import get_kernel
from repro.runtime.api import make_runtime
from repro.runtime.trace import OffloadTrace, build_offload_trace
from repro.soc.manticore import ManticoreSystem

#: Simulation-cycle guard against runaway offloads (a 1024-element DAXPY
#: takes around a thousand cycles; nothing sane needs a billion).
DEFAULT_MAX_CYCLES = 1_000_000_000


@dataclasses.dataclass(frozen=True)
class OffloadResult:
    """One measured offload."""

    kernel_name: str
    n: int
    num_clusters: int
    variant: str
    runtime_cycles: int
    start_cycle: int
    end_cycle: int
    outputs: typing.Mapping[str, numpy.ndarray]
    trace: OffloadTrace
    verified: typing.Optional[bool]

    def __str__(self) -> str:
        return (f"{self.kernel_name}(n={self.n}) on {self.num_clusters} "
                f"clusters [{self.variant}]: {self.runtime_cycles} cycles")


#: ``exec_mode`` argument values accepted by :func:`offload`.
EXEC_MODES = {
    "phased": abi.EXEC_MODE_PHASED,
    "double_buffered": abi.EXEC_MODE_DOUBLE_BUFFERED,
}


def offload(system: ManticoreSystem, kernel_name: str, n: int,
            num_clusters: int,
            scalars: typing.Optional[typing.Mapping[str, float]] = None,
            inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None,
            variant: str = "auto", exec_mode: str = "phased", seed: int = 0,
            verify: bool = True,
            max_cycles: int = DEFAULT_MAX_CYCLES) -> OffloadResult:
    """Offload one job and return the measured result.

    Parameters
    ----------
    system:
        The SoC to run on.  Reusable across sequential offloads.
    kernel_name:
        A registered kernel (see :func:`repro.kernels.kernel_names`).
    n:
        Problem size in work items.
    num_clusters:
        Offload width M (clusters ``0..M-1`` participate).
    scalars:
        Kernel scalar arguments; defaults to 1.0 each.
    inputs:
        Input buffers; generated deterministically from ``seed`` if
        omitted.
    variant:
        Runtime variant (``auto`` uses all hardware features present).
    exec_mode:
        Device execution protocol: ``"phased"`` (the paper's — stage,
        compute, write back) or ``"double_buffered"`` (chunked pipeline
        overlapping DMA with compute; element-wise kernels only).
    verify:
        Check outputs against the kernel's reference model and raise
        :class:`OffloadError` on mismatch.
    max_cycles:
        Abort if the simulation exceeds this cycle count.
    """
    kernel = get_kernel(kernel_name)
    scalars = dict(scalars) if scalars else {
        name: 1.0 for name in kernel.scalar_names}
    kernel.validate(n, scalars)
    if exec_mode not in EXEC_MODES:
        raise OffloadError(
            f"unknown exec mode {exec_mode!r}; available: "
            f"{', '.join(sorted(EXEC_MODES))}")
    if exec_mode == "double_buffered":
        for name in kernel.output_names:
            if kernel.output_length(name, n, num_clusters) != n:
                raise OffloadError(
                    f"double buffering requires an element-wise kernel; "
                    f"{kernel_name!r} output {name!r} depends on the "
                    "offload shape")
    _check_offload_shape(system, kernel, n, num_clusters,
                         double_buffered=(exec_mode == "double_buffered"))

    inputs = _prepare_inputs(kernel, n, inputs, seed)
    runtime = make_runtime(system, variant)
    memory = system.memory

    # --- Stage operands and build the descriptor -----------------------
    input_addrs = {}
    for name in kernel.input_names:
        addr = memory.alloc_f64(kernel.input_length(name, n))
        memory.write_f64(addr, inputs[name])
        input_addrs[name] = addr
    output_addrs = {}
    for name in kernel.output_names:
        alias = kernel.output_alias(name)
        if alias is not None:
            output_addrs[name] = input_addrs[alias]
        else:
            output_addrs[name] = memory.alloc_f64(
                kernel.output_length(name, n, num_clusters))

    flag_addr = None
    if runtime.sync_mode == abi.SYNC_MODE_AMO:
        flag_addr = memory.alloc(8)
        completion_addr = flag_addr
    else:
        completion_addr = system.syncunit_increment_addr

    desc = abi.JobDescriptor(
        kernel_name=kernel_name, n=n, num_clusters=num_clusters,
        sync_mode=runtime.sync_mode, completion_addr=completion_addr,
        exec_mode=EXEC_MODES[exec_mode],
        scalars=scalars, input_addrs=input_addrs, output_addrs=output_addrs)
    desc_addr = memory.alloc(8 * max(desc.words, 8), align=64)

    # --- Run -----------------------------------------------------------
    result_box: typing.Dict[str, int] = {}
    program = runtime.offload_program(desc, desc_addr, flag_addr, result_box)
    process = system.host.run_program(program, name=f"offload.{kernel_name}")
    _run_to_completion(system, process, max_cycles)
    system.run()  # drain in-flight responses so memory state settles

    if "end_cycle" not in result_box:
        raise OffloadError("offload program finished without recording "
                           "completion (runtime bug)")

    # --- Collect outputs -------------------------------------------------
    outputs = {
        name: memory.read_f64(
            output_addrs[name], kernel.output_length(name, n, num_clusters))
        for name in kernel.output_names
    }
    verified = None
    if verify:
        _verify_outputs(kernel, n, num_clusters, scalars, inputs, outputs)
        verified = True

    trace = build_offload_trace(
        system.trace, result_box["start_cycle"], result_box["end_cycle"])
    return OffloadResult(
        kernel_name=kernel_name, n=n, num_clusters=num_clusters,
        variant=runtime.name,
        runtime_cycles=result_box["end_cycle"] - result_box["start_cycle"],
        start_cycle=result_box["start_cycle"],
        end_cycle=result_box["end_cycle"],
        outputs=outputs, trace=trace, verified=verified)


def offload_daxpy(system: ManticoreSystem, n: int, num_clusters: int,
                  a: float = 2.0, **kwargs) -> OffloadResult:
    """Offload the paper's DAXPY kernel: ``y = a*x + y``."""
    return offload(system, "daxpy", n, num_clusters, scalars={"a": a},
                   **kwargs)


@dataclasses.dataclass(frozen=True)
class HostRunResult:
    """One kernel executed by the host core itself (no offload)."""

    kernel_name: str
    n: int
    runtime_cycles: int
    outputs: typing.Mapping[str, numpy.ndarray]
    verified: typing.Optional[bool]

    def __str__(self) -> str:
        return (f"{self.kernel_name}(n={self.n}) on the host: "
                f"{self.runtime_cycles} cycles")


def run_on_host(system: ManticoreSystem, kernel_name: str, n: int,
                scalars: typing.Optional[typing.Mapping[str, float]] = None,
                inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None,
                seed: int = 0, verify: bool = True) -> HostRunResult:
    """Execute a kernel on the host core — the offload's measured rival.

    Same staging and verification as :func:`offload`, but the host runs
    the loop itself (see :mod:`repro.runtime.hostexec`): no dispatch,
    DMA, or completion synchronization is paid, only the host's slower
    single-core rate.
    """
    from repro.runtime.hostexec import host_kernel_program

    kernel = get_kernel(kernel_name)
    scalars = dict(scalars) if scalars else {
        name: 1.0 for name in kernel.scalar_names}
    kernel.validate(n, scalars)
    inputs = _prepare_inputs(kernel, n, inputs, seed)
    memory = system.memory

    input_addrs = {}
    for name in kernel.input_names:
        addr = memory.alloc_f64(kernel.input_length(name, n))
        memory.write_f64(addr, inputs[name])
        input_addrs[name] = addr
    output_addrs = {}
    for name in kernel.output_names:
        alias = kernel.output_alias(name)
        if alias is not None:
            output_addrs[name] = input_addrs[alias]
        else:
            output_addrs[name] = memory.alloc_f64(
                kernel.output_length(name, n, 1))

    result_box: typing.Dict[str, int] = {}
    program = host_kernel_program(system, kernel, n, scalars, input_addrs,
                                  output_addrs, result_box)
    process = system.host.run_program(program, name=f"host.{kernel_name}")
    _run_to_completion(system, process, DEFAULT_MAX_CYCLES)
    system.run()

    outputs = {
        name: memory.read_f64(output_addrs[name],
                              kernel.output_length(name, n, 1))
        for name in kernel.output_names
    }
    verified = None
    if verify:
        _verify_outputs(kernel, n, 1, scalars, inputs, outputs)
        verified = True
    return HostRunResult(
        kernel_name=kernel_name, n=n,
        runtime_cycles=result_box["end_cycle"] - result_box["start_cycle"],
        outputs=outputs, verified=verified)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _check_offload_shape(system: ManticoreSystem, kernel: Kernel, n: int,
                         num_clusters: int,
                         double_buffered: bool = False) -> None:
    config = system.config
    if not 0 < num_clusters <= config.num_clusters:
        raise OffloadError(
            f"cannot offload to {num_clusters} clusters on a "
            f"{config.num_clusters}-cluster fabric")
    largest = split_range(n, num_clusters)[0]
    footprint = kernel.slice_tcdm_bytes(largest.lo, largest.hi, n)
    if double_buffered:
        # Chunking divides the working set, so a whole slice never has
        # to fit; the device runtime re-checks its chosen chunk pair.
        return
    if footprint > config.tcdm_bytes:
        raise OffloadError(
            f"{kernel.name}(n={n}) on {num_clusters} clusters needs "
            f"{footprint} bytes of TCDM per cluster but only "
            f"{config.tcdm_bytes} are available; increase num_clusters "
            "or shrink the job (or use exec_mode='double_buffered')")


def _prepare_inputs(kernel: Kernel, n: int,
                    inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]],
                    seed: int) -> typing.Dict[str, numpy.ndarray]:
    if inputs is None:
        rng = numpy.random.default_rng(seed)
        return kernel.make_inputs(n, rng)
    prepared = {}
    for name in kernel.input_names:
        if name not in inputs:
            raise OffloadError(f"missing input buffer {name!r}")
        array = numpy.asarray(inputs[name], dtype=numpy.float64)
        expected = kernel.input_length(name, n)
        if array.size != expected:
            raise OffloadError(
                f"input {name!r} has {array.size} elements, "
                f"kernel {kernel.name!r} expects {expected} for n={n}")
        prepared[name] = array
    return prepared


def _run_to_completion(system: ManticoreSystem, process,
                       max_cycles: int) -> None:
    try:
        system.sim.run(until=process, max_cycles=max_cycles)
    except CycleLimitError:
        raise OffloadError(
            f"offload exceeded {max_cycles} cycles; the completion "
            "protocol likely deadlocked") from None
    except DeadlockError:
        raise OffloadError(
            "simulation ran out of events before the offload "
            "completed (lost doorbell or completion signal)") from None


def _verify_outputs(kernel: Kernel, n: int, num_clusters: int,
                    scalars, inputs, outputs) -> None:
    expected = kernel.reference(n, scalars, inputs, num_clusters)
    for name, want in expected.items():
        got = outputs[name]
        if not numpy.allclose(got, want, rtol=1e-10, atol=1e-12):
            worst = int(numpy.argmax(numpy.abs(got - want)))
            raise OffloadError(
                f"{kernel.name} output {name!r} mismatches the reference "
                f"(first/worst at index {worst}: got {got[worst]}, "
                f"want {want[worst]})")
