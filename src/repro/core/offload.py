"""Run one offloaded job end to end and measure it.

:func:`offload` is the package's main entry point: it binds the job to
the simulated SoC through the staging layer
(:class:`repro.core.staging.JobBinding` — operand staging, descriptor
build, completion resources), runs the host's offload routine against
the cluster fabric, checks functional correctness against the kernel's
reference, and returns the measured runtime with a full phase
breakdown.  :func:`run_on_host` measures the offload's rival: the host
core running the same kernel itself.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.staging import (
    DEFAULT_MAX_CYCLES,
    EXEC_MODES,
    JobBinding,
    run_to_completion,
)
from repro.errors import OffloadError
from repro.runtime.api import make_runtime
from repro.runtime.trace import OffloadTrace, build_offload_trace
from repro.soc.manticore import ManticoreSystem

__all__ = [
    "DEFAULT_MAX_CYCLES",
    "EXEC_MODES",
    "HostRunResult",
    "OffloadResult",
    "offload",
    "offload_daxpy",
    "run_on_host",
]


@dataclasses.dataclass(frozen=True)
class OffloadResult:
    """One measured offload."""

    kernel_name: str
    n: int
    num_clusters: int
    variant: str
    runtime_cycles: int
    start_cycle: int
    end_cycle: int
    outputs: typing.Mapping[str, numpy.ndarray]
    trace: OffloadTrace
    verified: typing.Optional[bool]
    #: Fabric group the job ran on (``None`` = the whole fabric from
    #: cluster 0, the homogeneous default).
    tile_group: typing.Optional[str] = None

    def __str__(self) -> str:
        return (f"{self.kernel_name}(n={self.n}) on {self.num_clusters} "
                f"clusters [{self.variant}]: {self.runtime_cycles} cycles")


def offload(system: ManticoreSystem, kernel_name: str, n: int,
            num_clusters: int,
            scalars: typing.Optional[typing.Mapping[str, float]] = None,
            inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None,
            variant: str = "auto", exec_mode: str = "phased", seed: int = 0,
            verify: bool = True,
            max_cycles: int = DEFAULT_MAX_CYCLES,
            tile_group: typing.Optional[str] = None) -> OffloadResult:
    """Offload one job and return the measured result.

    Parameters
    ----------
    system:
        The SoC to run on.  Reusable across sequential offloads.
    kernel_name:
        A registered kernel (see :func:`repro.kernels.kernel_names`).
    n:
        Problem size in work items.
    num_clusters:
        Offload width M (clusters ``0..M-1`` participate).
    scalars:
        Kernel scalar arguments; defaults to 1.0 each.
    inputs:
        Input buffers; generated deterministically from ``seed`` if
        omitted.
    variant:
        Runtime variant (``auto`` uses all hardware features present).
    exec_mode:
        Device execution protocol: ``"phased"`` (the paper's — stage,
        compute, write back) or ``"double_buffered"`` (chunked pipeline
        overlapping DMA with compute; element-wise kernels only).
    verify:
        Check outputs against the kernel's reference model and raise
        :class:`OffloadError` on mismatch.
    max_cycles:
        Abort if the simulation exceeds this cycle count.
    tile_group:
        Name of the fabric group to run on (see
        :meth:`~repro.soc.config.SoCConfig.tile_group`); the job
        targets clusters ``[group.start, group.start + M)`` and ``M``
        is bounded by the group's tile count.  ``None`` (the default)
        targets the fabric from cluster 0 — the homogeneous behaviour.
    """
    runtime = make_runtime(system, variant)
    first_cluster = 0
    if tile_group is not None:
        group = system.config.tile_group(tile_group)
        if num_clusters > group.count:
            raise OffloadError(
                f"cannot offload to {num_clusters} clusters in tile group "
                f"{tile_group!r}, which has {group.count} "
                f"{group.tile.class_name!r} tiles")
        # Surface a missing kernel rate as a ConfigError naming the
        # class *before* any simulation state is touched.
        group.tile.timing_for(kernel_name)
        first_cluster = group.start
    binding = JobBinding.bind(system, runtime, kernel_name, n, num_clusters,
                              scalars=scalars, inputs=inputs, seed=seed,
                              exec_mode=exec_mode,
                              first_cluster=first_cluster)

    result_box: typing.Dict[str, int] = {}
    program = runtime.offload_program(binding.desc, binding.desc_addr,
                                      binding.flag_addr, result_box)
    process = system.host.run_program(program, name=f"offload.{kernel_name}")
    run_to_completion(system, process, max_cycles)
    system.run()  # drain in-flight responses so memory state settles

    if "end_cycle" not in result_box:
        raise OffloadError("offload program finished without recording "
                           "completion (runtime bug)")

    outputs, verified = binding.finish(verify)
    trace = build_offload_trace(
        system.trace, result_box["start_cycle"], result_box["end_cycle"])
    return OffloadResult(
        kernel_name=kernel_name, n=n, num_clusters=num_clusters,
        variant=runtime.name,
        runtime_cycles=result_box["end_cycle"] - result_box["start_cycle"],
        start_cycle=result_box["start_cycle"],
        end_cycle=result_box["end_cycle"],
        outputs=outputs, trace=trace, verified=verified,
        tile_group=tile_group)


def offload_daxpy(system: ManticoreSystem, n: int, num_clusters: int,
                  a: float = 2.0, **kwargs) -> OffloadResult:
    """Offload the paper's DAXPY kernel: ``y = a*x + y``."""
    return offload(system, "daxpy", n, num_clusters, scalars={"a": a},
                   **kwargs)


@dataclasses.dataclass(frozen=True)
class HostRunResult:
    """One kernel executed by the host core itself (no offload)."""

    kernel_name: str
    n: int
    runtime_cycles: int
    outputs: typing.Mapping[str, numpy.ndarray]
    verified: typing.Optional[bool]

    def __str__(self) -> str:
        return (f"{self.kernel_name}(n={self.n}) on the host: "
                f"{self.runtime_cycles} cycles")


def run_on_host(system: ManticoreSystem, kernel_name: str, n: int,
                scalars: typing.Optional[typing.Mapping[str, float]] = None,
                inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None,
                seed: int = 0, verify: bool = True,
                max_cycles: int = DEFAULT_MAX_CYCLES) -> HostRunResult:
    """Execute a kernel on the host core — the offload's measured rival.

    Same staging and verification as :func:`offload`, but the host runs
    the loop itself (see :mod:`repro.runtime.hostexec`): no dispatch,
    DMA, or completion synchronization is paid, only the host's slower
    single-core rate.  ``max_cycles`` bounds the simulation exactly as
    in :func:`offload`.
    """
    from repro.runtime.hostexec import host_kernel_program

    binding = JobBinding.bind_host(system, kernel_name, n, scalars=scalars,
                                   inputs=inputs, seed=seed)

    result_box: typing.Dict[str, int] = {}
    program = host_kernel_program(system, binding.kernel, n, binding.scalars,
                                  binding.input_addrs, binding.output_addrs,
                                  result_box)
    process = system.host.run_program(program, name=f"host.{kernel_name}")
    run_to_completion(system, process, max_cycles)
    system.run()

    outputs, verified = binding.finish(verify)
    return HostRunResult(
        kernel_name=kernel_name, n=n,
        runtime_cycles=result_box["end_cycle"] - result_box["start_cycle"],
        outputs=outputs, verified=verified)
