"""Co-operative heterogeneous execution: host works while the fabric does.

The plain offload leaves the host idle (or polling) for the job's whole
duration.  Real heterogeneous applications overlap: dispatch the
accelerator job, run host-side work (another kernel, control logic),
and synchronize only when the host actually needs the result.
:func:`offload_overlapped` runs exactly that pattern and measures how
much of the host work the offload hides — up to the full accelerator
runtime, for free.

This composes the pieces the reproduction already has: the staging
layer (:class:`repro.core.staging.JobBinding` binds both the
accelerator job and the host job), the offload protocol
(:mod:`repro.runtime.protocol`), host kernel execution
(:mod:`repro.runtime.hostexec`), and the level-pending interrupt
semantics that make "IRQ arrived while the host was busy" race-free.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.staging import DEFAULT_MAX_CYCLES, JobBinding, run_to_completion
from repro.kernels.base import WorkSlice
from repro.runtime.api import make_runtime
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class OverlappedResult:
    """One offload overlapped with host-side work."""

    accel_kernel: str
    host_kernel: str
    total_cycles: int
    host_work_cycles: int
    accel_outputs: typing.Mapping[str, numpy.ndarray]
    host_outputs: typing.Mapping[str, numpy.ndarray]
    verified: typing.Optional[bool]

    @property
    def exposed_wait_cycles(self) -> int:
        """Cycles the host still waited after finishing its own work."""
        return self.total_cycles - self._host_done_offset

    # Stored via object.__setattr__ in the factory; kept private so the
    # public surface stays the two derived properties.
    _host_done_offset: int = 0

    def __str__(self) -> str:
        return (f"{self.accel_kernel} offload overlapped with host "
                f"{self.host_kernel}: {self.total_cycles} cycles "
                f"({self.exposed_wait_cycles} exposed wait)")


def offload_overlapped(system: ManticoreSystem, accel_kernel: str,
                       accel_n: int, num_clusters: int, host_kernel: str,
                       host_n: int,
                       accel_scalars: typing.Optional[dict] = None,
                       host_scalars: typing.Optional[dict] = None,
                       variant: str = "auto", seed: int = 0,
                       verify: bool = True,
                       max_cycles: int = DEFAULT_MAX_CYCLES
                       ) -> OverlappedResult:
    """Dispatch an accelerator job, run a host kernel meanwhile, wait.

    Returns measured totals plus both jobs' outputs (each verified
    against its kernel's reference when ``verify``).
    """
    runtime = make_runtime(system, variant)
    memory = system.memory

    # Stage both jobs: the accelerator job first (descriptor and
    # completion resources included), then the host job's operands.
    accel = JobBinding.bind(system, runtime, accel_kernel, accel_n,
                            num_clusters, scalars=accel_scalars, seed=seed)
    host_job = JobBinding.bind_host(system, host_kernel, host_n,
                                    scalars=host_scalars, seed=seed + 1)
    hkernel = host_job.kernel

    def host_work() -> typing.Generator:
        yield from system.host.execute(hkernel.host_compute_cycles(host_n))
        inputs = {name: memory.read_f64(addr,
                                        hkernel.input_length(name, host_n))
                  for name, addr in host_job.input_addrs.items()}
        work = WorkSlice(index=0, lo=0, hi=host_n)
        for name in hkernel.output_names:
            alias = hkernel.output_alias(name)
            if alias is not None:
                length = hkernel.output_length(name, host_n, 1)
                memory.write_f64(host_job.output_addrs[name],
                                 inputs[alias][:length])
        for name, (start, values) in hkernel.compute_slice(
                host_n, host_job.scalars, inputs, work).items():
            memory.write_f64(host_job.output_addrs[name] + 8 * start, values)

    result_box: typing.Dict[str, int] = {}
    program = runtime.overlapped_offload_program(
        accel.desc, accel.desc_addr, accel.flag_addr, host_work, result_box)
    process = system.host.run_program(program, name="offload.overlapped")
    run_to_completion(system, process, max_cycles)
    system.run()

    accel_outputs, accel_verified = accel.finish(verify)
    host_outputs, _host_verified = host_job.finish(verify)
    verified = True if accel_verified else None

    total = result_box["end_cycle"] - result_box["start_cycle"]
    host_done = result_box["host_work_done_cycle"] - result_box["start_cycle"]
    result = OverlappedResult(
        accel_kernel=accel_kernel, host_kernel=host_kernel,
        total_cycles=total,
        host_work_cycles=hkernel.host_compute_cycles(host_n),
        accel_outputs=accel_outputs, host_outputs=host_outputs,
        verified=verified, _host_done_offset=host_done)
    return result
