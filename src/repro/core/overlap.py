"""Co-operative heterogeneous execution: host works while the fabric does.

The plain offload leaves the host idle (or polling) for the job's whole
duration.  Real heterogeneous applications overlap: dispatch the
accelerator job, run host-side work (another kernel, control logic),
and synchronize only when the host actually needs the result.
:func:`offload_overlapped` runs exactly that pattern and measures how
much of the host work the offload hides — up to the full accelerator
runtime, for free.

This composes the pieces the reproduction already has: the offload
protocol (:mod:`repro.runtime.protocol`), host kernel execution
(:mod:`repro.runtime.hostexec`), and the level-pending interrupt
semantics that make "IRQ arrived while the host was busy" race-free.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import abi
from repro.core.offload import (
    DEFAULT_MAX_CYCLES,
    _check_offload_shape,
    _prepare_inputs,
    _run_to_completion,
    _verify_outputs,
)
from repro.kernels.base import WorkSlice
from repro.kernels.registry import get_kernel
from repro.runtime.api import make_runtime
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class OverlappedResult:
    """One offload overlapped with host-side work."""

    accel_kernel: str
    host_kernel: str
    total_cycles: int
    host_work_cycles: int
    accel_outputs: typing.Mapping[str, numpy.ndarray]
    host_outputs: typing.Mapping[str, numpy.ndarray]
    verified: typing.Optional[bool]

    @property
    def exposed_wait_cycles(self) -> int:
        """Cycles the host still waited after finishing its own work."""
        return self.total_cycles - self._host_done_offset

    # Stored via object.__setattr__ in the factory; kept private so the
    # public surface stays the two derived properties.
    _host_done_offset: int = 0

    def __str__(self) -> str:
        return (f"{self.accel_kernel} offload overlapped with host "
                f"{self.host_kernel}: {self.total_cycles} cycles "
                f"({self.exposed_wait_cycles} exposed wait)")


def offload_overlapped(system: ManticoreSystem, accel_kernel: str,
                       accel_n: int, num_clusters: int, host_kernel: str,
                       host_n: int,
                       accel_scalars: typing.Optional[dict] = None,
                       host_scalars: typing.Optional[dict] = None,
                       variant: str = "auto", seed: int = 0,
                       verify: bool = True,
                       max_cycles: int = DEFAULT_MAX_CYCLES
                       ) -> OverlappedResult:
    """Dispatch an accelerator job, run a host kernel meanwhile, wait.

    Returns measured totals plus both jobs' outputs (each verified
    against its kernel's reference when ``verify``).
    """
    kernel = get_kernel(accel_kernel)
    accel_scalars = dict(accel_scalars) if accel_scalars else {
        name: 1.0 for name in kernel.scalar_names}
    kernel.validate(accel_n, accel_scalars)
    _check_offload_shape(system, kernel, accel_n, num_clusters)

    hkernel = get_kernel(host_kernel)
    host_scalars = dict(host_scalars) if host_scalars else {
        name: 1.0 for name in hkernel.scalar_names}
    hkernel.validate(host_n, host_scalars)

    memory = system.memory
    runtime = make_runtime(system, variant)

    # --- Stage the accelerator job --------------------------------------
    accel_inputs = _prepare_inputs(kernel, accel_n, None, seed)
    input_addrs = {}
    for name in kernel.input_names:
        addr = memory.alloc_f64(kernel.input_length(name, accel_n))
        memory.write_f64(addr, accel_inputs[name])
        input_addrs[name] = addr
    output_addrs = {}
    for name in kernel.output_names:
        alias = kernel.output_alias(name)
        output_addrs[name] = (input_addrs[alias] if alias is not None
                              else memory.alloc_f64(kernel.output_length(
                                  name, accel_n, num_clusters)))
    flag_addr = None
    if runtime.sync_mode == abi.SYNC_MODE_AMO:
        flag_addr = memory.alloc(8)
        completion_addr = flag_addr
    else:
        completion_addr = system.syncunit_increment_addr
    desc = abi.JobDescriptor(
        kernel_name=accel_kernel, n=accel_n, num_clusters=num_clusters,
        sync_mode=runtime.sync_mode, completion_addr=completion_addr,
        scalars=accel_scalars, input_addrs=input_addrs,
        output_addrs=output_addrs)
    desc_addr = memory.alloc(8 * max(desc.words, 8), align=64)

    # --- Stage the host job ------------------------------------------------
    host_inputs = _prepare_inputs(hkernel, host_n, None, seed + 1)
    host_in_addrs = {}
    for name in hkernel.input_names:
        addr = memory.alloc_f64(hkernel.input_length(name, host_n))
        memory.write_f64(addr, host_inputs[name])
        host_in_addrs[name] = addr
    host_out_addrs = {}
    for name in hkernel.output_names:
        alias = hkernel.output_alias(name)
        host_out_addrs[name] = (host_in_addrs[alias] if alias is not None
                                else memory.alloc_f64(hkernel.output_length(
                                    name, host_n, 1)))

    def host_work() -> typing.Generator:
        yield from system.host.execute(hkernel.host_compute_cycles(host_n))
        inputs = {name: memory.read_f64(addr,
                                        hkernel.input_length(name, host_n))
                  for name, addr in host_in_addrs.items()}
        work = WorkSlice(index=0, lo=0, hi=host_n)
        for name in hkernel.output_names:
            alias = hkernel.output_alias(name)
            if alias is not None:
                length = hkernel.output_length(name, host_n, 1)
                memory.write_f64(host_out_addrs[name],
                                 inputs[alias][:length])
        for name, (start, values) in hkernel.compute_slice(
                host_n, host_scalars, inputs, work).items():
            memory.write_f64(host_out_addrs[name] + 8 * start, values)

    # --- Run ----------------------------------------------------------------
    result_box: typing.Dict[str, int] = {}
    program = runtime.overlapped_offload_program(
        desc, desc_addr, flag_addr, host_work, result_box)
    process = system.host.run_program(program, name="offload.overlapped")
    _run_to_completion(system, process, max_cycles)
    system.run()

    accel_outputs = {
        name: memory.read_f64(output_addrs[name],
                              kernel.output_length(name, accel_n,
                                                   num_clusters))
        for name in kernel.output_names
    }
    host_outputs = {
        name: memory.read_f64(host_out_addrs[name],
                              hkernel.output_length(name, host_n, 1))
        for name in hkernel.output_names
    }
    verified = None
    if verify:
        _verify_outputs(kernel, accel_n, num_clusters, accel_scalars,
                        accel_inputs, accel_outputs)
        _verify_outputs(hkernel, host_n, 1, host_scalars, host_inputs,
                        host_outputs)
        verified = True

    total = result_box["end_cycle"] - result_box["start_cycle"]
    host_done = result_box["host_work_done_cycle"] - result_box["start_cycle"]
    result = OverlappedResult(
        accel_kernel=accel_kernel, host_kernel=host_kernel,
        total_cycles=total,
        host_work_cycles=hkernel.host_compute_cycles(host_n),
        accel_outputs=accel_outputs, host_outputs=host_outputs,
        verified=verified, _host_done_offset=host_done)
    return result
