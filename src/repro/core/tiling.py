"""Tiled offloads: jobs larger than the fabric's aggregate TCDM.

The paper's protocol stages a cluster's whole slice into its TCDM, so
the largest phased offload is bounded by ``M · TCDM`` of working set.
Tiling lifts that bound with the classic software answer: split the job
into sequential tiles, each offloaded with the normal protocol.  Every
tile pays the full constant offload overhead (~370 cycles), which is
exactly the cost the paper's extensions minimize — and why, where it
applies, the double-buffered device protocol
(:mod:`repro.cluster.dm_core`) is the better tool: it amortizes one
offload's overhead over the whole job.  ``benchmarks/bench_tiling.py``
quantifies that comparison.

Only *tileable* kernels qualify (pure element-wise ones — see
:attr:`repro.kernels.base.Kernel.tileable`): a reduction's output shape
depends on the offload shape, and a stencil's tiles would clamp at tile
edges instead of exchanging halos.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.offload import offload
from repro.core.staging import prepare_inputs
from repro.errors import OffloadError
from repro.kernels.base import split_range
from repro.kernels.registry import get_kernel
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class TiledOffloadResult:
    """A job executed as a sequence of tile offloads."""

    kernel_name: str
    n: int
    num_clusters: int
    tile_elements: int
    per_tile_cycles: typing.Tuple[int, ...]
    outputs: typing.Mapping[str, numpy.ndarray]
    verified: typing.Optional[bool]

    @property
    def num_tiles(self) -> int:
        return len(self.per_tile_cycles)

    @property
    def total_cycles(self) -> int:
        """Sum of tile runtimes (tiles run back to back on the host)."""
        return sum(self.per_tile_cycles)

    def __str__(self) -> str:
        return (f"{self.kernel_name}(n={self.n}) on {self.num_clusters} "
                f"clusters in {self.num_tiles} tiles: "
                f"{self.total_cycles} cycles")


def max_phased_tile(kernel_name: str, num_clusters: int,
                    tcdm_bytes: int) -> int:
    """Largest tile the phased protocol can stage on ``num_clusters``.

    For element-wise kernels the per-element TCDM footprint is constant,
    so the bound is ``num_clusters · (tcdm // bytes_per_element)``.
    """
    kernel = get_kernel(kernel_name)
    bytes_per_element = kernel.slice_tcdm_bytes(0, 1, 1)
    if bytes_per_element <= 0:
        raise OffloadError(
            f"kernel {kernel_name!r} has no per-element footprint")
    per_cluster = tcdm_bytes // bytes_per_element
    if per_cluster == 0:
        raise OffloadError(
            f"one element of {kernel_name!r} ({bytes_per_element} bytes) "
            f"does not fit a {tcdm_bytes}-byte TCDM")
    return per_cluster * num_clusters


def offload_tiled(system: ManticoreSystem, kernel_name: str, n: int,
                  num_clusters: int,
                  tile_elements: typing.Optional[int] = None,
                  scalars: typing.Optional[typing.Mapping[str, float]] = None,
                  inputs: typing.Optional[typing.Mapping[str, numpy.ndarray]] = None,
                  variant: str = "auto", seed: int = 0,
                  verify: bool = True) -> TiledOffloadResult:
    """Run a job as sequential tile offloads on one system.

    Parameters
    ----------
    tile_elements:
        Elements per tile; defaults to the largest tile the phased
        protocol can stage (:func:`max_phased_tile`).

    Raises
    ------
    OffloadError
        If the kernel is not tileable or the tile size is invalid.
    """
    kernel = get_kernel(kernel_name)
    if not kernel.tileable:
        raise OffloadError(
            f"kernel {kernel_name!r} is not tileable (reductions couple "
            "output shape to the offload; stencils couple tiles through "
            "their halos)")
    scalars = dict(scalars) if scalars else {
        name: 1.0 for name in kernel.scalar_names}
    kernel.validate(n, scalars)
    if tile_elements is None:
        tile_elements = min(n, max_phased_tile(
            kernel_name, num_clusters, system.config.tcdm_bytes))
    if tile_elements <= 0:
        raise OffloadError(
            f"tile size must be positive, got {tile_elements}")

    inputs = prepare_inputs(kernel, n, inputs, seed)
    num_tiles = -(-n // tile_elements)
    tiles = split_range(n, num_tiles)

    outputs = {
        name: numpy.zeros(kernel.output_length(name, n, num_clusters))
        for name in kernel.output_names
    }
    per_tile_cycles = []
    for tile in tiles:
        tile_inputs = {
            name: inputs[name][tile.lo:tile.hi]
            for name in kernel.input_names
        }
        result = offload(system, kernel_name, tile.elements, num_clusters,
                         scalars=scalars, inputs=tile_inputs,
                         variant=variant, verify=False)
        per_tile_cycles.append(result.runtime_cycles)
        for name, values in result.outputs.items():
            outputs[name][tile.lo:tile.hi] = values

    verified = None
    if verify:
        expected = kernel.reference(n, scalars, inputs, 1)
        for name, want in expected.items():
            if not numpy.allclose(outputs[name], want, rtol=1e-10,
                                  atol=1e-12):
                raise OffloadError(
                    f"tiled {kernel_name} output {name!r} mismatches the "
                    "reference")
        verified = True

    return TiledOffloadResult(
        kernel_name=kernel_name, n=n, num_clusters=num_clusters,
        tile_elements=tile_elements,
        per_tile_cycles=tuple(per_tile_cycles), outputs=outputs,
        verified=verified)
