"""The analytic offload-runtime model (the paper's Eq. 1, generalized).

The paper models the runtime of an offloaded DAXPY of size N on M
clusters as::

    t̂(M, N) = 367 + N/4 + 2.6·N/(M·8)          (Eq. 1)

i.e. a constant offload overhead, a memory-traffic term linear in N
(the serialized DMA over the shared channel), and a compute term that
parallelizes over M clusters.  We generalize with one extra term that
Eq. 1 does not need because the extended design's dispatch is constant:
a per-cluster dispatch cost ``d·M``, which lets the same model family
describe the *baseline* design whose overhead grows linearly in M::

    t̂(M, N) = t0 + d·M + b·N + c·N/M

Coefficients are either inspected (as the paper derives its constants
from the RTL and the compiled binary) or fitted with least squares from
a measurement sweep (:meth:`OffloadModel.fit`).
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy

from repro.errors import ModelError


@dataclasses.dataclass(frozen=True)
class OffloadModel:
    """``t̂(M, N) = t0 + d·M + b·N + c·N/M`` (cycles)."""

    #: Constant offload overhead (cycles).
    t0: float
    #: Memory-traffic coefficient ``b`` (cycles per element).
    mem_coeff: float
    #: Compute coefficient ``c`` (cycles per element, divided by M).
    compute_coeff: float
    #: Per-cluster dispatch coefficient ``d`` (0 for constant dispatch).
    dispatch_coeff: float = 0.0
    #: Human-readable provenance label.
    label: str = ""

    def __post_init__(self) -> None:
        if self.t0 < 0 or self.mem_coeff < 0 or self.compute_coeff < 0 \
                or self.dispatch_coeff < 0:
            raise ModelError(
                f"model coefficients must be non-negative: {self}")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, num_clusters: int, n: int) -> float:
        """Predicted runtime t̂(M, N) in cycles."""
        if num_clusters <= 0:
            raise ModelError(f"M must be positive, got {num_clusters}")
        if n < 0:
            raise ModelError(f"N must be non-negative, got {n}")
        return (self.t0
                + self.dispatch_coeff * num_clusters
                + self.mem_coeff * n
                + self.compute_coeff * n / num_clusters)

    def predict_many(self, points: typing.Sequence[typing.Tuple[int, int]]
                     ) -> numpy.ndarray:
        """Vectorized :meth:`predict` over ``(M, N)`` pairs."""
        return numpy.array([self.predict(m, n) for m, n in points])

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def serial_cycles(self, n: int) -> float:
        """Amdahl serial fraction numerator: cycles that do not scale with M."""
        return self.t0 + self.mem_coeff * n

    def parallel_cycles(self, n: int) -> float:
        """Cycles that scale as 1/M."""
        return self.compute_coeff * n

    def asymptotic_runtime(self, n: int) -> float:
        """Limit of t̂ as M → ∞ (only finite when dispatch is constant)."""
        if self.dispatch_coeff > 0:
            return math.inf
        return self.serial_cycles(n)

    def best_m(self, n: int, max_clusters: int) -> int:
        """The M in ``[1, max_clusters]`` minimizing predicted runtime.

        With ``d = 0`` the model is monotone decreasing in M and the
        answer is ``max_clusters``; with ``d > 0`` the interior optimum
        ``sqrt(c·N/d)`` is checked against its integer neighbours.
        """
        if max_clusters <= 0:
            raise ModelError(f"max_clusters must be positive, got {max_clusters}")
        if self.dispatch_coeff == 0:
            return max_clusters
        star = math.sqrt(self.compute_coeff * n / self.dispatch_coeff) \
            if self.compute_coeff * n > 0 else 1.0
        candidates = {1, max_clusters,
                      min(max_clusters, max(1, math.floor(star))),
                      min(max_clusters, max(1, math.ceil(star)))}
        return min(candidates, key=lambda m: (self.predict(m, n), m))

    def speedup(self, num_clusters: int, n: int) -> float:
        """Predicted speedup over the single-cluster offload."""
        return self.predict(1, n) / self.predict(num_clusters, n)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, measurements: typing.Sequence[typing.Tuple[int, int, float]],
            include_dispatch_term: bool = False,
            label: str = "fitted") -> "OffloadModel":
        """Least-squares fit of the model to ``(M, N, cycles)`` triples.

        ``include_dispatch_term`` adds the ``d·M`` column (fit this when
        modeling the baseline design; the extended design's dispatch is
        constant and the column would be collinear with noise).

        Raises
        ------
        ModelError
            If there are fewer measurements than free coefficients or
            the fit produces a (physically meaningless) negative
            coefficient.
        """
        measurements = list(measurements)
        num_params = 4 if include_dispatch_term else 3
        if len(measurements) < num_params:
            raise ModelError(
                f"need at least {num_params} measurements, "
                f"got {len(measurements)}")
        m_values = numpy.array([float(m) for m, _n, _t in measurements])
        n_values = numpy.array([float(n) for _m, n, _t in measurements])
        t_values = numpy.array([float(t) for _m, _n, t in measurements])
        if (m_values <= 0).any():
            raise ModelError("all M values must be positive")
        columns = [numpy.ones_like(m_values), n_values, n_values / m_values]
        if include_dispatch_term:
            columns.append(m_values)
        design = numpy.column_stack(columns)
        coeffs, _res, rank, _sv = numpy.linalg.lstsq(design, t_values,
                                                     rcond=None)
        if rank < num_params:
            raise ModelError(
                "measurement grid is degenerate (vary both M and N to "
                "identify all coefficients)")
        t0, mem_coeff, compute_coeff = coeffs[:3]
        dispatch_coeff = coeffs[3] if include_dispatch_term else 0.0
        # Clamp tiny negative values produced by noise; reject real ones.
        def clamp(value: float, name: str) -> float:
            if value < -1.0:
                raise ModelError(
                    f"fit produced a negative {name} coefficient "
                    f"({value:.3f}); the model family does not describe "
                    "these measurements")
            return max(0.0, float(value))

        return cls(
            t0=clamp(t0, "constant"),
            mem_coeff=clamp(mem_coeff, "memory"),
            compute_coeff=clamp(compute_coeff, "compute"),
            dispatch_coeff=clamp(dispatch_coeff, "dispatch"),
            label=label)

    def describe(self) -> str:
        """Render the model as an Eq.-1-style formula string."""
        parts = [f"{self.t0:.1f}"]
        if self.dispatch_coeff:
            parts.append(f"{self.dispatch_coeff:.2f}*M")
        parts.append(f"{self.mem_coeff:.4f}*N")
        parts.append(f"{self.compute_coeff:.4f}*N/M")
        body = " + ".join(parts)
        suffix = f"  [{self.label}]" if self.label else ""
        return f"t(M,N) = {body}{suffix}"


#: The paper's Eq. 1 with its inspected constants (extended design).
PAPER_DAXPY_MODEL = OffloadModel(
    t0=367.0, mem_coeff=0.25, compute_coeff=2.6 / 8, dispatch_coeff=0.0,
    label="paper Eq. 1")


@dataclasses.dataclass(frozen=True)
class TileClassModel:
    """Eq. 1 re-fitted for one tile class of a heterogeneous fabric.

    The model family is unchanged — a tile class alters the
    *coefficients* (its compute rates move ``c``, its dispatch/wake
    latencies move ``t0`` and ``d``), not the structure, so each class
    gets its own least-squares fit over a sweep of its own group.
    ``mape_percent`` is the in-sample Eq. 2 error of that fit, the same
    metric the paper reports for the homogeneous model.
    """

    tile_class: str
    model: OffloadModel
    num_points: int
    mape_percent: float

    def describe(self) -> str:
        return (f"{self.tile_class}: {self.model.describe()}  "
                f"(MAPE {self.mape_percent:.2f} % over "
                f"{self.num_points} points)")


def fit_class_models(
    measurements_by_class: typing.Mapping[
        str, typing.Sequence[typing.Tuple[int, int, float]]],
    include_dispatch_term: bool = False,
) -> typing.Dict[str, TileClassModel]:
    """Fit one :class:`OffloadModel` per tile class.

    ``measurements_by_class`` maps a tile class name to its ``(M, N,
    cycles)`` triples (one per-group sweep each, e.g. via
    :meth:`~repro.core.sweep.SweepResult.triples`).  Raises
    :class:`~repro.errors.ModelError` naming the class whose
    measurements cannot be fitted.
    """
    fitted: typing.Dict[str, TileClassModel] = {}
    for tile_class, triples in measurements_by_class.items():
        triples = list(triples)
        try:
            model = OffloadModel.fit(
                triples, include_dispatch_term=include_dispatch_term,
                label=f"fitted[{tile_class}]")
        except ModelError as exc:
            raise ModelError(
                f"tile class {tile_class!r}: {exc}") from exc
        actual = numpy.array([t for _m, _n, t in triples], dtype=float)
        predicted = numpy.array(
            [model.predict(m, n) for m, n, _t in triples])
        error = float(100.0 * numpy.mean(
            numpy.abs(actual - predicted) / actual))
        fitted[tile_class] = TileClassModel(
            tile_class=tile_class, model=model,
            num_points=len(triples), mape_percent=error)
    return fitted
