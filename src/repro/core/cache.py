"""Content-addressed cache of measured sweep points.

Simulating one grid point is pure: the cycle counts depend only on the
SoC configuration and the job coordinates (kernel, N, M, variant,
scalars, seed).  That makes sweep results safe to memoize under a
content hash of exactly those inputs — re-fitting the model after an
analysis-only change replays the grid from the cache instead of
re-simulating it.

The cache has two layers:

- an in-memory dict, always on, scoped to the
  :class:`SweepCache` instance;
- an optional on-disk layer (one small JSON file per point under
  ``directory``), shared between runs and between processes.

Keys are SHA-256 hashes; the config contributes via
:meth:`repro.soc.config.SoCConfig.digest`, so *any* microarchitectural
change invalidates every point measured under the old timing.
"""

from __future__ import annotations

import hashlib
import json
import os
import typing
import warnings

from repro import flags
from repro.core.sweep import SweepPoint
from repro.sim import IntegrityWarning
from repro.soc.config import SoCConfig

#: Re-exported from :mod:`repro.flags`, the single source of truth for
#: every ``REPRO_*`` gate; kept here for backwards compatibility.
CACHE_DIR_ENV = flags.CACHE_DIR_ENV

#: Bump when the on-disk record layout changes; stale files then miss.
_SCHEMA = 1


def default_cache_dir() -> str:
    """The CLI's on-disk cache location (override with ``REPRO_CACHE_DIR``)."""
    override = flags.cache_dir()
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweeps")


def point_key(config: SoCConfig, kernel_name: str, n: int, m: int,
              variant: str,
              scalars: typing.Optional[typing.Mapping[str, float]],
              seed: int) -> str:
    """Content address of one grid point's measurement."""
    scalar_part = ("" if not scalars else
                   ",".join(f"{k}={scalars[k]!r}" for k in sorted(scalars)))
    text = (f"schema={_SCHEMA};config={config.digest()};"
            f"kernel={kernel_name};n={n};m={m};variant={variant};"
            f"scalars={scalar_part};seed={seed}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SweepCache:
    """Memoizes :class:`~repro.core.sweep.SweepPoint` measurements.

    Parameters
    ----------
    directory:
        If given, points are also persisted as JSON files here (created
        on first write), so the cache survives the process and is
        shared across concurrent sweeps.  ``None`` keeps the cache
        purely in memory.
    """

    def __init__(self, directory: typing.Optional[str] = None) -> None:
        self.directory = directory
        self._memory: typing.Dict[str, SweepPoint] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> typing.Optional[SweepPoint]:
        """The cached point for ``key``, or None (counts hit/miss)."""
        point = self._memory.get(key)
        if point is None and self.directory is not None:
            point = self._read_disk(key)
            if point is not None:
                self._memory[key] = point
        if point is None:
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, key: str, point: SweepPoint) -> None:
        """Store a freshly measured point under its content address."""
        self._memory[key] = point
        if self.directory is not None:
            self._write_disk(key, point)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _read_disk(self, key: str) -> typing.Optional[SweepPoint]:
        path = self._path(key)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            return self._decode(record)
        except (KeyError, TypeError, AttributeError, ValueError):
            # A malformed record (torn by a crashed writer, hand-edited,
            # wrong type) is a cache miss, not a sweep failure — but say
            # so, because a silently re-measured point hides the
            # corruption forever.
            warnings.warn(
                f"SweepCache: ignoring malformed cache record {path}",
                IntegrityWarning, stacklevel=2)
            return None

    @staticmethod
    def _decode(record: typing.Any) -> typing.Optional[SweepPoint]:
        """Decode one on-disk record, validating shape and field types."""
        if record.get("schema") != _SCHEMA:
            return None
        point = SweepPoint(
            kernel_name=record["kernel_name"], n=record["n"],
            num_clusters=record["num_clusters"], variant=record["variant"],
            runtime_cycles=record["runtime_cycles"],
            phases=dict(record["phases"]))
        for field in ("n", "num_clusters", "runtime_cycles"):
            if not isinstance(getattr(point, field), int):
                raise TypeError(f"field {field!r} is not an int")
        for field in ("kernel_name", "variant"):
            if not isinstance(getattr(point, field), str):
                raise TypeError(f"field {field!r} is not a string")
        for name, cycles in point.phases.items():
            if not isinstance(name, str) or not isinstance(cycles, int):
                raise TypeError("phases must map str -> int")
        return point

    def _write_disk(self, key: str, point: SweepPoint) -> None:
        os.makedirs(self.directory, exist_ok=True)
        record = {
            "schema": _SCHEMA,
            "kernel_name": point.kernel_name,
            "n": point.n,
            "num_clusters": point.num_clusters,
            "variant": point.variant,
            "runtime_cycles": point.runtime_cycles,
            "phases": dict(point.phases),
        }
        # Write-then-rename so concurrent sweep workers never observe a
        # torn file; last writer wins, and all writers agree anyway.
        path = self._path(key)
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "w") as handle:
            json.dump(record, handle)
        os.replace(temp, path)
