"""Content-addressed cache of measured sweep points.

Simulating one grid point is pure: the cycle counts depend only on the
SoC configuration and the job coordinates (kernel, N, M, variant,
scalars, seed).  That makes sweep results safe to memoize under a
content hash of exactly those inputs — re-fitting the model after an
analysis-only change replays the grid from the cache instead of
re-simulating it.

The cache has two layers:

- an in-memory dict, always on, scoped to the
  :class:`SweepCache` instance;
- an optional on-disk layer (one small JSON file per record under
  ``directory``), shared between runs and between processes.  The
  disk layer can be bounded (``max_entries`` /
  ``REPRO_CACHE_MAX_ENTRIES``): past the bound the least recently
  *used* record files are evicted — reads refresh a file's mtime, so
  a hot working set survives churn.

Keys are SHA-256 hashes; the config contributes via
:meth:`repro.soc.config.SoCConfig.digest`, so *any* microarchitectural
change invalidates every point measured under the old timing.

Beyond measured points, the cache content-addresses the batch
planner's **calibration artifacts** (see :mod:`repro.core.batch`):
per-(variant, M) dispatch prefixes and fitted affine M-axis prefix
models, both keyed *without* N — a prefix is N-independent by
construction, which is what lets a warm store skip calibration for
grids over problem sizes it has never seen.  Calibration records carry
their own schema version (:data:`CALIBRATION_SCHEMA`), so the prefix
layout can evolve without invalidating measured points and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import os
import typing
import warnings

from repro import flags
from repro.core.sweep import SweepPoint
from repro.sim import IntegrityWarning
from repro.soc.config import SoCConfig

#: Re-exported from :mod:`repro.flags`, the single source of truth for
#: every ``REPRO_*`` gate; kept here for backwards compatibility.
CACHE_DIR_ENV = flags.CACHE_DIR_ENV

#: Bump when the on-disk record layout changes; stale files then miss.
_SCHEMA = 1

#: Schema version of calibration records (dispatch prefixes and affine
#: M-axis prefix models).  Part of the *key*, not just the payload, so
#: bumping it — e.g. because the prefix gained a field or the batch
#: algebra changed meaning — orphans old records instead of decoding
#: them wrongly.
CALIBRATION_SCHEMA = 1


def default_cache_dir() -> str:
    """The CLI's on-disk cache location (override with ``REPRO_CACHE_DIR``)."""
    override = flags.cache_dir()
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweeps")


def point_key(config: SoCConfig, kernel_name: str, n: int, m: int,
              variant: str,
              scalars: typing.Optional[typing.Mapping[str, float]],
              seed: int, tile_group: str = "") -> str:
    """Content address of one grid point's measurement.

    ``tile_group`` names the fabric group the point ran on (empty for
    the homogeneous whole-fabric default).  The config digest alone
    cannot distinguish groups *within* one config, so the group is its
    own key component — the same (N, M) measured on two groups of one
    heterogeneous fabric are different measurements.
    """
    scalar_part = ("" if not scalars else
                   ",".join(f"{k}={scalars[k]!r}" for k in sorted(scalars)))
    text = (f"schema={_SCHEMA};config={config.digest()};"
            f"kernel={kernel_name};n={n};m={m};variant={variant};"
            f"scalars={scalar_part};seed={seed};group={tile_group}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def calibration_key(kind: str, config: SoCConfig, kernel_name: str,
                    variant_name: str,
                    scalars: typing.Optional[typing.Mapping[str, float]],
                    seed: int,
                    m: typing.Optional[int] = None,
                    tile_group: str = "") -> str:
    """Content address of one calibration artifact.

    ``kind`` separates the namespaces (``"prefix"`` for one
    (variant, M) dispatch prefix, ``"mmodel"`` for a fitted affine
    M-axis model, which spans all M and passes ``m=None``).  There is
    deliberately no N component: prefixes are N-independent, which is
    the whole point of persisting them.  ``variant_name`` must be the
    *resolved* variant (never ``"auto"``), so explicit and
    feature-resolved requests share entries.  ``tile_group`` keys
    calibrations per fabric group for the same reason as in
    :func:`point_key` — a dispatch prefix measured on one group of a
    heterogeneous fabric says nothing about another group's tiles.
    """
    scalar_part = ("" if not scalars else
                   ",".join(f"{k}={scalars[k]!r}" for k in sorted(scalars)))
    text = (f"calibration={CALIBRATION_SCHEMA};kind={kind};"
            f"config={config.digest()};kernel={kernel_name};"
            f"variant={variant_name};scalars={scalar_part};seed={seed};"
            f"m={m};group={tile_group}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SweepCache:
    """Memoizes :class:`~repro.core.sweep.SweepPoint` measurements.

    Parameters
    ----------
    directory:
        If given, points are also persisted as JSON files here (created
        on first write), so the cache survives the process and is
        shared across concurrent sweeps.  ``None`` keeps the cache
        purely in memory.
    max_entries:
        Bound on the number of record files the disk layer keeps;
        past it, the least recently used files are evicted (counted in
        :attr:`evictions`).  ``None`` (the default) defers to
        ``REPRO_CACHE_MAX_ENTRIES``; unset there too means unbounded.
    """

    def __init__(self, directory: typing.Optional[str] = None,
                 max_entries: typing.Optional[int] = None) -> None:
        self.directory = directory
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = (max_entries if max_entries is not None
                            else flags.cache_max_entries())
        self._memory: typing.Dict[str, SweepPoint] = {}
        self._records: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
        self.hits = 0
        self.misses = 0
        #: Disk-layer record files removed by the LRU bound, lifetime
        #: of this instance (the ``--stats`` eviction figure).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, key: str) -> typing.Optional[SweepPoint]:
        """The cached point for ``key``, or None (counts hit/miss)."""
        point = self._memory.get(key)
        if point is None and self.directory is not None:
            point = self._read_disk(key)
            if point is not None:
                self._memory[key] = point
        if point is None:
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, key: str, point: SweepPoint) -> None:
        """Store a freshly measured point under its content address."""
        self._memory[key] = point
        if self.directory is not None:
            self._write_disk(key, point)

    # ------------------------------------------------------------------
    # Calibration records (prefixes and fitted M-models)
    # ------------------------------------------------------------------
    def get_record(self, key: str,
                   kind: str) -> typing.Optional[
                       typing.Dict[str, typing.Any]]:
        """The calibration payload stored under ``key``, or ``None``.

        ``kind`` must match what the record was stored with — a prefix
        key can never return an M-model payload even if a file were
        hand-renamed into place.  Payload *field* validation is the
        caller's job (the batch module knows the expected shapes); this
        layer only guarantees a schema-matching ``kind``/``payload``
        envelope.
        """
        record = self._records.get(key)
        if record is None and self.directory is not None:
            record = self._read_disk_record(key)
            if record is not None:
                self._records[key] = record
        if record is None or record.get("kind") != kind:
            return None
        payload = record.get("payload")
        return dict(payload) if isinstance(payload, dict) else None

    def put_record(self, key: str, kind: str,
                   payload: typing.Mapping[str, typing.Any]) -> None:
        """Persist one calibration artifact under its content address."""
        record = {"calibration_schema": CALIBRATION_SCHEMA, "kind": kind,
                  "payload": dict(payload)}
        self._records[key] = record
        if self.directory is not None:
            self._write_disk_json(key, record)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _load_json(self, key: str) -> typing.Optional[typing.Any]:
        """Read and parse one record file; refreshes its LRU recency."""
        path = self._path(key)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            # A read is a *use*: bump the mtime so the LRU bound evicts
            # cold records, not hot ones.  Best effort — a read-only
            # cache directory still serves hits.
            os.utime(path)
        except OSError:
            pass
        return record

    def _read_disk(self, key: str) -> typing.Optional[SweepPoint]:
        record = self._load_json(key)
        if record is None:
            return None
        try:
            return self._decode(record)
        except (KeyError, TypeError, AttributeError, ValueError):
            # A malformed record (torn by a crashed writer, hand-edited,
            # wrong type) is a cache miss, not a sweep failure — but say
            # so, because a silently re-measured point hides the
            # corruption forever.
            warnings.warn(
                "SweepCache: ignoring malformed cache record "
                f"{self._path(key)}",
                IntegrityWarning, stacklevel=2)
            return None

    def _read_disk_record(self, key: str) -> typing.Optional[
            typing.Dict[str, typing.Any]]:
        record = self._load_json(key)
        if record is None:
            return None
        if (isinstance(record, dict)
                and record.get("calibration_schema") == CALIBRATION_SCHEMA
                and isinstance(record.get("kind"), str)
                and isinstance(record.get("payload"), dict)):
            return record
        # Unlike a torn point record, a schema-mismatched calibration
        # record is *expected* after a schema bump (the key changes
        # too, so normally unreachable) — but a malformed envelope is
        # the same corruption story as above.
        warnings.warn(
            "SweepCache: ignoring malformed calibration record "
            f"{self._path(key)}",
            IntegrityWarning, stacklevel=2)
        return None

    @staticmethod
    def _decode(record: typing.Any) -> typing.Optional[SweepPoint]:
        """Decode one on-disk record, validating shape and field types."""
        if record.get("schema") != _SCHEMA:
            return None
        point = SweepPoint(
            kernel_name=record["kernel_name"], n=record["n"],
            num_clusters=record["num_clusters"], variant=record["variant"],
            runtime_cycles=record["runtime_cycles"],
            phases=dict(record["phases"]))
        for field in ("n", "num_clusters", "runtime_cycles"):
            if not isinstance(getattr(point, field), int):
                raise TypeError(f"field {field!r} is not an int")
        for field in ("kernel_name", "variant"):
            if not isinstance(getattr(point, field), str):
                raise TypeError(f"field {field!r} is not a string")
        for name, cycles in point.phases.items():
            if not isinstance(name, str) or not isinstance(cycles, int):
                raise TypeError("phases must map str -> int")
        return point

    def _write_disk(self, key: str, point: SweepPoint) -> None:
        record = {
            "schema": _SCHEMA,
            "kernel_name": point.kernel_name,
            "n": point.n,
            "num_clusters": point.num_clusters,
            "variant": point.variant,
            "runtime_cycles": point.runtime_cycles,
            "phases": dict(point.phases),
        }
        self._write_disk_json(key, record)

    def _write_disk_json(self, key: str, record: typing.Any) -> None:
        os.makedirs(self.directory, exist_ok=True)
        # Write-then-rename so concurrent sweep workers never observe a
        # torn file; last writer wins, and all writers agree anyway.
        path = self._path(key)
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "w") as handle:
            json.dump(record, handle)
        os.replace(temp, path)
        self._enforce_bound()

    def _enforce_bound(self) -> None:
        """Evict least-recently-used record files past ``max_entries``.

        Recency is file mtime: reads refresh it (:meth:`_load_json`),
        writes set it.  Races with concurrent sweeps are benign — an
        eviction of a record another process just re-read costs that
        process one re-measurement, never a wrong result — and every
        per-file ``OSError`` is swallowed for the same reason.
        """
        if self.max_entries is None:
            return
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        entries = [name for name in names if name.endswith(".json")]
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        stamped = []
        for name in entries:
            path = os.path.join(self.directory, name)
            try:
                stamped.append((os.path.getmtime(path), name))
            except OSError:
                continue
        stamped.sort()
        for _mtime, name in stamped[:excess]:
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:
                continue
            self.evictions += 1
