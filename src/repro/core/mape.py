"""Model validation: mean absolute percentage error (the paper's Eq. 2).

For each problem size N the paper reports::

    MAPE(N) = (100 / |M-set|) · Σ_M |t(M,N) − t̂(M,N)| / t(M,N)

over the tested cluster counts, and finds it consistently below 1 %.
"""

from __future__ import annotations

import typing

import numpy

from repro.core.model import OffloadModel
from repro.errors import ModelError

#: The paper's validation grids.
PAPER_N_VALUES = (256, 512, 768, 1024)
PAPER_M_VALUES = (1, 2, 4, 8, 16, 32)


def mape(actual: typing.Sequence[float],
         predicted: typing.Sequence[float]) -> float:
    """Mean absolute percentage error, in percent."""
    actual = numpy.asarray(actual, dtype=float)
    predicted = numpy.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ModelError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ModelError("MAPE of an empty measurement set")
    if (actual <= 0).any():
        raise ModelError("MAPE requires positive actual values")
    return float(100.0 * numpy.mean(numpy.abs(actual - predicted) / actual))


def max_ape(actual: typing.Sequence[float],
            predicted: typing.Sequence[float]) -> float:
    """Worst-case absolute percentage error, in percent."""
    actual = numpy.asarray(actual, dtype=float)
    predicted = numpy.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ModelError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ModelError("max APE of an empty measurement set")
    if (actual <= 0).any():
        raise ModelError("max APE requires positive actual values")
    return float(100.0 * numpy.max(numpy.abs(actual - predicted) / actual))


def mape_table(model: OffloadModel,
               runtimes: typing.Mapping[typing.Tuple[int, int], float]
               ) -> typing.Dict[int, float]:
    """Per-N MAPE of a model against measured runtimes (Eq. 2).

    Parameters
    ----------
    model:
        The analytic model under validation.
    runtimes:
        ``{(M, N): measured_cycles}`` — e.g. from
        :meth:`repro.core.sweep.SweepResult.runtime_grid`.

    Returns
    -------
    dict
        ``{N: MAPE_percent}`` with N sorted ascending.
    """
    if not runtimes:
        raise ModelError("no measurements to validate against")
    by_n: typing.Dict[int, typing.List[typing.Tuple[float, float]]] = {}
    for (m, n), measured in runtimes.items():
        by_n.setdefault(n, []).append((measured, model.predict(m, n)))
    return {
        n: mape([a for a, _p in pairs], [p for _a, p in pairs])
        for n, pairs in sorted(by_n.items())
    }
