"""Parallel, cached execution of measurement sweeps.

A sweep is embarrassingly parallel: every grid point runs on a
boot-state :class:`~repro.soc.manticore.ManticoreSystem`, so points
share no state and any execution order yields the same measurements.
:class:`SweepExecutor` exploits that in three ways:

- **fan-out** — grid points are packed into contiguous chunks and
  distributed over a :class:`concurrent.futures.ProcessPoolExecutor`
  (simulation is pure Python, so threads would serialize on the GIL);
- **memoization** — an optional :class:`~repro.core.cache.SweepCache`
  is consulted first, keyed on the content address of each point
  (config digest, kernel, N, M, variant, scalars, seed), so repeated
  sweeps skip simulation entirely;
- **instance reuse** — each process leases systems from a local
  :class:`~repro.soc.pool.SystemPool`, so successive same-config
  points reuse one constructed SoC via the bit-identical
  :meth:`~repro.soc.manticore.ManticoreSystem.reset` instead of paying
  construction per point (disable with ``reuse=False`` or the
  ``REPRO_FRESH_SYSTEMS`` environment variable).

Determinism guarantee
---------------------
Results are reassembled **by grid coordinate** (N-major, then M, the
serial iteration order), never by completion order, and each point's
simulation is bit-reproducible on a fresh SoC.  A parallel sweep
therefore returns a :class:`~repro.core.sweep.SweepResult` equal to the
serial one, point for point — including the order in which a
``progress`` callback observes them.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
import typing

from repro import flags
from repro.core.batch import BatchPlanner
from repro.core.cache import SweepCache, point_key
from repro.core.offload import offload
from repro.core.sweep import SweepPoint, SweepResult
from repro.errors import OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.pool import SystemPool


def resolve_jobs(jobs: int) -> int:
    """Worker-count policy: ``1`` = in-process serial, ``0`` = all cores."""
    if jobs < 0:
        raise OffloadError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: Process-local system pool: the main process and each sweep worker
#: keep one, so a chunk of same-config points constructs a single SoC
#: (ProcessPoolExecutor workers never share module state).
_SYSTEM_POOL = SystemPool()

#: Opt-in log of per-run statistics summaries (see
#: :func:`collect_run_stats`); experiments build executors internally,
#: so the CLI's ``--stats`` flag observes them through this hook
#: instead of threading a parameter through every experiment signature.
_RUN_STATS_LOG: typing.List[typing.Dict[str, typing.Any]] = []
_LOG_RUN_STATS = False


def collect_run_stats(enabled: bool = True) -> None:
    """Start (or stop) logging every ``SweepExecutor.run`` summary."""
    global _LOG_RUN_STATS
    _LOG_RUN_STATS = enabled
    _RUN_STATS_LOG.clear()


def drain_run_stats() -> typing.List[typing.Dict[str, typing.Any]]:
    """Return and clear the collected run summaries."""
    drained = list(_RUN_STATS_LOG)
    _RUN_STATS_LOG.clear()
    return drained


def measure_point(config: SoCConfig, kernel_name: str, n: int, m: int,
                  variant: str,
                  scalars: typing.Optional[typing.Mapping[str, float]],
                  seed: int, verify: bool, reuse: bool = True,
                  tile_group: typing.Optional[str] = None) -> SweepPoint:
    """Simulate one grid point on a boot-state SoC and summarize it.

    With ``reuse`` (the default) the SoC is leased from the process's
    :class:`~repro.soc.pool.SystemPool` — measurements are bit-identical
    to a fresh construction (property-tested), just cheaper.  Pass
    ``reuse=False`` or set ``REPRO_FRESH_SYSTEMS`` to force fresh
    construction per point.  ``tile_group`` targets one fabric group of
    a heterogeneous config (see :func:`repro.core.offload.offload`).
    """
    if reuse:
        with _SYSTEM_POOL.lease(config) as system:
            result = offload(system, kernel_name, n, m, scalars=scalars,
                             variant=variant, seed=seed, verify=verify,
                             tile_group=tile_group)
    else:
        system = ManticoreSystem(config)
        result = offload(system, kernel_name, n, m, scalars=scalars,
                         variant=variant, seed=seed, verify=verify,
                         tile_group=tile_group)
    return SweepPoint(
        kernel_name=kernel_name, n=n, num_clusters=m,
        variant=result.variant, runtime_cycles=result.runtime_cycles,
        phases=result.trace.phase_summary())


def _measure_chunk(config: SoCConfig, kernel_name: str,
                   coords: typing.Sequence[typing.Tuple[int, int]],
                   variant: str,
                   scalars: typing.Optional[typing.Mapping[str, float]],
                   seed: int, verify: bool,
                   reuse: bool = True,
                   tile_group: typing.Optional[str] = None
                   ) -> typing.List[SweepPoint]:
    """Worker-process entry point: simulate a chunk of (N, M) coords."""
    return [measure_point(config, kernel_name, n, m, variant, scalars,
                          seed, verify, reuse=reuse, tile_group=tile_group)
            for n, m in coords]


class SweepExecutor:
    """Runs (N, M) grids serially or fanned out over worker processes.

    Parameters
    ----------
    jobs:
        ``1`` (default) simulates in-process, point by point — the
        exact serial path :func:`repro.core.sweep.sweep` always had.
        ``0`` uses every core; ``k > 1`` uses ``k`` worker processes.
    cache:
        Optional :class:`SweepCache`.  Cached points are never
        re-simulated; fresh points are stored back.
    chunk_size:
        Grid points per worker task.  Defaults to splitting the
        outstanding points into about four chunks per worker, which
        amortizes task dispatch without starving the pool near the end
        of an unevenly sized grid.

    Counters (reset at the start of every :meth:`run`):

    - ``cache_hits`` / ``cache_misses`` — cache outcomes this run;
    - ``simulated_points`` — simulations actually executed this run
      (``0`` on a fully cached sweep), including the
      :class:`~repro.core.batch.BatchPlanner`'s calibration runs;
    - ``planned_points`` — points timed by the planner's closed form
      instead of the event engine;
    - ``batch_fallback_points`` — points the planner examined but
      handed back to the event engine;
    - ``prefixes_calibrated`` / ``prefixes_predicted`` — M groups whose
      dispatch prefix came from a calibration simulation vs. from the
      affine M-model or the calibration store (no simulation);
    - ``mmodels_fitted`` / ``holdout_fallbacks`` — affine M-axis models
      fitted-and-holdout-verified vs. fit attempts abandoned;
    - ``calibration_store_hits`` / ``calibration_store_misses`` —
      persistent calibration-store outcomes (prefixes and M-models).

    :meth:`run` also assembles :attr:`last_run_stats`, a flat summary
    (throughput, cache/pool/planner outcomes, interpreter resume
    counts) that the CLI's ``--stats`` flag prints after a sweep.
    """

    def __init__(self, jobs: int = 1,
                 cache: typing.Optional[SweepCache] = None,
                 chunk_size: typing.Optional[int] = None,
                 reuse: bool = True) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise OffloadError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.chunk_size = chunk_size
        #: Lease SoC instances from the per-process SystemPool instead
        #: of constructing one per point (bit-identical, faster).
        self.reuse = reuse
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulated_points = 0
        self.planned_points = 0
        self.batch_fallback_points = 0
        self.prefixes_calibrated = 0
        self.prefixes_predicted = 0
        self.mmodels_fitted = 0
        self.holdout_fallbacks = 0
        self.calibration_store_hits = 0
        self.calibration_store_misses = 0
        #: Summary of the most recent :meth:`run` (see
        #: :meth:`_collect_stats`); ``None`` before the first run.
        self.last_run_stats: typing.Optional[
            typing.Dict[str, typing.Any]] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, config: SoCConfig, kernel_name: str,
            n_values: typing.Sequence[int], m_values: typing.Sequence[int],
            variant: str = "auto",
            scalars: typing.Optional[typing.Mapping[str, float]] = None,
            seed: int = 0, verify: bool = True,
            progress: typing.Optional[
                typing.Callable[[SweepPoint], None]] = None,
            tile_group: typing.Optional[str] = None) -> SweepResult:
        """Measure the grid; same contract as :func:`repro.core.sweep.sweep`."""
        if not n_values or not m_values:
            raise OffloadError("sweep needs at least one N and one M value")
        if tile_group is not None:
            group = config.tile_group(tile_group)
            bad = [m for m in m_values if m > group.count]
            if bad:
                raise OffloadError(
                    f"m_values {bad} exceed tile group {tile_group!r}, "
                    f"which has {group.count} {group.tile.class_name!r} "
                    "tiles")
            tile_class = group.tile.class_name
        else:
            bad = [m for m in m_values if m > config.num_clusters]
            if bad:
                raise OffloadError(
                    f"m_values {bad} exceed the fabric size "
                    f"{config.num_clusters}")
            classes = {g.tile.class_name for g in config.groups()}
            tile_class = classes.pop() if len(classes) == 1 else "mixed"
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulated_points = 0
        self.planned_points = 0
        self.batch_fallback_points = 0
        self.prefixes_calibrated = 0
        self.prefixes_predicted = 0
        self.mmodels_fitted = 0
        self.holdout_fallbacks = 0
        self.calibration_store_hits = 0
        self.calibration_store_misses = 0
        started = time.perf_counter()
        pool_before = (_SYSTEM_POOL.hits, _SYSTEM_POOL.builds,
                       _SYSTEM_POOL.restores, _SYSTEM_POOL.dropped,
                       _SYSTEM_POOL.resume_count())
        evictions_before = (self.cache.evictions
                            if self.cache is not None else 0)

        # N-major grid order: the serial iteration order, and the order
        # of the returned points regardless of execution interleaving.
        coords = [(n, m) for n in n_values for m in m_values]
        slots: typing.List[typing.Optional[SweepPoint]] = [None] * len(coords)
        pending: typing.List[typing.Tuple[int, int, int]] = []  # (slot, n, m)
        keys: typing.Dict[int, str] = {}
        for index, (n, m) in enumerate(coords):
            if self.cache is not None:
                key = point_key(config, kernel_name, n, m, variant,
                                scalars, seed, tile_group=tile_group or "")
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    slots[index] = cached
                    continue
                self.cache_misses += 1
            pending.append((index, n, m))

        # Stream ``progress`` over the longest completed prefix, so the
        # callback sees points in grid order even when execution is
        # out-of-order — identical to what the serial path reports.
        emitted = [0]

        def emit_ready() -> None:
            if progress is None:
                return
            while emitted[0] < len(slots) and slots[emitted[0]] is not None:
                progress(slots[emitted[0]])
                emitted[0] += 1

        emit_ready()
        if pending:
            # The batch planner fills every slot it can prove from
            # calibration runs; only the leftovers pay the event engine.
            # The *original* pending list still drives the cache
            # put-back below, so planned points are cached exactly like
            # simulated ones.
            remaining: typing.Sequence[typing.Tuple[int, int, int]]
            if flags.naive_batch():
                remaining = pending
            else:
                planner = BatchPlanner(_SYSTEM_POOL, reuse=self.reuse,
                                       cache=self.cache)
                remaining = planner.consume(
                    config, kernel_name, variant, scalars, seed, verify,
                    pending, slots, tile_group=tile_group)
                self.simulated_points += planner.calibration_points
                self.planned_points = planner.planned_points
                self.batch_fallback_points = planner.fallback_points
                self.prefixes_calibrated = planner.prefixes_calibrated
                self.prefixes_predicted = planner.prefixes_predicted
                self.mmodels_fitted = planner.mmodels_fitted
                self.holdout_fallbacks = planner.holdout_fallbacks
                self.calibration_store_hits = planner.store_hits
                self.calibration_store_misses = planner.store_misses
                emit_ready()
            if remaining:
                if self.jobs == 1 or len(remaining) == 1:
                    self._run_serial(remaining, slots, config, kernel_name,
                                     variant, scalars, seed, verify,
                                     emit_ready, tile_group)
                else:
                    self._run_parallel(remaining, slots, config, kernel_name,
                                       variant, scalars, seed, verify,
                                       emit_ready, tile_group)
            if self.cache is not None:
                for index, _n, _m in pending:
                    self.cache.put(keys[index], slots[index])

        evictions = ((self.cache.evictions - evictions_before)
                     if self.cache is not None else 0)
        self.last_run_stats = self._collect_stats(
            len(coords), time.perf_counter() - started, pool_before,
            evictions, tile_group, tile_class)
        if _LOG_RUN_STATS:
            _RUN_STATS_LOG.append(self.last_run_stats)
        points = typing.cast(typing.List[SweepPoint], slots)
        return SweepResult(points=tuple(points))

    def _collect_stats(self, total_points: int, elapsed: float,
                       pool_before: typing.Tuple[int, int, int, int, int],
                       cache_evictions: int,
                       tile_group: typing.Optional[str] = None,
                       tile_class: str = "snitch"
                       ) -> typing.Dict[str, typing.Any]:
        """Summarize one :meth:`run` for the ``--stats`` reporting path.

        Pool and resume figures are deltas over the in-process
        :data:`_SYSTEM_POOL`, so they cover serial runs fully and only
        the parent's share of a multi-process fan-out (worker pools
        live in their own processes).
        """
        hits0, builds0, restores0, dropped0, resumes0 = pool_before
        predictable = self.planned_points + self.batch_fallback_points
        return {
            "points": total_points,
            "tile_group": tile_group,
            "tile_class": tile_class,
            "elapsed_seconds": elapsed,
            "points_per_second": (total_points / elapsed if elapsed > 0
                                  else float("inf")),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated_points": self.simulated_points,
            "planned_points": self.planned_points,
            "batch_fallback_points": self.batch_fallback_points,
            "batch_plan_hit_rate": (self.planned_points / predictable
                                    if predictable else 0.0),
            "prefixes_calibrated": self.prefixes_calibrated,
            "prefixes_predicted": self.prefixes_predicted,
            "mmodels_fitted": self.mmodels_fitted,
            "holdout_fallbacks": self.holdout_fallbacks,
            "calibration_store_hits": self.calibration_store_hits,
            "calibration_store_misses": self.calibration_store_misses,
            "cache_evictions": cache_evictions,
            "pool_hits": _SYSTEM_POOL.hits - hits0,
            "pool_builds": _SYSTEM_POOL.builds - builds0,
            "pool_restores": _SYSTEM_POOL.restores - restores0,
            "pool_dropped": _SYSTEM_POOL.dropped - dropped0,
            "sim_resumes": _SYSTEM_POOL.resume_count() - resumes0,
        }

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(self, pending, slots, config, kernel_name, variant,
                    scalars, seed, verify, emit_ready,
                    tile_group=None) -> None:
        for index, n, m in pending:
            slots[index] = measure_point(config, kernel_name, n, m,
                                         variant, scalars, seed, verify,
                                         reuse=self.reuse,
                                         tile_group=tile_group)
            self.simulated_points += 1
            emit_ready()

    def _run_parallel(self, pending, slots, config, kernel_name, variant,
                      scalars, seed, verify, emit_ready,
                      tile_group=None) -> None:
        workers = min(self.jobs, len(pending))
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, -(-len(pending) // (workers * 4)))
        chunks = [pending[i:i + chunk]
                  for i in range(0, len(pending), chunk)]
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = {
                pool.submit(_measure_chunk, config, kernel_name,
                            [(n, m) for _i, n, m in part], variant,
                            scalars, seed, verify, self.reuse,
                            tile_group): part
                for part in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                part = futures[future]
                for (index, _n, _m), point in zip(part, future.result()):
                    slots[index] = point
                    self.simulated_points += 1
                emit_ready()
