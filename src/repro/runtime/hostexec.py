"""Host-side kernel execution: the "don't offload" alternative.

The offload decision the paper motivates is only meaningful against a
measured alternative: the host core running the kernel itself.  This
module builds the host program for that path — a timed single-core loop
over the job using each kernel's calibrated host rate — so experiments
can *measure* both sides of the decision on the same simulated system
instead of assuming a host model.

Functional behaviour is identical to an offload (same outputs, checked
against the same reference); only the timing differs: no dispatch, no
DMA staging, no completion synchronization — just the host's slower,
cache-warm loop.
"""

from __future__ import annotations

import typing

from repro.kernels.base import Kernel, WorkSlice
from repro.soc.manticore import ManticoreSystem


def host_kernel_program(system: ManticoreSystem, kernel: Kernel, n: int,
                        scalars: typing.Mapping[str, float],
                        input_addrs: typing.Mapping[str, int],
                        output_addrs: typing.Mapping[str, int],
                        result: typing.Dict[str, int]) -> typing.Generator:
    """The host program executing one kernel locally.

    ``result`` receives ``start_cycle`` and ``end_cycle``; outputs are
    written to main memory like an offload would, so callers read them
    back the same way.
    """
    host = system.host
    memory = system.memory

    def program() -> typing.Generator:
        result["start_cycle"] = system.sim.now
        system.trace.record("host", "host_exec_start", kernel.name)
        yield from host.execute(kernel.host_compute_cycles(n))
        inputs = {
            name: memory.read_f64(addr, kernel.input_length(name, n))
            for name, addr in input_addrs.items()
        }
        # The host runs the whole job as one slice; in-place outputs
        # start from their aliased input's contents.
        work = WorkSlice(index=0, lo=0, hi=n)
        for name in kernel.output_names:
            alias = kernel.output_alias(name)
            length = kernel.output_length(name, n, 1)
            if alias is not None:
                memory.write_f64(output_addrs[name], inputs[alias][:length])
        for name, (start, values) in kernel.compute_slice(
                n, scalars, inputs, work).items():
            memory.write_f64(output_addrs[name] + 8 * start, values)
        system.trace.record("host", "host_exec_end", kernel.name)
        result["end_cycle"] = system.sim.now

    return program()
