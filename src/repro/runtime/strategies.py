"""Dispatch and completion strategies, and the variant registry.

The paper's contribution is a co-designed offload *protocol*: how the
host hands descriptors to clusters (**dispatch**) and how it learns
they finished (**completion**).  This module expresses each side as a
first-class strategy object and composes them into named *variants*
through one registry — so a new protocol variant (e.g. from the journal
extension of the paper) is one ``register_variant`` call, not parallel
edits to the runtime factory, the SoC configuration and the protocol
builder.

Strategies are stateless and shared: every method takes the system it
operates on, so one instance serves any number of runtimes.

========================= ======================= =====================
variant                   dispatch                completion
========================= ======================= =====================
``baseline``              sequential stores       AMO flag + host poll
``multicast_only``        one multicast store     AMO flag + host poll
``hw_sync_only``          sequential stores       credit counter + WFI
``extended``              one multicast store     credit counter + WFI
========================= ======================= =====================

The registry is the single source of truth for variant names:
:func:`repro.runtime.api.make_runtime`,
:meth:`repro.soc.config.SoCConfig.for_variant` and the backwards-compat
``VARIANT_FEATURES`` mapping all resolve through it.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro import abi, flags
from repro.errors import MemoryError_, OffloadError
from repro.mem.map import MmioDevice

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.soc.manticore import ManticoreSystem


# ----------------------------------------------------------------------
# Dispatch strategies
# ----------------------------------------------------------------------
class DispatchStrategy(abc.ABC):
    """How the host rings the doorbells of a job's cluster range."""

    #: Registry key and human-readable label.
    key: str = ""
    #: Hardware feature the strategy needs (``SoCConfig.multicast``).
    requires_multicast: bool = False
    #: Smallest offload width M from which this strategy's doorbell
    #: schedule — and therefore the whole N-independent dispatch prefix
    #: — is an *affine* function of M, or ``None`` when no such claim
    #: is made.  The batch planner's M-axis prediction layer
    #: (:class:`repro.core.batch.MPrefixModel`) only fits prefixes for
    #: strategies that declare a domain here, and only for M inside it;
    #: the claim is additionally verified residual-exactly against a
    #: held-out M before any prefix is synthesized.  A subclass may
    #: inherit the declaration, but the planner's exact-strategy-type
    #: provability check refuses subclasses wholesale, so an overridden
    #: :meth:`dispatch` can never smuggle non-affine timing in under an
    #: inherited claim.
    affine_dispatch_min_m: typing.ClassVar[typing.Optional[int]] = None

    @abc.abstractmethod
    def dispatch(self, system: "ManticoreSystem", desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        """Host program fragment delivering ``desc_addr`` doorbells."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.key!r}>"


class SequentialStoreDispatch(DispatchStrategy):
    """The baseline's doorbell loop: one plain store per cluster.

    Each iteration pays an address computation plus a posted store, so
    dispatch cost is linear in the offload width M.
    """

    key = "sequential_store"
    requires_multicast = False
    #: One identical loop iteration per cluster: the prefix is affine
    #: in M from M = 1 (the paper's Eq. 1 models exactly this term).
    affine_dispatch_min_m = 1

    def dispatch(self, system: "ManticoreSystem", desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        host = system.host
        config = system.config
        first = desc.first_cluster
        for cluster_id in range(first, first + desc.num_clusters):
            yield from host.execute(config.host_addr_calc_cycles)
            yield from host.store_posted(
                system.mailbox_addr(cluster_id), desc_addr)


class MulticastDispatch(DispatchStrategy):
    """The extension's dispatch: one multicast store covers the range.

    A multicast of one would only pay the replication-tree latency, so
    single-cluster jobs dispatch with a plain store.
    """

    key = "multicast"
    requires_multicast = True
    #: One multicast store regardless of M — affine (constant) from
    #: M = 2; M = 1 takes the plain-store special case below, which
    #: sits off that line, so the domain starts at 2.
    affine_dispatch_min_m = 2

    def dispatch(self, system: "ManticoreSystem", desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        host = system.host
        first = desc.first_cluster
        if desc.num_clusters > 1:
            addrs = system.mailbox_addrs(desc.num_clusters, first)
            yield from host.multicast_store(addrs, desc_addr)
        else:
            yield from host.store_posted(system.mailbox_addr(first),
                                         desc_addr)


# ----------------------------------------------------------------------
# Completion strategies
# ----------------------------------------------------------------------
class CompletionStrategy(abc.ABC):
    """How the host learns that a launch's clusters all finished.

    A launch is a sequence of ``(descriptor, flag_addr)`` pairs — one
    for a plain offload, several for a space-shared concurrent launch.
    ``flag_addr`` entries are ``None`` for strategies that do not use
    per-job completion flags.
    """

    key: str = ""
    #: Hardware feature the strategy needs (``SoCConfig.hw_sync``).
    requires_hw_sync: bool = False
    #: The descriptor ``sync_mode`` field clusters act on.
    sync_mode: int = abi.SYNC_MODE_AMO

    #: Whether each job needs a per-job completion flag allocated (and
    #: passed back as the descriptor's ``completion_addr``).
    uses_flag: bool = True

    #: Whether this strategy's :meth:`arm` fragment costs the same
    #: host cycles for every offload width M (a single-job launch arms
    #: one flag or one threshold — the store's *value* changes with M,
    #: its timing does not).  Required, together with the dispatch
    #: side's :attr:`DispatchStrategy.affine_dispatch_min_m`, before
    #: the batch planner may model the dispatch prefix as affine in M.
    prefix_affine_in_m: typing.ClassVar[bool] = False

    def completion_addr(self, system: "ManticoreSystem",
                        flag_addr: typing.Optional[int]) -> int:
        """The address clusters signal completion to."""
        if flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        return flag_addr

    @abc.abstractmethod
    def arm(self, system: "ManticoreSystem",
            jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor,
                                               typing.Optional[int]]]
            ) -> typing.Generator:
        """Host fragment arming completion before dispatch."""

    @abc.abstractmethod
    def wait(self, system: "ManticoreSystem",
             jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor,
                                                typing.Optional[int]]]
             ) -> typing.Generator:
        """Host fragment blocking until every job completed."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.key!r}>"


class AmoPollCompletion(CompletionStrategy):
    """Baseline completion: per-job AMO flag, host polls each in turn.

    The wait uses the cycle-exact watchpoint fast path (see
    :meth:`_poll_wait`) unless ``REPRO_NAIVE_POLL`` forces the
    reference loop.
    """

    key = "amo_poll"
    requires_hw_sync = False
    sync_mode = abi.SYNC_MODE_AMO
    uses_flag = True
    #: Arming is one posted flag-reset store per job, independent of M.
    prefix_affine_in_m = True

    def arm(self, system, jobs):
        host = system.host
        for _desc, flag_addr in jobs:
            yield from host.store_posted(flag_addr, 0)

    def wait(self, system, jobs):
        for desc, flag_addr in jobs:
            yield from self._poll_wait(system, flag_addr, desc.num_clusters)

    def _poll_wait(self, system: "ManticoreSystem", flag_addr: int,
                   threshold: int) -> typing.Generator:
        """Poll the completion flag until it reaches ``threshold``.

        The reference semantics are the baseline's software loop::

            while True:
                value = yield from host.load(flag_addr)   # round trip
                if value >= threshold: break              # compare+branch
                yield from host.execute(poll_gap)         # loop overhead

        which costs the simulator one process wake-up per iteration —
        O(runtime / poll period) events, the dominant event count for
        long offloads.  The fast path below is cycle-exact and charges
        identical statistics while collapsing the wait into O(1) events:
        it simulates the *first* load for real, then parks on a
        watchpoint at ``flag_addr``.  When the threshold-crossing write
        lands (cycle ``t_w``), the iteration schedule is reconstructed
        analytically.  With the host port otherwise idle, iteration
        ``k``'s load reads the flag at ``u_k = u_0 + k * period`` where
        ``period = load_occupancy + request_latency + response_latency +
        poll_gap``.  A read in the same cycle as the write still
        observes the *old* value — with ``request_latency > 0`` the read
        resumes via the time heap, which the kernel drains before the
        zero-delay FIFO that delivers the write — so the first
        successful iteration is the first with ``u_k > t_w``.  The
        skipped loads/compares/branches are charged in one step (logged
        READ transactions at their true issue cycles, host-port
        occupancy, retired-operation and load counters) and the host
        resumes exactly at ``u_k + response_latency``.

        The fast path requires ``request_latency > 0`` (the ordering
        argument above) and a non-MMIO flag region (the arming peek must
        be side-effect free); otherwise, or when ``REPRO_NAIVE_POLL`` is
        set, the reference loop runs unchanged.
        """
        host = system.host
        config = system.config
        params = system.noc.params
        gap = config.host_poll_gap_cycles

        region = None
        if not flags.naive_poll() and params.request_latency > 0:
            try:
                region = system.address_map.region_at(flag_addr)
            except MemoryError_:
                region = None
            if region is not None and isinstance(region.target, MmioDevice):
                region = None
        if region is None:
            while True:
                value = yield from host.load(flag_addr)
                if value >= threshold:
                    return
                yield from host.execute(gap)

        sim = system.sim
        memory = region.target
        period = (params.load_occupancy + params.request_latency
                  + params.response_latency + gap)

        # Iteration 0 runs for real (it also absorbs any leftover host-
        # port occupancy from the dispatch stores).
        value = yield from host.load(flag_addr)
        if value >= threshold:
            return
        read0 = sim.now - params.response_latency

        # The crossing write may have landed in this very cycle, in the
        # same zero-delay phase that resumed us, before a watchpoint
        # could be armed — a side-effect-free functional peek catches it.
        if memory.read_word(flag_addr) >= threshold:
            crossed_at = sim.now
        else:
            crossed = sim.event(name=f"poll.virtual@{flag_addr:#x}")

            def on_flag_write(new_value: int) -> None:
                if new_value >= threshold and not crossed.triggered:
                    crossed.trigger(new_value)

            system.address_map.watch(flag_addr, on_flag_write)
            try:
                yield crossed
            finally:
                system.address_map.unwatch(flag_addr)
            crossed_at = sim.now

        # First iteration whose read strictly follows the crossing write.
        success = (crossed_at - read0) // period + 1
        first_issue = (read0 + period
                       - params.load_occupancy - params.request_latency)
        system.noc.charge_host_poll_reads(
            flag_addr, first_issue, period, success)
        host.lsu.loads_issued += success
        # Per skipped iteration: one gap execute + one load.
        host.retired_operations += 2 * success
        resume_at = read0 + success * period + params.response_latency
        yield sim.timer(resume_at - crossed_at, name="poll.fastforward")


class SyncUnitCompletion(CompletionStrategy):
    """Extended completion: credit-counter threshold + WFI.

    One threshold equal to the launch's *total* cluster count turns the
    credit counter into a completion barrier across all jobs — a single
    interrupt when the last one drains.
    """

    key = "sync_unit_wfi"
    requires_hw_sync = True
    sync_mode = abi.SYNC_MODE_SYNCUNIT
    uses_flag = False
    #: Arming is one posted threshold store; only its *value* is M.
    prefix_affine_in_m = True

    def completion_addr(self, system, flag_addr):
        return system.syncunit_increment_addr

    def arm(self, system, jobs):
        total = sum(desc.num_clusters for desc, _flag in jobs)
        yield from system.host.store_posted(
            system.syncunit_threshold_addr, total)

    def wait(self, system, jobs):
        from repro.soc.syncunit import IRQ_LINE
        yield from system.host.wfi(IRQ_LINE)


# ----------------------------------------------------------------------
# The variant registry
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One named pairing of a dispatch and a completion strategy."""

    name: str
    dispatch: DispatchStrategy
    completion: CompletionStrategy

    @property
    def use_multicast(self) -> bool:
        """Hardware multicast requirement, derived from the strategy."""
        return self.dispatch.requires_multicast

    @property
    def use_hw_sync(self) -> bool:
        """Hardware sync-unit requirement, derived from the strategy."""
        return self.completion.requires_hw_sync

    @property
    def features(self) -> typing.Tuple[bool, bool]:
        """The ``(multicast, hw_sync)`` hardware feature pair."""
        return (self.use_multicast, self.use_hw_sync)


_REGISTRY: typing.Dict[str, VariantSpec] = {}


def register_variant(name: str, dispatch: DispatchStrategy,
                     completion: CompletionStrategy,
                     replace: bool = False) -> VariantSpec:
    """Register a protocol variant; returns its spec.

    This is the *only* step a new variant needs: the runtime factory
    (:func:`repro.runtime.api.make_runtime`), the hardware configurator
    (:meth:`repro.soc.config.SoCConfig.for_variant`) and the runtime's
    default naming all resolve through the registry.
    """
    if name == "auto":
        raise OffloadError(
            "'auto' is reserved for hardware-feature resolution")
    if name in _REGISTRY and not replace:
        raise OffloadError(
            f"variant {name!r} is already registered; pass replace=True "
            "to override")
    spec = VariantSpec(name=name, dispatch=dispatch, completion=completion)
    _REGISTRY[name] = spec
    return spec


def get_variant(name: str) -> VariantSpec:
    """Look a variant up by name.

    Raises
    ------
    OffloadError
        On unknown names, listing every registered variant.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise OffloadError(
            f"unknown runtime variant {name!r}; available: "
            f"auto, {', '.join(sorted(_REGISTRY))}"
        ) from None


def variant_names() -> typing.Tuple[str, ...]:
    """Every registered variant name, sorted."""
    return tuple(sorted(_REGISTRY))


def variant_features() -> typing.Dict[str, typing.Tuple[bool, bool]]:
    """Variant name → ``(multicast, hw_sync)`` feature pair."""
    return {name: spec.features for name, spec in _REGISTRY.items()}


def variant_for_features(use_multicast: bool,
                         use_hw_sync: bool) -> VariantSpec:
    """The first registered variant matching a hardware feature pair.

    This resolves ``variant="auto"`` (use everything the hardware has)
    and derives a runtime's default name from its strategies.
    Registration order breaks ties, so the four paper variants keep
    their canonical names even if later registrations alias a pair.
    """
    wanted = (bool(use_multicast), bool(use_hw_sync))
    for spec in _REGISTRY.values():
        if spec.features == wanted:
            return spec
    raise OffloadError(
        f"no registered variant provides features "
        f"multicast={wanted[0]}, hw_sync={wanted[1]}")


#: Shared stateless strategy instances used by the built-in variants.
SEQUENTIAL_STORE = SequentialStoreDispatch()
MULTICAST = MulticastDispatch()
AMO_POLL = AmoPollCompletion()
SYNC_UNIT_WFI = SyncUnitCompletion()

#: The four protocol variants the paper evaluates (Fig. 1 + ablation A1).
register_variant("baseline", SEQUENTIAL_STORE, AMO_POLL)
register_variant("multicast_only", MULTICAST, AMO_POLL)
register_variant("hw_sync_only", SEQUENTIAL_STORE, SYNC_UNIT_WFI)
register_variant("extended", MULTICAST, SYNC_UNIT_WFI)
