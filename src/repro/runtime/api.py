"""Runtime variant registry and factory."""

from __future__ import annotations

import typing

from repro.errors import OffloadError
from repro.runtime.protocol import OffloadRuntime
from repro.soc.config import VARIANT_FEATURES
from repro.soc.manticore import ManticoreSystem

#: Variant name → (use_multicast, use_hw_sync).  An alias of
#: :data:`repro.soc.config.VARIANT_FEATURES`, kept for backwards
#: compatibility; the config module owns the mapping so
#: ``SoCConfig.for_variant`` and the runtime factory cannot drift.
RUNTIME_VARIANTS: typing.Dict[str, typing.Tuple[bool, bool]] = VARIANT_FEATURES


def make_runtime(system: ManticoreSystem,
                 variant: str = "auto") -> OffloadRuntime:
    """Build an offload runtime for ``system``.

    ``variant="auto"`` uses every extension the hardware provides (a
    baseline SoC gets the baseline routine, an extended SoC the extended
    one); the explicit names select a software variant, which must be
    supported by the hardware.

    Raises
    ------
    OffloadError
        On unknown variant names or software/hardware mismatches.
    """
    if variant == "auto":
        flags = (system.config.multicast, system.config.hw_sync)
    else:
        try:
            flags = RUNTIME_VARIANTS[variant]
        except KeyError:
            raise OffloadError(
                f"unknown runtime variant {variant!r}; available: "
                f"auto, {', '.join(sorted(RUNTIME_VARIANTS))}"
            ) from None
    use_multicast, use_hw_sync = flags
    return OffloadRuntime(system, use_multicast=use_multicast,
                          use_hw_sync=use_hw_sync)
