"""Runtime variant factory, resolving through the strategy registry."""

from __future__ import annotations

from repro.runtime.protocol import OffloadRuntime
from repro.runtime.strategies import get_variant, variant_for_features
from repro.soc.config import VARIANT_FEATURES
from repro.soc.manticore import ManticoreSystem

#: Variant name → (use_multicast, use_hw_sync).  A live view of the
#: strategy registry (:mod:`repro.runtime.strategies`), kept under its
#: historical name for backwards compatibility; registering a new
#: variant makes it appear here, in ``SoCConfig.for_variant``, and in
#: :func:`make_runtime` at once.
RUNTIME_VARIANTS = VARIANT_FEATURES


def make_runtime(system: ManticoreSystem,
                 variant: str = "auto") -> OffloadRuntime:
    """Build an offload runtime for ``system``.

    ``variant="auto"`` uses every extension the hardware provides (a
    baseline SoC gets the baseline routine, an extended SoC the extended
    one); the explicit names select a registered variant
    (:func:`repro.runtime.strategies.register_variant`), which must be
    supported by the hardware.

    Raises
    ------
    OffloadError
        On unknown variant names or software/hardware mismatches.
    """
    if variant == "auto":
        spec = variant_for_features(system.config.multicast,
                                    system.config.hw_sync)
    else:
        spec = get_variant(variant)
    return OffloadRuntime.from_spec(system, spec)
