"""The offload protocol: the host program for one job.

The program below is the simulated equivalent of the C offload routine
running on CVA6.  Its structure (and where the cycles go) is:

1. *Setup*: runtime-entry bookkeeping, then store the job descriptor to
   shared memory word by word.  All but the last store are posted; the
   last is non-posted and acts as the release fence guaranteeing the
   descriptor is visible before any doorbell rings.
2. *Arm completion*: write the sync-unit THRESHOLD (extended) or zero
   the shared completion flag (baseline).
3. *Dispatch*: ring each selected cluster's doorbell with the
   descriptor pointer — a sequential store loop (baseline, cost linear
   in M) or a single multicast store (extension, constant cost).
4. *Wait*: WFI until the sync unit's interrupt (extended), or poll the
   completion flag until it reaches M (baseline).
"""

from __future__ import annotations

import typing

from repro import abi
from repro.errors import OffloadError
from repro.soc.manticore import ManticoreSystem
from repro.soc.syncunit import IRQ_LINE


class OffloadRuntime:
    """Host-side offload routine with selectable dispatch/completion.

    Parameters
    ----------
    system:
        The SoC to run on.  The requested features must exist in its
        hardware configuration.
    use_multicast:
        Dispatch with one multicast store instead of a store loop.
    use_hw_sync:
        Complete via the credit-counter unit's interrupt instead of
        AMO-and-poll.
    name:
        Variant label recorded into results.
    """

    def __init__(self, system: ManticoreSystem, use_multicast: bool,
                 use_hw_sync: bool, name: str = "") -> None:
        config = system.config
        if use_multicast and not config.multicast:
            raise OffloadError(
                "runtime requests multicast dispatch but the SoC was built "
                "without the multicast extension")
        if use_hw_sync and not config.hw_sync:
            raise OffloadError(
                "runtime requests hardware synchronization but the SoC was "
                "built without the sync unit enabled")
        self.system = system
        self.use_multicast = use_multicast
        self.use_hw_sync = use_hw_sync
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        return {
            (False, False): "baseline",
            (True, False): "multicast_only",
            (False, True): "hw_sync_only",
            (True, True): "extended",
        }[(self.use_multicast, self.use_hw_sync)]

    @property
    def sync_mode(self) -> int:
        """The descriptor sync-mode field this runtime dispatches with."""
        return abi.SYNC_MODE_SYNCUNIT if self.use_hw_sync else abi.SYNC_MODE_AMO

    # ------------------------------------------------------------------
    # Protocol building blocks
    # ------------------------------------------------------------------
    def dispatch(self, desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        """Ring the doorbells of the job's cluster range.

        One multicast store (extension), a plain store for
        single-cluster jobs, or the baseline's sequential store loop.
        """
        system = self.system
        host = system.host
        config = system.config
        first = desc.first_cluster
        if self.use_multicast and desc.num_clusters > 1:
            addrs = system.mailbox_addrs(desc.num_clusters, first)
            yield from host.multicast_store(addrs, desc_addr)
        elif self.use_multicast:
            # A multicast of one would only pay the replication-tree
            # latency; dispatch single-cluster jobs with a plain store.
            yield from host.store_posted(system.mailbox_addr(first),
                                         desc_addr)
        else:
            for cluster_id in range(first, first + desc.num_clusters):
                yield from host.execute(config.host_addr_calc_cycles)
                yield from host.store_posted(
                    system.mailbox_addr(cluster_id), desc_addr)

    # ------------------------------------------------------------------
    # The host program
    # ------------------------------------------------------------------
    def offload_program(self, desc: abi.JobDescriptor, desc_addr: int,
                        flag_addr: typing.Optional[int],
                        result: typing.Dict[str, int]) -> typing.Generator:
        """Build the host program for one offload.

        ``result`` receives ``start_cycle`` and ``end_cycle``.
        ``flag_addr`` is the polling flag (AMO completion only).
        """
        if not self.use_hw_sync and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        system = self.system
        host = system.host
        config = system.config
        words = abi.encode_descriptor(desc)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start", desc.kernel_name)

            # --- 1. Setup: runtime entry + descriptor store -------------
            yield from host.execute(config.host_setup_cycles)
            for word_index, word in enumerate(words[:-1]):
                yield from host.store_posted(desc_addr + 8 * word_index, word)
            # Release fence: the last descriptor word is non-posted.
            yield from host.store(desc_addr + 8 * (len(words) - 1), words[-1])
            system.trace.record("host", "descriptor_written", len(words))

            # --- 2. Arm completion --------------------------------------
            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, desc.num_clusters)
            else:
                yield from host.store_posted(flag_addr, 0)

            # --- 3. Dispatch ---------------------------------------------
            system.trace.record("host", "dispatch_start")
            yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- 4. Wait for completion -----------------------------------
            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                while True:
                    value = yield from host.load(flag_addr)
                    if value >= desc.num_clusters:
                        break
                    yield from host.execute(config.host_poll_gap_cycles)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()

    def overlapped_offload_program(
            self, desc: abi.JobDescriptor, desc_addr: int,
            flag_addr: typing.Optional[int],
            host_work: typing.Callable[[], typing.Generator],
            result: typing.Dict[str, int]) -> typing.Generator:
        """Offload a job, run host work while it executes, then wait.

        The co-operative heterogeneous pattern the paper's class of
        systems targets: the host is *not* idle during the offload — it
        dispatches, runs ``host_work()`` (a host program fragment,
        e.g. its own kernel), and only then synchronizes.  With the
        sync-unit extension an interrupt that arrived during the host
        work leaves the line pending and the WFI falls straight
        through; the baseline simply starts polling late.

        ``result`` additionally receives ``host_work_done_cycle``.
        """
        if not self.use_hw_sync and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        system = self.system
        host = system.host
        config = system.config
        words = abi.encode_descriptor(desc)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start", desc.kernel_name)

            yield from host.execute(config.host_setup_cycles)
            for word_index, word in enumerate(words[:-1]):
                yield from host.store_posted(desc_addr + 8 * word_index, word)
            yield from host.store(desc_addr + 8 * (len(words) - 1),
                                  words[-1])
            system.trace.record("host", "descriptor_written", len(words))

            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, desc.num_clusters)
            else:
                yield from host.store_posted(flag_addr, 0)

            system.trace.record("host", "dispatch_start")
            yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- Host work overlaps the accelerator's execution ----------
            yield from host_work()
            system.trace.record("host", "host_work_done")
            result["host_work_done_cycle"] = system.sim.now

            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                while True:
                    value = yield from host.load(flag_addr)
                    if value >= desc.num_clusters:
                        break
                    yield from host.execute(config.host_poll_gap_cycles)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()

    def concurrent_offload_program(
            self,
            jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor, int]],
            flag_addrs: typing.Optional[typing.Sequence[int]],
            result: typing.Dict[str, int]) -> typing.Generator:
        """Host program launching several space-shared jobs at once.

        ``jobs`` pairs each descriptor with its memory address; the
        descriptors must target disjoint cluster ranges (the caller —
        :func:`repro.core.concurrent.offload_concurrent` — validates).
        With hardware sync, one threshold equal to the *total* cluster
        count turns the credit counter into a completion barrier across
        all jobs (a single interrupt when the last job drains); with AMO
        completion each job gets its own flag and the host polls them in
        turn.
        """
        if not jobs:
            raise OffloadError("concurrent offload of zero jobs")
        if not self.use_hw_sync:
            if flag_addrs is None or len(flag_addrs) != len(jobs):
                raise OffloadError(
                    "AMO completion requires one flag address per job")
        system = self.system
        host = system.host
        config = system.config
        total_clusters = sum(desc.num_clusters for desc, _addr in jobs)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start",
                                [desc.kernel_name for desc, _a in jobs])

            # --- 1. Setup: runtime entry + all descriptors ---------------
            yield from host.execute(config.host_setup_cycles)
            for index, (desc, desc_addr) in enumerate(jobs):
                words = abi.encode_descriptor(desc)
                last_job = index == len(jobs) - 1
                for word_index, word in enumerate(words[:-1]):
                    yield from host.store_posted(
                        desc_addr + 8 * word_index, word)
                if last_job:
                    # One release fence covers every descriptor store.
                    yield from host.store(
                        desc_addr + 8 * (len(words) - 1), words[-1])
                else:
                    yield from host.store_posted(
                        desc_addr + 8 * (len(words) - 1), words[-1])
            system.trace.record("host", "descriptor_written", len(jobs))

            # --- 2. Arm completion --------------------------------------
            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, total_clusters)
            else:
                for flag_addr in flag_addrs:
                    yield from host.store_posted(flag_addr, 0)

            # --- 3. Dispatch every job -----------------------------------
            system.trace.record("host", "dispatch_start")
            for desc, desc_addr in jobs:
                yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- 4. Wait for all jobs --------------------------------------
            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                for (desc, _addr), flag_addr in zip(jobs, flag_addrs):
                    while True:
                        value = yield from host.load(flag_addr)
                        if value >= desc.num_clusters:
                            break
                        yield from host.execute(config.host_poll_gap_cycles)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()
