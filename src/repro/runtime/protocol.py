"""The offload protocol: the host program for one job.

The program below is the simulated equivalent of the C offload routine
running on CVA6.  Its structure (and where the cycles go) is:

1. *Setup*: runtime-entry bookkeeping, then store the job descriptor to
   shared memory word by word.  All but the last store are posted; the
   last is non-posted and acts as the release fence guaranteeing the
   descriptor is visible before any doorbell rings.
2. *Arm completion*: write the sync-unit THRESHOLD (extended) or zero
   the shared completion flag (baseline).
3. *Dispatch*: ring each selected cluster's doorbell with the
   descriptor pointer — a sequential store loop (baseline, cost linear
   in M) or a single multicast store (extension, constant cost).
4. *Wait*: WFI until the sync unit's interrupt (extended), or poll the
   completion flag until it reaches M (baseline).
"""

from __future__ import annotations

import os
import typing

from repro import abi
from repro.errors import MemoryError_, OffloadError
from repro.mem.map import MmioDevice
from repro.soc.manticore import ManticoreSystem
from repro.soc.syncunit import IRQ_LINE

#: Environment variable: when set (non-empty), the baseline completion
#: wait simulates every poll iteration instead of fast-forwarding.
#: Used by the A/B property tests proving the fast path is cycle-exact.
NAIVE_POLL_ENV = "REPRO_NAIVE_POLL"


class OffloadRuntime:
    """Host-side offload routine with selectable dispatch/completion.

    Parameters
    ----------
    system:
        The SoC to run on.  The requested features must exist in its
        hardware configuration.
    use_multicast:
        Dispatch with one multicast store instead of a store loop.
    use_hw_sync:
        Complete via the credit-counter unit's interrupt instead of
        AMO-and-poll.
    name:
        Variant label recorded into results.
    """

    def __init__(self, system: ManticoreSystem, use_multicast: bool,
                 use_hw_sync: bool, name: str = "") -> None:
        config = system.config
        if use_multicast and not config.multicast:
            raise OffloadError(
                "runtime requests multicast dispatch but the SoC was built "
                "without the multicast extension (build the system from "
                "SoCConfig.for_variant('multicast_only') or 'extended')")
        if use_hw_sync and not config.hw_sync:
            raise OffloadError(
                "runtime requests hardware synchronization but the SoC was "
                "built without the sync unit enabled (build the system from "
                "SoCConfig.for_variant('hw_sync_only') or 'extended')")
        self.system = system
        self.use_multicast = use_multicast
        self.use_hw_sync = use_hw_sync
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        return {
            (False, False): "baseline",
            (True, False): "multicast_only",
            (False, True): "hw_sync_only",
            (True, True): "extended",
        }[(self.use_multicast, self.use_hw_sync)]

    @property
    def sync_mode(self) -> int:
        """The descriptor sync-mode field this runtime dispatches with."""
        return abi.SYNC_MODE_SYNCUNIT if self.use_hw_sync else abi.SYNC_MODE_AMO

    # ------------------------------------------------------------------
    # Protocol building blocks
    # ------------------------------------------------------------------
    def dispatch(self, desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        """Ring the doorbells of the job's cluster range.

        One multicast store (extension), a plain store for
        single-cluster jobs, or the baseline's sequential store loop.
        """
        system = self.system
        host = system.host
        config = system.config
        first = desc.first_cluster
        if self.use_multicast and desc.num_clusters > 1:
            addrs = system.mailbox_addrs(desc.num_clusters, first)
            yield from host.multicast_store(addrs, desc_addr)
        elif self.use_multicast:
            # A multicast of one would only pay the replication-tree
            # latency; dispatch single-cluster jobs with a plain store.
            yield from host.store_posted(system.mailbox_addr(first),
                                         desc_addr)
        else:
            for cluster_id in range(first, first + desc.num_clusters):
                yield from host.execute(config.host_addr_calc_cycles)
                yield from host.store_posted(
                    system.mailbox_addr(cluster_id), desc_addr)

    def _poll_wait(self, flag_addr: int, threshold: int) -> typing.Generator:
        """Poll the completion flag until it reaches ``threshold``.

        The reference semantics are the baseline's software loop::

            while True:
                value = yield from host.load(flag_addr)   # round trip
                if value >= threshold: break              # compare+branch
                yield from host.execute(poll_gap)         # loop overhead

        which costs the simulator one process wake-up per iteration —
        O(runtime / poll period) events, the dominant event count for
        long offloads.  The fast path below is cycle-exact and charges
        identical statistics while collapsing the wait into O(1) events:
        it simulates the *first* load for real, then parks on a
        watchpoint at ``flag_addr``.  When the threshold-crossing write
        lands (cycle ``t_w``), the iteration schedule is reconstructed
        analytically.  With the host port otherwise idle, iteration
        ``k``'s load reads the flag at ``u_k = u_0 + k * period`` where
        ``period = load_occupancy + request_latency + response_latency +
        poll_gap``.  A read in the same cycle as the write still
        observes the *old* value — with ``request_latency > 0`` the read
        resumes via the time heap, which the kernel drains before the
        zero-delay FIFO that delivers the write — so the first
        successful iteration is the first with ``u_k > t_w``.  The
        skipped loads/compares/branches are charged in one step (logged
        READ transactions at their true issue cycles, host-port
        occupancy, retired-operation and load counters) and the host
        resumes exactly at ``u_k + response_latency``.

        The fast path requires ``request_latency > 0`` (the ordering
        argument above) and a non-MMIO flag region (the arming peek must
        be side-effect free); otherwise, or when ``REPRO_NAIVE_POLL`` is
        set, the reference loop runs unchanged.
        """
        system = self.system
        host = system.host
        config = system.config
        params = system.noc.params
        gap = config.host_poll_gap_cycles

        region = None
        if not os.environ.get(NAIVE_POLL_ENV) and params.request_latency > 0:
            try:
                region = system.address_map.region_at(flag_addr)
            except MemoryError_:
                region = None
            if region is not None and isinstance(region.target, MmioDevice):
                region = None
        if region is None:
            while True:
                value = yield from host.load(flag_addr)
                if value >= threshold:
                    return
                yield from host.execute(gap)

        sim = system.sim
        memory = region.target
        period = (params.load_occupancy + params.request_latency
                  + params.response_latency + gap)

        # Iteration 0 runs for real (it also absorbs any leftover host-
        # port occupancy from the dispatch stores).
        value = yield from host.load(flag_addr)
        if value >= threshold:
            return
        read0 = sim.now - params.response_latency

        # The crossing write may have landed in this very cycle, in the
        # same zero-delay phase that resumed us, before a watchpoint
        # could be armed — a side-effect-free functional peek catches it.
        if memory.read_word(flag_addr) >= threshold:
            crossed_at = sim.now
        else:
            crossed = sim.event(name=f"poll.virtual@{flag_addr:#x}")

            def on_flag_write(new_value: int) -> None:
                if new_value >= threshold and not crossed.triggered:
                    crossed.trigger(new_value)

            system.address_map.watch(flag_addr, on_flag_write)
            try:
                yield crossed
            finally:
                system.address_map.unwatch(flag_addr)
            crossed_at = sim.now

        # First iteration whose read strictly follows the crossing write.
        success = (crossed_at - read0) // period + 1
        first_issue = (read0 + period
                       - params.load_occupancy - params.request_latency)
        system.noc.charge_host_poll_reads(
            flag_addr, first_issue, period, success)
        host.lsu.loads_issued += success
        # Per skipped iteration: one gap execute + one load.
        host.retired_operations += 2 * success
        resume_at = read0 + success * period + params.response_latency
        yield sim.timer(resume_at - crossed_at, name="poll.fastforward")

    # ------------------------------------------------------------------
    # The host program
    # ------------------------------------------------------------------
    def offload_program(self, desc: abi.JobDescriptor, desc_addr: int,
                        flag_addr: typing.Optional[int],
                        result: typing.Dict[str, int]) -> typing.Generator:
        """Build the host program for one offload.

        ``result`` receives ``start_cycle`` and ``end_cycle``.
        ``flag_addr`` is the polling flag (AMO completion only).
        """
        if not self.use_hw_sync and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        system = self.system
        host = system.host
        config = system.config
        words = abi.encode_descriptor(desc)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start", desc.kernel_name)

            # --- 1. Setup: runtime entry + descriptor store -------------
            yield from host.execute(config.host_setup_cycles)
            for word_index, word in enumerate(words[:-1]):
                yield from host.store_posted(desc_addr + 8 * word_index, word)
            # Release fence: the last descriptor word is non-posted.
            yield from host.store(desc_addr + 8 * (len(words) - 1), words[-1])
            system.trace.record("host", "descriptor_written", len(words))

            # --- 2. Arm completion --------------------------------------
            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, desc.num_clusters)
            else:
                yield from host.store_posted(flag_addr, 0)

            # --- 3. Dispatch ---------------------------------------------
            system.trace.record("host", "dispatch_start")
            yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- 4. Wait for completion -----------------------------------
            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                yield from self._poll_wait(flag_addr, desc.num_clusters)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()

    def overlapped_offload_program(
            self, desc: abi.JobDescriptor, desc_addr: int,
            flag_addr: typing.Optional[int],
            host_work: typing.Callable[[], typing.Generator],
            result: typing.Dict[str, int]) -> typing.Generator:
        """Offload a job, run host work while it executes, then wait.

        The co-operative heterogeneous pattern the paper's class of
        systems targets: the host is *not* idle during the offload — it
        dispatches, runs ``host_work()`` (a host program fragment,
        e.g. its own kernel), and only then synchronizes.  With the
        sync-unit extension an interrupt that arrived during the host
        work leaves the line pending and the WFI falls straight
        through; the baseline simply starts polling late.

        ``result`` additionally receives ``host_work_done_cycle``.
        """
        if not self.use_hw_sync and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        system = self.system
        host = system.host
        config = system.config
        words = abi.encode_descriptor(desc)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start", desc.kernel_name)

            yield from host.execute(config.host_setup_cycles)
            for word_index, word in enumerate(words[:-1]):
                yield from host.store_posted(desc_addr + 8 * word_index, word)
            yield from host.store(desc_addr + 8 * (len(words) - 1),
                                  words[-1])
            system.trace.record("host", "descriptor_written", len(words))

            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, desc.num_clusters)
            else:
                yield from host.store_posted(flag_addr, 0)

            system.trace.record("host", "dispatch_start")
            yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- Host work overlaps the accelerator's execution ----------
            yield from host_work()
            system.trace.record("host", "host_work_done")
            result["host_work_done_cycle"] = system.sim.now

            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                yield from self._poll_wait(flag_addr, desc.num_clusters)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()

    def concurrent_offload_program(
            self,
            jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor, int]],
            flag_addrs: typing.Optional[typing.Sequence[int]],
            result: typing.Dict[str, int]) -> typing.Generator:
        """Host program launching several space-shared jobs at once.

        ``jobs`` pairs each descriptor with its memory address; the
        descriptors must target disjoint cluster ranges (the caller —
        :func:`repro.core.concurrent.offload_concurrent` — validates).
        With hardware sync, one threshold equal to the *total* cluster
        count turns the credit counter into a completion barrier across
        all jobs (a single interrupt when the last job drains); with AMO
        completion each job gets its own flag and the host polls them in
        turn.
        """
        if not jobs:
            raise OffloadError("concurrent offload of zero jobs")
        if not self.use_hw_sync:
            if flag_addrs is None or len(flag_addrs) != len(jobs):
                raise OffloadError(
                    "AMO completion requires one flag address per job")
        system = self.system
        host = system.host
        config = system.config
        total_clusters = sum(desc.num_clusters for desc, _addr in jobs)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start",
                                [desc.kernel_name for desc, _a in jobs])

            # --- 1. Setup: runtime entry + all descriptors ---------------
            yield from host.execute(config.host_setup_cycles)
            for index, (desc, desc_addr) in enumerate(jobs):
                words = abi.encode_descriptor(desc)
                last_job = index == len(jobs) - 1
                for word_index, word in enumerate(words[:-1]):
                    yield from host.store_posted(
                        desc_addr + 8 * word_index, word)
                if last_job:
                    # One release fence covers every descriptor store.
                    yield from host.store(
                        desc_addr + 8 * (len(words) - 1), words[-1])
                else:
                    yield from host.store_posted(
                        desc_addr + 8 * (len(words) - 1), words[-1])
            system.trace.record("host", "descriptor_written", len(jobs))

            # --- 2. Arm completion --------------------------------------
            if self.use_hw_sync:
                yield from host.store_posted(
                    system.syncunit_threshold_addr, total_clusters)
            else:
                for flag_addr in flag_addrs:
                    yield from host.store_posted(flag_addr, 0)

            # --- 3. Dispatch every job -----------------------------------
            system.trace.record("host", "dispatch_start")
            for desc, desc_addr in jobs:
                yield from self.dispatch(desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- 4. Wait for all jobs --------------------------------------
            if self.use_hw_sync:
                yield from host.wfi(IRQ_LINE)
            else:
                for (desc, _addr), flag_addr in zip(jobs, flag_addrs):
                    yield from self._poll_wait(flag_addr, desc.num_clusters)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()
