"""The offload protocol: the host program for one launch.

The program below is the simulated equivalent of the C offload routine
running on CVA6.  Every launch — plain, overlapped with host work, or
a space-shared concurrent batch — is one parameterization of the same
explicit phase sequence:

1. *Setup*: runtime-entry bookkeeping, then store each job descriptor
   to shared memory word by word.  All but the very last store are
   posted; the last is non-posted and acts as the release fence
   guaranteeing every descriptor is visible before any doorbell rings.
2. *Arm completion*: write the sync-unit THRESHOLD (extended) or zero
   each job's shared completion flag (baseline) — delegated to the
   runtime's :class:`~repro.runtime.strategies.CompletionStrategy`.
3. *Dispatch*: ring each job's doorbells — a sequential store loop
   (baseline, cost linear in M) or a single multicast store (extension,
   constant cost) — delegated to the runtime's
   :class:`~repro.runtime.strategies.DispatchStrategy`.
4. *Overlapped host work* (optional): run a host program fragment
   while the fabric executes; the paper's co-operative pattern.
5. *Wait*: WFI until the sync unit's interrupt (extended), or poll
   each completion flag until it reaches the job's cluster count
   (baseline).

Trace records are uniform across launch shapes: ``offload_start``,
``descriptor_written``, ``dispatch_start``, ``dispatch_done``,
optionally ``host_work_done``, and ``offload_end``.
"""

from __future__ import annotations

import typing

from repro import abi, flags
from repro.errors import OffloadError
from repro.runtime.strategies import (
    CompletionStrategy,
    DispatchStrategy,
    MULTICAST,
    SEQUENTIAL_STORE,
    AMO_POLL,
    SYNC_UNIT_WFI,
    VariantSpec,
    variant_for_features,
)
from repro.soc.manticore import ManticoreSystem

#: Re-exported from :mod:`repro.flags` for backwards compatibility;
#: see there for semantics (the A/B lever of the poll fast path).
NAIVE_POLL_ENV = flags.NAIVE_POLL_ENV

#: One job in a launch: its descriptor and, for flag-based completion,
#: the address of its completion flag (``None`` otherwise).
LaunchJob = typing.Tuple[abi.JobDescriptor, typing.Optional[int]]


class OffloadRuntime:
    """Host-side offload routine with pluggable dispatch/completion.

    Parameters
    ----------
    system:
        The SoC to run on.  The requested features must exist in its
        hardware configuration.
    use_multicast:
        Dispatch with one multicast store instead of a store loop.
        Ignored when ``dispatch`` is given explicitly.
    use_hw_sync:
        Complete via the credit-counter unit's interrupt instead of
        AMO-and-poll.  Ignored when ``completion`` is given explicitly.
    name:
        Variant label recorded into results; defaults to the registered
        variant name matching the chosen strategies.
    dispatch, completion:
        Explicit strategy instances (normally resolved from the
        registry via :func:`repro.runtime.api.make_runtime`).
    """

    def __init__(self, system: ManticoreSystem, use_multicast: bool = False,
                 use_hw_sync: bool = False, name: str = "",
                 dispatch: typing.Optional[DispatchStrategy] = None,
                 completion: typing.Optional[CompletionStrategy] = None
                 ) -> None:
        if dispatch is None:
            dispatch = MULTICAST if use_multicast else SEQUENTIAL_STORE
        if completion is None:
            completion = SYNC_UNIT_WFI if use_hw_sync else AMO_POLL
        config = system.config
        if dispatch.requires_multicast and not config.multicast:
            raise OffloadError(
                "runtime requests multicast dispatch but the SoC was built "
                "without the multicast extension (build the system from "
                "SoCConfig.for_variant('multicast_only') or 'extended')")
        if completion.requires_hw_sync and not config.hw_sync:
            raise OffloadError(
                "runtime requests hardware synchronization but the SoC was "
                "built without the sync unit enabled (build the system from "
                "SoCConfig.for_variant('hw_sync_only') or 'extended')")
        self.system = system
        self.dispatch_strategy = dispatch
        self.completion_strategy = completion
        self.use_multicast = dispatch.requires_multicast
        self.use_hw_sync = completion.requires_hw_sync
        self.name = name or self._default_name()

    @classmethod
    def from_spec(cls, system: ManticoreSystem,
                  spec: VariantSpec) -> "OffloadRuntime":
        """Build a runtime from a registered variant spec."""
        return cls(system, name=spec.name, dispatch=spec.dispatch,
                   completion=spec.completion)

    def _default_name(self) -> str:
        """The registered variant name matching this runtime's strategies."""
        return variant_for_features(self.use_multicast,
                                    self.use_hw_sync).name

    @property
    def sync_mode(self) -> int:
        """The descriptor sync-mode field this runtime dispatches with."""
        return self.completion_strategy.sync_mode

    def completion_addr(self, flag_addr: typing.Optional[int]) -> int:
        """The address clusters signal completion to (per job)."""
        return self.completion_strategy.completion_addr(self.system,
                                                        flag_addr)

    # ------------------------------------------------------------------
    # Protocol building blocks
    # ------------------------------------------------------------------
    def dispatch(self, desc: abi.JobDescriptor,
                 desc_addr: int) -> typing.Generator:
        """Ring the doorbells of the job's cluster range."""
        return self.dispatch_strategy.dispatch(self.system, desc, desc_addr)

    # ------------------------------------------------------------------
    # The phase pipeline
    # ------------------------------------------------------------------
    def launch_program(
            self,
            jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor, int]],
            flag_addrs: typing.Optional[typing.Sequence[int]],
            result: typing.Dict[str, int],
            host_work: typing.Optional[
                typing.Callable[[], typing.Generator]] = None,
            ) -> typing.Generator:
        """Build the host program for one launch of any shape.

        ``jobs`` pairs each descriptor with its *descriptor address*;
        ``flag_addrs`` lists each job's completion-flag address (flag
        completion only; the descriptors must already carry matching
        ``completion_addr`` fields).  ``host_work``, when given, runs
        between dispatch and wait — the overlapped launch.  ``result``
        receives ``start_cycle``, ``end_cycle``, and (with host work)
        ``host_work_done_cycle``.

        A plain offload is a one-job launch; a concurrent launch lists
        several jobs on disjoint cluster ranges.  The phase sequence —
        setup, arm, dispatch, optional host work, wait — and every
        cycle charged are identical across shapes.
        """
        if not jobs:
            raise OffloadError("concurrent offload of zero jobs")
        completion = self.completion_strategy
        if completion.uses_flag:
            if flag_addrs is None or len(flag_addrs) != len(jobs):
                raise OffloadError(
                    "AMO completion requires one flag address per job")
            completion_jobs: typing.List[LaunchJob] = [
                (desc, flag) for (desc, _addr), flag
                in zip(jobs, flag_addrs)]
        else:
            completion_jobs = [(desc, None) for desc, _addr in jobs]

        system = self.system
        host = system.host
        config = system.config
        if len(jobs) == 1:
            start_data: typing.Any = jobs[0][0].kernel_name
            written_data: typing.Any = len(abi.encode_descriptor(jobs[0][0]))
        else:
            start_data = [desc.kernel_name for desc, _addr in jobs]
            written_data = len(jobs)

        def program() -> typing.Generator:
            result["start_cycle"] = system.sim.now
            system.trace.record("host", "offload_start", start_data)

            # --- 1. Setup: runtime entry + all descriptors ---------------
            yield from host.execute(config.host_setup_cycles)
            staged = None
            if not flags.naive_channel():
                # Closed-form staging: the whole descriptor store run
                # (every store posted, the last the release fence)
                # resolves to a single scheduler event.  store_block
                # itself verifies the single-actor window and falls
                # back to the reference loop by returning None.
                staged = host.store_block(
                    [(desc_addr, abi.encode_descriptor(desc))
                     for desc, desc_addr in jobs])
            if staged is not None:
                yield staged
            else:
                for index, (desc, desc_addr) in enumerate(jobs):
                    words = abi.encode_descriptor(desc)
                    last_job = index == len(jobs) - 1
                    for word_index, word in enumerate(words[:-1]):
                        yield from host.store_posted(
                            desc_addr + 8 * word_index, word)
                    if last_job:
                        # One release fence covers every descriptor
                        # store.
                        yield from host.store(
                            desc_addr + 8 * (len(words) - 1), words[-1])
                    else:
                        yield from host.store_posted(
                            desc_addr + 8 * (len(words) - 1), words[-1])
            system.trace.record("host", "descriptor_written", written_data)

            # --- 2. Arm completion --------------------------------------
            yield from completion.arm(system, completion_jobs)

            # --- 3. Dispatch every job -----------------------------------
            system.trace.record("host", "dispatch_start")
            for desc, desc_addr in jobs:
                yield from self.dispatch_strategy.dispatch(
                    system, desc, desc_addr)
            system.trace.record("host", "dispatch_done")

            # --- 4. Host work overlaps the fabric's execution ------------
            if host_work is not None:
                yield from host_work()
                system.trace.record("host", "host_work_done")
                result["host_work_done_cycle"] = system.sim.now

            # --- 5. Wait for all jobs ------------------------------------
            yield from completion.wait(system, completion_jobs)

            system.trace.record("host", "offload_end")
            result["end_cycle"] = system.sim.now

        return program()

    # ------------------------------------------------------------------
    # Launch shapes (parameterizations of the pipeline)
    # ------------------------------------------------------------------
    def offload_program(self, desc: abi.JobDescriptor, desc_addr: int,
                        flag_addr: typing.Optional[int],
                        result: typing.Dict[str, int]) -> typing.Generator:
        """The plain one-job launch.

        ``result`` receives ``start_cycle`` and ``end_cycle``.
        ``flag_addr`` is the polling flag (AMO completion only).
        """
        if self.completion_strategy.uses_flag and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        return self.launch_program(
            [(desc, desc_addr)],
            None if flag_addr is None else [flag_addr], result)

    def overlapped_offload_program(
            self, desc: abi.JobDescriptor, desc_addr: int,
            flag_addr: typing.Optional[int],
            host_work: typing.Callable[[], typing.Generator],
            result: typing.Dict[str, int]) -> typing.Generator:
        """Offload a job, run host work while it executes, then wait.

        The co-operative heterogeneous pattern the paper's class of
        systems targets: the host is *not* idle during the offload — it
        dispatches, runs ``host_work()`` (a host program fragment,
        e.g. its own kernel), and only then synchronizes.  With the
        sync-unit extension an interrupt that arrived during the host
        work leaves the line pending and the WFI falls straight
        through; the baseline simply starts polling late.

        ``result`` additionally receives ``host_work_done_cycle``.
        """
        if self.completion_strategy.uses_flag and flag_addr is None:
            raise OffloadError("AMO completion requires a flag address")
        return self.launch_program(
            [(desc, desc_addr)],
            None if flag_addr is None else [flag_addr], result,
            host_work=host_work)

    def concurrent_offload_program(
            self,
            jobs: typing.Sequence[typing.Tuple[abi.JobDescriptor, int]],
            flag_addrs: typing.Optional[typing.Sequence[int]],
            result: typing.Dict[str, int]) -> typing.Generator:
        """The space-shared launch: several jobs dispatched at once.

        ``jobs`` pairs each descriptor with its memory address; the
        descriptors must target disjoint cluster ranges (the caller —
        :func:`repro.core.concurrent.offload_concurrent` — validates).
        With hardware sync, one threshold equal to the *total* cluster
        count turns the credit counter into a completion barrier across
        all jobs (a single interrupt when the last job drains); with AMO
        completion each job gets its own flag and the host polls them in
        turn.
        """
        return self.launch_program(jobs, flag_addrs, result)
