"""Offload phase breakdown, reconstructed from the trace log.

The paper reasons about offload cost in phases (dispatch, job
execution, completion synchronization).  :class:`OffloadTrace` rebuilds
that breakdown for one measured offload from the markers the host
program and the cluster DM cores record, so experiments can report not
just the total but *where* the cycles went — e.g. that baseline
dispatch grows linearly with M while multicast dispatch does not.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import TraceError
from repro.sim import TraceRecorder


@dataclasses.dataclass(frozen=True)
class ClusterPhases:
    """Cycle timestamps of one cluster's job phases (absolute cycles)."""

    cluster_id: int
    doorbell: int
    awake: int
    decoded: int
    dma_in_done: typing.Optional[int]
    compute_done: typing.Optional[int]
    dma_out_done: typing.Optional[int]
    completion_signalled: int

    @property
    def had_work(self) -> bool:
        """False for clusters that received an empty slice."""
        return self.dma_in_done is not None


@dataclasses.dataclass(frozen=True)
class OffloadTrace:
    """Phase breakdown of one offload (all values in cycles)."""

    start_cycle: int
    descriptor_written: int
    dispatch_start: int
    dispatch_done: int
    end_cycle: int
    clusters: typing.Tuple[ClusterPhases, ...]

    # ------------------------------------------------------------------
    # Derived phase durations
    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Full offload runtime as the host measures it."""
        return self.end_cycle - self.start_cycle

    @property
    def setup_cycles(self) -> int:
        """Runtime entry + descriptor store + completion arming."""
        return self.dispatch_start - self.start_cycle

    @property
    def dispatch_cycles(self) -> int:
        """Doorbell distribution (the phase multicast compresses)."""
        return self.dispatch_done - self.dispatch_start

    @property
    def completion_wait_cycles(self) -> int:
        """Dispatch end to host observing completion."""
        return self.end_cycle - self.dispatch_done

    @property
    def last_completion_cycle(self) -> int:
        """When the final cluster signalled done."""
        return max(c.completion_signalled for c in self.clusters)

    @property
    def sync_overhead_cycles(self) -> int:
        """Last cluster signalling → host observing (the sync tail)."""
        return self.end_cycle - self.last_completion_cycle

    def phase_summary(self) -> typing.Dict[str, int]:
        """The durations as a dict, for tables and assertions."""
        return {
            "setup": self.setup_cycles,
            "dispatch": self.dispatch_cycles,
            "completion_wait": self.completion_wait_cycles,
            "sync_overhead": self.sync_overhead_cycles,
            "total": self.total,
        }


def build_offload_trace(recorder: TraceRecorder, start_cycle: int,
                        end_cycle: int) -> OffloadTrace:
    """Assemble an :class:`OffloadTrace` from a recorder's markers.

    Only markers inside the half-open window ``[start_cycle,
    end_cycle)`` are considered, so systems reused for several
    sequential offloads attribute each marker to the right offload: an
    offload's own ``offload_start`` marker lands exactly at
    ``start_cycle`` (inclusive), while markers recorded at
    ``end_cycle`` belong to whatever the host does next — with a
    closed window, a back-to-back second offload starting on the very
    cycle the first one ended would leak its markers into both.
    Within the window the *first* record per ``(source, label)`` pair
    wins, matching :meth:`~repro.sim.TraceRecorder.cycle_of`.

    Raises
    ------
    TraceError
        If a required marker is missing from the window.  The message
        names the window bounds and the markers that *are* present, so
        a mis-sliced window is diagnosable without dumping the trace.
    """
    # One pass over the window builds the same first-record-wins index
    # the per-source scans used to recompute per cluster (the scans were
    # O(clusters x records), the dominant cost of summarizing a wide
    # offload).
    by_source: typing.Dict[str, typing.Dict[str, int]] = {}
    for record in recorder.records:
        if start_cycle <= record.cycle < end_cycle:
            marks = by_source.get(record.source)
            if marks is None:
                by_source[record.source] = marks = {}
            if record.label not in marks:
                marks[record.label] = record.cycle

    host_marks = by_source.get("host", {})

    def host_cycle(label: str) -> int:
        cycle = host_marks.get(label)
        if cycle is None:
            raise TraceError(
                f"host marker {label!r} missing from trace window "
                f"[{start_cycle}, {end_cycle}); host markers present: "
                f"{sorted(host_marks) or 'none'}")
        return cycle

    clusters = []
    cluster_ids = sorted(
        int(src[len("cluster"):]) for src, marks in by_source.items()
        if src.startswith("cluster") and "doorbell" in marks)
    for cluster_id in cluster_ids:
        source = f"cluster{cluster_id}"
        marks = by_source[source]
        for required in ("doorbell", "awake", "decoded",
                         "completion_signalled"):
            if required not in marks:
                raise TraceError(
                    f"{source} marker {required!r} missing from trace "
                    f"window [{start_cycle}, {end_cycle}); {source} "
                    f"markers present: {sorted(marks)}")
        clusters.append(ClusterPhases(
            cluster_id=cluster_id,
            doorbell=marks["doorbell"],
            awake=marks["awake"],
            decoded=marks["decoded"],
            dma_in_done=marks.get("dma_in_done"),
            compute_done=marks.get("compute_done"),
            dma_out_done=marks.get("dma_out_done"),
            completion_signalled=marks["completion_signalled"],
        ))

    return OffloadTrace(
        start_cycle=start_cycle,
        descriptor_written=host_cycle("descriptor_written"),
        dispatch_start=host_cycle("dispatch_start"),
        dispatch_done=host_cycle("dispatch_done"),
        end_cycle=end_cycle,
        clusters=tuple(clusters),
    )
