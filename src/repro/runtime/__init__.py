"""Host-side offload runtimes.

An offload runtime is the software routine the host core executes to
hand a job to the accelerator and wait for its completion.  The paper
co-designs this routine with two hardware extensions; the four possible
software/hardware pairings are expressed as *variants*:

================ ================== ============================
variant          dispatch           completion
================ ================== ============================
baseline         sequential stores  AMO flag + host polling
multicast_only   one multicast      AMO flag + host polling
hw_sync_only     sequential stores  credit counter + interrupt
extended         one multicast      credit counter + interrupt
================ ================== ============================

``baseline`` and ``extended`` are the two designs Fig. 1 compares;
the two mixed variants isolate each extension's contribution
(ablation A1 in DESIGN.md).
"""

from repro.runtime.api import RUNTIME_VARIANTS, make_runtime
from repro.runtime.protocol import OffloadRuntime
from repro.runtime.trace import ClusterPhases, OffloadTrace

__all__ = [
    "ClusterPhases",
    "OffloadRuntime",
    "OffloadTrace",
    "RUNTIME_VARIANTS",
    "make_runtime",
]
