"""Host-side offload runtimes.

An offload runtime is the software routine the host core executes to
hand a job to the accelerator and wait for its completion.  The paper
co-designs this routine with two hardware extensions; each pairing of a
dispatch strategy and a completion strategy is a registered *variant*
(see :mod:`repro.runtime.strategies`):

================ ================== ============================
variant          dispatch           completion
================ ================== ============================
baseline         sequential stores  AMO flag + host polling
multicast_only   one multicast      AMO flag + host polling
hw_sync_only     sequential stores  credit counter + interrupt
extended         one multicast      credit counter + interrupt
================ ================== ============================

``baseline`` and ``extended`` are the two designs Fig. 1 compares;
the two mixed variants isolate each extension's contribution
(ablation A1 in DESIGN.md).  A new variant is one
:func:`~repro.runtime.strategies.register_variant` call — the factory
(:func:`make_runtime`), the hardware configurator
(``SoCConfig.for_variant``) and the runtime's default naming all
resolve through the same registry.
"""

from repro.runtime.api import RUNTIME_VARIANTS, make_runtime
from repro.runtime.protocol import OffloadRuntime
from repro.runtime.strategies import (
    AmoPollCompletion,
    CompletionStrategy,
    DispatchStrategy,
    MulticastDispatch,
    SequentialStoreDispatch,
    SyncUnitCompletion,
    VariantSpec,
    get_variant,
    register_variant,
    variant_features,
    variant_for_features,
    variant_names,
)
from repro.runtime.trace import ClusterPhases, OffloadTrace

__all__ = [
    "AmoPollCompletion",
    "ClusterPhases",
    "CompletionStrategy",
    "DispatchStrategy",
    "MulticastDispatch",
    "OffloadRuntime",
    "OffloadTrace",
    "RUNTIME_VARIANTS",
    "SequentialStoreDispatch",
    "SyncUnitCompletion",
    "VariantSpec",
    "get_variant",
    "make_runtime",
    "register_variant",
    "variant_features",
    "variant_for_features",
    "variant_names",
]
