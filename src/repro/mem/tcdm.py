"""Per-cluster tightly-coupled data memory (scratchpad)."""

from __future__ import annotations

import numpy

from repro.errors import MemoryError_
from repro.mem.memory import MainMemory, WORD_BYTES


class Tcdm(MainMemory):
    """A cluster's software-managed scratchpad.

    Functionally a small :class:`MainMemory`; the distinction matters
    because job operand slices *must fit* in the TCDM for the cluster's
    cores to work on them (there is no cache), so capacity is a hard
    offload constraint that :mod:`repro.runtime` enforces.

    Bank-conflict behaviour is folded into the kernels' calibrated
    cycles-per-element rates (see :mod:`repro.kernels.base`): Snitch-style
    clusters provision one 64-bit bank port per core times a banking
    factor, and for streaming kernels the average conflict penalty is a
    constant factor — exactly what a per-element rate captures.  The bank
    count is still modelled so kernels can derive rates from it.

    Parameters
    ----------
    size_bytes:
        Scratchpad capacity (Manticore-like default: 128 KiB).
    base:
        Base byte address in the system map.
    num_banks:
        Number of 64-bit SRAM banks (Manticore-like default: 32).
    """

    def __init__(self, size_bytes: int = 128 * 1024, base: int = 0x1000_0000,
                 num_banks: int = 32) -> None:
        super().__init__(size_bytes=size_bytes, base=base)
        if num_banks <= 0:
            raise MemoryError_(f"TCDM needs at least one bank, got {num_banks}")
        self.num_banks = num_banks

    def fits(self, nbytes: int) -> bool:
        """Whether a buffer of ``nbytes`` could ever be allocated here."""
        return 0 < nbytes <= self.size_bytes

    def free_bytes(self) -> int:
        """Bytes still available to the bump allocator."""
        return self.base + self.size_bytes - (self.base + self.allocated_bytes)

    def bank_of(self, addr: int) -> int:
        """Bank index of a word address (word-interleaved mapping)."""
        self._check_aligned(addr)
        if not self.contains(addr):
            raise MemoryError_(f"address {addr:#x} not in TCDM")
        return ((addr - self.base) // WORD_BYTES) % self.num_banks

    def clear(self) -> None:
        """Zero the storage and reset the allocator (job teardown)."""
        self._data[:] = numpy.uint8(0)
        self.reset_allocator()
