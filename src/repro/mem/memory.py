"""NumPy-backed main memory with word access and a bump allocator."""

from __future__ import annotations

import typing

import numpy

from repro.errors import MemoryError_

#: The SoC is a 64-bit system: one word is 8 bytes.
WORD_BYTES = 8


class MainMemory:
    """The shared main memory (HBM-class) of the SoC.

    Storage is a flat byte array.  Access helpers exist at three
    granularities:

    - single 64-bit words (:meth:`read_word` / :meth:`write_word`) —
      used by MMIO-style and host accesses;
    - float64 vectors (:meth:`read_f64` / :meth:`write_f64`) — used by
      experiment setup and result checking;
    - raw byte blocks (:meth:`read_bytes` / :meth:`write_bytes`) — used
      by the DMA engines' functional copies.

    A bump allocator (:meth:`alloc`) hands out experiment buffers; it is
    deliberately simple because simulations are short-lived (allocate,
    run, discard).

    Parameters
    ----------
    size_bytes:
        Capacity.  Defaults suit the experiments in the paper; the SoC
        config can raise it for large sweeps.
    base:
        Base byte address of the memory in the system address map.
    """

    def __init__(self, size_bytes: int = 8 * 1024 * 1024,
                 base: int = 0x8000_0000) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise MemoryError_(
                f"memory size must be a positive multiple of {WORD_BYTES} "
                f"bytes, got {size_bytes}"
            )
        self.base = base
        self.size_bytes = size_bytes
        self._data = numpy.zeros(size_bytes, dtype=numpy.uint8)
        self._next_alloc = base

    # ------------------------------------------------------------------
    # Address checking
    # ------------------------------------------------------------------
    def _offset(self, addr: int, nbytes: int) -> int:
        offset = addr - self.base
        if offset < 0 or offset + nbytes > self.size_bytes:
            raise MemoryError_(
                f"access of {nbytes} bytes at {addr:#x} falls outside main "
                f"memory [{self.base:#x}, {self.base + self.size_bytes:#x})"
            )
        return offset

    def contains(self, addr: int) -> bool:
        """Whether the byte address falls inside this memory."""
        return self.base <= addr < self.base + self.size_bytes

    # ------------------------------------------------------------------
    # Word access
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        """Read one aligned 64-bit word as an unsigned integer."""
        self._check_aligned(addr)
        offset = self._offset(addr, WORD_BYTES)
        return int(self._data[offset:offset + WORD_BYTES].view(numpy.uint64)[0])

    def write_word(self, addr: int, value: int) -> None:
        """Write one aligned 64-bit word (value taken modulo 2**64)."""
        self._check_aligned(addr)
        offset = self._offset(addr, WORD_BYTES)
        self._data[offset:offset + WORD_BYTES].view(numpy.uint64)[0] = (
            value % (1 << 64)
        )

    def read_words(self, addr: int, nwords: int) -> list:
        """Read ``nwords`` consecutive aligned words (one array slice).

        Equivalent to ``nwords`` :meth:`read_word` calls; burst reads
        use it to pay the bounds check and view construction once.
        """
        self._check_aligned(addr)
        offset = self._offset(addr, nwords * WORD_BYTES)
        return self._data[offset:offset + nwords * WORD_BYTES] \
            .view(numpy.uint64).tolist()

    def write_words(self, addr: int, values: typing.Sequence[int]) -> None:
        """Write consecutive aligned words (one array slice).

        Equivalent to one :meth:`write_word` per value (including the
        modulo-2**64 wrap); bulk store paths use it to pay the bounds
        check and view construction once.
        """
        self._check_aligned(addr)
        nbytes = len(values) * WORD_BYTES
        offset = self._offset(addr, nbytes)
        self._data[offset:offset + nbytes].view(numpy.uint64)[:] = [
            value % (1 << 64) for value in values]

    @staticmethod
    def _check_aligned(addr: int) -> None:
        if addr % WORD_BYTES:
            raise MemoryError_(f"unaligned word access at {addr:#x}")

    # ------------------------------------------------------------------
    # Vector access
    # ------------------------------------------------------------------
    def read_f64(self, addr: int, count: int) -> numpy.ndarray:
        """Read ``count`` float64 values starting at ``addr`` (a copy)."""
        self._check_aligned(addr)
        offset = self._offset(addr, count * WORD_BYTES)
        return self._data[offset:offset + count * WORD_BYTES] \
            .view(numpy.float64).copy()

    def write_f64(self, addr: int, values: numpy.ndarray) -> None:
        """Write a float64 vector starting at ``addr``."""
        self._check_aligned(addr)
        values = numpy.asarray(values, dtype=numpy.float64)
        nbytes = values.size * WORD_BYTES
        offset = self._offset(addr, nbytes)
        self._data[offset:offset + nbytes] = values.view(numpy.uint8)

    # ------------------------------------------------------------------
    # Byte-block access (DMA functional copies)
    # ------------------------------------------------------------------
    def read_bytes(self, addr: int, nbytes: int) -> numpy.ndarray:
        """Read a raw byte block (a copy)."""
        offset = self._offset(addr, nbytes)
        return self._data[offset:offset + nbytes].copy()

    def write_bytes(self, addr: int, data: numpy.ndarray) -> None:
        """Write a raw byte block."""
        data = numpy.asarray(data, dtype=numpy.uint8)
        offset = self._offset(addr, data.size)
        self._data[offset:offset + data.size] = data

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = WORD_BYTES) -> int:
        """Reserve ``nbytes`` and return the base address.

        Raises
        ------
        MemoryError_
            If the request is invalid or memory is exhausted.
        """
        if nbytes <= 0:
            raise MemoryError_(f"cannot allocate {nbytes} bytes")
        if align <= 0 or align & (align - 1):
            raise MemoryError_(f"alignment must be a power of two, got {align}")
        addr = (self._next_alloc + align - 1) & ~(align - 1)
        if addr + nbytes > self.base + self.size_bytes:
            padding = addr - self._next_alloc
            free = self.base + self.size_bytes - addr
            raise MemoryError_(
                f"out of memory: {nbytes} bytes requested, {free} free "
                f"after {padding} bytes of alignment padding "
                f"(align={align})"
            )
        self._next_alloc = addr + nbytes
        return addr

    def alloc_f64(self, count: int) -> int:
        """Reserve space for ``count`` float64 values."""
        return self.alloc(count * WORD_BYTES)

    def reset_allocator(self) -> None:
        """Forget all allocations (storage contents are untouched)."""
        self._next_alloc = self.base

    def reset(self) -> None:
        """Restore boot state: allocator rewound, contents zeroed.

        Only the allocated prefix is cleared: the bump allocator is
        monotonic, so every functional write since boot landed below
        ``_next_alloc``, and zeroing just that prefix is much cheaper
        than re-zeroing a multi-megabyte array per sweep point.
        """
        used = self._next_alloc - self.base
        if used:
            self._data[:used] = 0
        self._next_alloc = self.base

    def snapshot(self) -> tuple:
        """Capture allocator position and allocated-prefix contents.

        Relies on the same invariant as :meth:`reset`: the bump
        allocator is monotonic and every functional write lands below
        ``_next_alloc``, so the prefix *is* the dirty state.  Cost is
        O(allocated), not O(capacity).
        """
        used = self._next_alloc - self.base
        return (self._next_alloc, self._data[:used].copy())

    def restore(self, state: tuple) -> None:
        """Restore a :meth:`snapshot` in O(dirty state).

        Bytes dirtied since the snapshot but beyond its allocated
        prefix are re-zeroed; bytes inside the prefix are overwritten
        from the captured copy.
        """
        next_alloc, prefix = state
        used = self._next_alloc - self.base
        if used > prefix.size:
            self._data[prefix.size:used] = 0
        self._data[:prefix.size] = prefix
        self._next_alloc = next_alloc

    @property
    def allocated_bytes(self) -> int:
        """Bytes handed out by the allocator so far (including padding)."""
        return self._next_alloc - self.base
