"""System address map: routing word accesses to memories and MMIO devices."""

from __future__ import annotations

import bisect
import dataclasses
import typing

from repro import flags
from repro.errors import MemoryError_
from repro.mem.memory import MainMemory

#: Re-exported from :mod:`repro.flags`, the single source of truth for
#: every ``REPRO_*`` gate; kept here for backwards compatibility.
LINEAR_ROUTING_ENV = flags.LINEAR_ROUTING_ENV


class MmioDevice:
    """Interface for memory-mapped peripherals.

    Subclasses implement word-granular register access relative to the
    device's base (``offset`` is ``addr - region.base``).  MMIO accesses
    are functional; the interconnect applies timing before invoking them
    and may trigger side effects (e.g. a write to the sync unit's
    increment register bumps the credit counter).

    Devices participate in MMIO access auditing through ``auditor``
    (an optional :class:`repro.sim.diag.AccessAuditor`, installed by the
    system builder): anomalous accesses — unknown offsets, writes to
    read-only registers, protocol violations like doorbells nobody is
    waiting on — are recorded there for post-mortems, and the silent
    ones escalate to :class:`~repro.errors.ProtocolError` in strict
    mode.
    """

    #: Class-level default; systems install a shared AccessAuditor.
    auditor = None

    def audit(self, kind: str, offset: int,
              value: typing.Optional[int] = None, detail: str = "",
              fatal: bool = False) -> None:
        """Report one anomalous access to the installed auditor (if any).

        ``fatal=True`` means the caller raises regardless (the record is
        purely for post-mortems); silent anomalies raise
        :class:`~repro.errors.ProtocolError` here in strict mode.
        """
        if self.auditor is not None:
            self.auditor.report(
                device=type(self).__name__, kind=kind, offset=offset,
                value=value, detail=detail, fatal=fatal)

    def read_register(self, offset: int) -> int:
        """Read the register at byte ``offset``; override in devices."""
        self.audit("unknown-offset-read", offset, fatal=True)
        raise MemoryError_(
            f"{type(self).__name__} has no readable register at +{offset:#x}"
        )

    def write_register(self, offset: int, value: int) -> None:
        """Write the register at byte ``offset``; override in devices."""
        self.audit("unknown-offset-write", offset, value=value, fatal=True)
        raise MemoryError_(
            f"{type(self).__name__} has no writable register at +{offset:#x}"
        )


@dataclasses.dataclass(frozen=True)
class Region:
    """A half-open address range ``[base, base + size)`` bound to a target.

    ``target`` is either a :class:`~repro.mem.memory.MainMemory`-like
    storage (word access by absolute address) or an :class:`MmioDevice`
    (register access by offset).

    ``end`` is stored at construction rather than recomputed: containment
    checks run once per routed word access, which makes it one of the
    hottest attribute reads in a full-system simulation.
    """

    name: str
    base: int
    size: int
    target: typing.Union[MainMemory, MmioDevice]
    end: int = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemoryError_(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise MemoryError_(f"region {self.name!r} has negative base")
        object.__setattr__(self, "end", self.base + self.size)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class PortRouter:
    """A routing handle for one initiator port.

    Wraps an :class:`AddressMap` with a private last-region hit slot:
    real access streams are overwhelmingly same-region runs (a DM core
    bursting a descriptor, the host hammering one completion flag), so
    nearly every lookup resolves with two comparisons instead of a
    bisect.  Each port gets its own slot so interleaved streams from
    different initiators cannot thrash a shared one.
    """

    __slots__ = ("_map", "_hit")

    def __init__(self, address_map: "AddressMap") -> None:
        self._map = address_map
        self._hit: typing.Optional[Region] = None

    def region_at(self, addr: int) -> Region:
        """The region containing ``addr`` (port-cached lookup)."""
        if self._map._linear:
            return self._map.region_at(addr)
        hit = self._hit
        if hit is not None and hit.base <= addr < hit.end:
            return hit
        region = self._map.region_at(addr)
        self._hit = region
        return region

    def read_word(self, addr: int) -> int:
        """Route a word read to the owning region's target."""
        region = self.region_at(addr)
        target = region.target
        if isinstance(target, MmioDevice):
            return target.read_register(addr - region.base)
        return target.read_word(addr)

    def read_words(self, addr: int, nwords: int) -> typing.List[int]:
        """Route a naturally-ordered multi-word read (burst data phase).

        Resolves the region once when the whole range falls inside a
        plain-memory region — the overwhelmingly common case, a DM core
        bursting a descriptor out of DRAM — and falls back to word-by-
        word routing across region boundaries or MMIO targets.
        Functionally identical to ``nwords`` :meth:`read_word` calls.
        """
        region = self.region_at(addr)
        target = region.target
        if (not isinstance(target, MmioDevice)
                and addr + 8 * nwords <= region.end):
            return target.read_words(addr, nwords)
        return [self.read_word(addr + 8 * i) for i in range(nwords)]

    def write_word(self, addr: int, value: int) -> None:
        """Route a word write to the owning region's target."""
        region = self.region_at(addr)
        target = region.target
        if isinstance(target, MmioDevice):
            target.write_register(addr - region.base, value)
        else:
            target.write_word(addr, value)
        watchpoints = self._map._watchpoints
        if watchpoints:
            callback = watchpoints.get(addr)
            if callback is not None:
                callback(value)

    def amo_add(self, addr: int, operand: int) -> int:
        """Atomic fetch-and-add on a word; returns the *old* value.

        MMIO registers also accept AMOs (the baseline completion flag
        lives in main memory, but clusters could equally target a
        device register).
        """
        old = self.read_word(addr)
        self.write_word(addr, old + operand)
        return old


class AddressMap:
    """An ordered, non-overlapping collection of :class:`Region` objects.

    Regions are kept sorted by base at all times (bisect insertion, so
    adding N regions costs O(N log N) comparisons instead of a full
    re-sort and linear overlap scan per add), and lookups bisect over
    the sorted base array with a one-slot last-hit cache in front.
    Initiators that issue long same-region access streams should route
    through a private :meth:`port_router` for an uncontended hit slot.
    """

    def __init__(self) -> None:
        self._regions: typing.List[Region] = []
        self._bases: typing.List[int] = []
        self._by_name: typing.Dict[str, Region] = {}
        self._hit: typing.Optional[Region] = None
        #: addr -> callback(value), invoked after a routed word write
        #: lands at that exact address (see :meth:`watch`).
        self._watchpoints: typing.Dict[int, typing.Callable[[int], None]] = {}
        #: A/B lever (see :data:`LINEAR_ROUTING_ENV`): sampled once at
        #: construction so the hot path pays one attribute read.
        self._linear = flags.linear_routing()
        self._router = PortRouter(self)

    def add(self, region: Region) -> Region:
        """Register a region; rejects overlaps and duplicate names.

        Only the two would-be neighbours in base order need checking:
        the map is always sorted and non-overlapping, so any overlap
        must involve an adjacent region.
        """
        if self._linear:
            # A/B reference: the original scan-all-then-resort insert.
            for existing in self._regions:
                if existing.overlaps(region):
                    raise MemoryError_(
                        f"region {region.name!r} "
                        f"[{region.base:#x}, {region.end:#x}) "
                        f"overlaps {existing.name!r} "
                        f"[{existing.base:#x}, {existing.end:#x})"
                    )
                if existing.name == region.name:
                    raise MemoryError_(
                        f"duplicate region name {region.name!r}")
            self._regions.append(region)
            self._regions.sort(key=lambda r: r.base)
            self._bases = [r.base for r in self._regions]
            self._by_name[region.name] = region
            return region
        if region.name in self._by_name:
            raise MemoryError_(f"duplicate region name {region.name!r}")
        index = bisect.bisect_right(self._bases, region.base)
        for neighbour_index in (index - 1, index):
            if 0 <= neighbour_index < len(self._regions):
                existing = self._regions[neighbour_index]
                if existing.overlaps(region):
                    raise MemoryError_(
                        f"region {region.name!r} "
                        f"[{region.base:#x}, {region.end:#x}) "
                        f"overlaps {existing.name!r} "
                        f"[{existing.base:#x}, {existing.end:#x})"
                    )
        self._regions.insert(index, region)
        self._bases.insert(index, region.base)
        self._by_name[region.name] = region
        return region

    def add_device(self, name: str, base: int, size: int,
                   device: MmioDevice) -> Region:
        """Convenience wrapper for registering an MMIO device."""
        return self.add(Region(name=name, base=base, size=size, target=device))

    def port_router(self) -> PortRouter:
        """A routing handle with a private last-region hit cache."""
        return PortRouter(self)

    def region_at(self, addr: int) -> Region:
        """The region containing ``addr``.

        Raises
        ------
        MemoryError_
            If the address is unmapped.
        """
        if self._linear:
            # A/B reference: scan with per-probe end arithmetic, as the
            # original property-based ``Region.end`` paid.
            for region in self._regions:
                if region.base <= addr < region.base + region.size:
                    return region
            raise MemoryError_(f"access to unmapped address {addr:#x}")
        hit = self._hit
        if hit is not None and hit.base <= addr < hit.end:
            return hit
        index = bisect.bisect_right(self._bases, addr) - 1
        if index >= 0:
            region = self._regions[index]
            if addr < region.end:
                self._hit = region
                return region
        raise MemoryError_(f"access to unmapped address {addr:#x}")

    def region_named(self, name: str) -> Region:
        """The region with the given name (KeyError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no region named {name!r}") from None

    # ------------------------------------------------------------------
    # Watchpoints
    # ------------------------------------------------------------------
    def watch(self, addr: int,
              callback: typing.Callable[[int], None]) -> None:
        """Invoke ``callback(value)`` whenever a routed word write lands
        at exactly ``addr``.

        One callback per address.  Watchpoints observe writes routed
        through the map (interconnect deliveries, AMOs); functional
        block transfers that bypass the map (e.g. DMA ``write_f64``)
        are not observed.  Used by the offload runtimes to fast-forward
        the baseline completion-poll loop.
        """
        if addr in self._watchpoints:
            raise MemoryError_(
                f"watchpoint already registered at {addr:#x}")
        self._watchpoints[addr] = callback

    def unwatch(self, addr: int) -> None:
        """Remove the watchpoint at ``addr`` (no-op if absent)."""
        self._watchpoints.pop(addr, None)

    def clear_watchpoints(self) -> None:
        """Drop every watchpoint (system reset)."""
        self._watchpoints.clear()

    @property
    def has_watchpoints(self) -> bool:
        """Whether any watchpoint is armed (bulk store paths must then
        fall back to per-word delivery so callbacks fire on time)."""
        return bool(self._watchpoints)

    # ------------------------------------------------------------------
    # Word-level routed access (used by the interconnect at delivery time)
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        """Route a word read to the owning region's target."""
        return self._router.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        """Route a word write to the owning region's target."""
        self._router.write_word(addr, value)

    def amo_add(self, addr: int, operand: int) -> int:
        """Atomic fetch-and-add on a word; returns the *old* value."""
        return self._router.amo_add(addr, operand)

    @property
    def regions(self) -> typing.Tuple[Region, ...]:
        return tuple(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
