"""System address map: routing word accesses to memories and MMIO devices."""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import MemoryError_
from repro.mem.memory import MainMemory


class MmioDevice:
    """Interface for memory-mapped peripherals.

    Subclasses implement word-granular register access relative to the
    device's base (``offset`` is ``addr - region.base``).  MMIO accesses
    are functional; the interconnect applies timing before invoking them
    and may trigger side effects (e.g. a write to the sync unit's
    increment register bumps the credit counter).
    """

    def read_register(self, offset: int) -> int:
        """Read the register at byte ``offset``; override in devices."""
        raise MemoryError_(
            f"{type(self).__name__} has no readable register at +{offset:#x}"
        )

    def write_register(self, offset: int, value: int) -> None:
        """Write the register at byte ``offset``; override in devices."""
        raise MemoryError_(
            f"{type(self).__name__} has no writable register at +{offset:#x}"
        )


@dataclasses.dataclass(frozen=True)
class Region:
    """A half-open address range ``[base, base + size)`` bound to a target.

    ``target`` is either a :class:`~repro.mem.memory.MainMemory`-like
    storage (word access by absolute address) or an :class:`MmioDevice`
    (register access by offset).
    """

    name: str
    base: int
    size: int
    target: typing.Union[MainMemory, MmioDevice]

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MemoryError_(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise MemoryError_(f"region {self.name!r} has negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class AddressMap:
    """An ordered, non-overlapping collection of :class:`Region` objects.

    Lookup is linear over a handful of regions, which profiling shows is
    never hot: bulk data moves through the DMA engines' block copies,
    not through per-word map lookups.
    """

    def __init__(self) -> None:
        self._regions: typing.List[Region] = []

    def add(self, region: Region) -> Region:
        """Register a region; rejects overlaps and duplicate names."""
        for existing in self._regions:
            if existing.overlaps(region):
                raise MemoryError_(
                    f"region {region.name!r} [{region.base:#x}, {region.end:#x}) "
                    f"overlaps {existing.name!r} "
                    f"[{existing.base:#x}, {existing.end:#x})"
                )
            if existing.name == region.name:
                raise MemoryError_(f"duplicate region name {region.name!r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def add_device(self, name: str, base: int, size: int,
                   device: MmioDevice) -> Region:
        """Convenience wrapper for registering an MMIO device."""
        return self.add(Region(name=name, base=base, size=size, target=device))

    def region_at(self, addr: int) -> Region:
        """The region containing ``addr``.

        Raises
        ------
        MemoryError_
            If the address is unmapped.
        """
        for region in self._regions:
            if region.contains(addr):
                return region
        raise MemoryError_(f"access to unmapped address {addr:#x}")

    def region_named(self, name: str) -> Region:
        """The region with the given name (KeyError if absent)."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    # ------------------------------------------------------------------
    # Word-level routed access (used by the interconnect at delivery time)
    # ------------------------------------------------------------------
    def read_word(self, addr: int) -> int:
        """Route a word read to the owning region's target."""
        region = self.region_at(addr)
        if isinstance(region.target, MmioDevice):
            return region.target.read_register(addr - region.base)
        return region.target.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        """Route a word write to the owning region's target."""
        region = self.region_at(addr)
        if isinstance(region.target, MmioDevice):
            region.target.write_register(addr - region.base, value)
            return
        region.target.write_word(addr, value)

    def amo_add(self, addr: int, operand: int) -> int:
        """Atomic fetch-and-add on a word; returns the *old* value.

        MMIO registers also accept AMOs (the baseline completion flag
        lives in main memory, but clusters could equally target a
        device register).
        """
        old = self.read_word(addr)
        self.write_word(addr, old + operand)
        return old

    @property
    def regions(self) -> typing.Tuple[Region, ...]:
        return tuple(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
