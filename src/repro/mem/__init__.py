"""Memory subsystem models.

Functional state (what is stored where) is kept separate from timing
(when an access completes): storage classes here mutate state
instantaneously, while the interconnect (:mod:`repro.noc`) and the DMA
engines (:mod:`repro.cluster.dma`) decide *when* those mutations happen
and how long the initiator stalls.

Contents
--------
:class:`MainMemory`
    NumPy-backed shared main memory (the HBM/L2 the paper's DMA
    transfers hit), with a bump allocator for experiment buffers.
:class:`Tcdm`
    Per-cluster tightly-coupled data memory (scratchpad).
:class:`AddressMap` / :class:`Region`
    Routes word accesses to memories and MMIO devices.
:class:`MmioDevice`
    Interface implemented by peripherals (sync unit, mailboxes).
"""

from repro.mem.map import AddressMap, MmioDevice, Region
from repro.mem.memory import MainMemory, WORD_BYTES
from repro.mem.tcdm import Tcdm

__all__ = [
    "AddressMap",
    "MainMemory",
    "MmioDevice",
    "Region",
    "Tcdm",
    "WORD_BYTES",
]
