"""Host/device job-descriptor ABI.

The host writes a job descriptor into shared memory and rings each
selected cluster's mailbox with its pointer; the clusters' DM cores
fetch and decode it.  Both sides of the system (host runtime in
:mod:`repro.runtime`, device runtime in :mod:`repro.cluster.dm_core`)
share this encoding, so it lives in its own dependency-free module.

Layout (64-bit words, in order)::

    0  kernel_id          index into the sorted kernel registry
    1  n                  problem size (work items)
    2  num_clusters       M, the offload width
    3  first_cluster      base of the cluster range [first, first+M)
    4  sync_mode          SYNC_MODE_AMO or SYNC_MODE_SYNCUNIT
    5  completion_addr    AMO flag address / sync-unit increment register
    6  exec_mode          EXEC_MODE_PHASED or EXEC_MODE_DOUBLE_BUFFERED
    7  num_scalars        S
    8..8+S                scalar arguments as raw IEEE-754 bits
    ...                   input buffer addresses (kernel.input_names order)
    ...                   output buffer addresses (kernel.output_names order)
"""

from __future__ import annotations

import dataclasses
import struct
import typing

from repro.errors import OffloadError
from repro.kernels.base import Kernel
from repro.kernels.registry import get_kernel, kernel_names

#: Completion via atomic fetch-and-add on a shared-memory flag that the
#: host polls (baseline).
SYNC_MODE_AMO = 0
#: Completion via posted write to the credit-counter sync unit, which
#: interrupts the host at threshold (the paper's dedicated hardware).
SYNC_MODE_SYNCUNIT = 1

#: Device runtime stages the whole slice, computes, writes back (the
#: paper's protocol, whose phases Eq. 1 adds up).
EXEC_MODE_PHASED = 0
#: Device runtime pipelines chunked DMA with compute (double buffering),
#: overlapping the memory term with the compute term.
EXEC_MODE_DOUBLE_BUFFERED = 1

_HEADER_WORDS = 8


def kernel_id(name: str) -> int:
    """Stable numeric ID of a kernel (its index in the sorted registry)."""
    names = kernel_names()
    try:
        return names.index(name)
    except ValueError:
        raise OffloadError(f"kernel {name!r} is not registered") from None


def kernel_from_id(ident: int) -> Kernel:
    """Inverse of :func:`kernel_id`."""
    names = kernel_names()
    if not 0 <= ident < len(names):
        raise OffloadError(f"invalid kernel id {ident}")
    return get_kernel(names[ident])


def float_to_bits(value: float) -> int:
    """IEEE-754 bit pattern of a float64, as an unsigned word."""
    return struct.unpack("<Q", struct.pack("<d", float(value)))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<d", struct.pack("<Q", bits % (1 << 64)))[0]


@dataclasses.dataclass(frozen=True)
class JobDescriptor:
    """A fully-specified offload job, as both sides of the ABI see it."""

    kernel_name: str
    n: int
    num_clusters: int
    sync_mode: int
    completion_addr: int
    scalars: typing.Mapping[str, float]
    input_addrs: typing.Mapping[str, int]
    output_addrs: typing.Mapping[str, int]
    exec_mode: int = EXEC_MODE_PHASED
    #: Base of the cluster range the job runs on: clusters
    #: ``[first_cluster, first_cluster + num_clusters)``.  Non-zero for
    #: space-shared concurrent offloads.
    first_cluster: int = 0

    def __post_init__(self) -> None:
        kernel = get_kernel(self.kernel_name)  # raises if unknown
        if self.n <= 0:
            raise OffloadError(f"job size must be positive, got {self.n}")
        if self.num_clusters <= 0:
            raise OffloadError(
                f"need at least one cluster, got {self.num_clusters}")
        if self.first_cluster < 0:
            raise OffloadError(
                f"first cluster must be >= 0, got {self.first_cluster}")
        if self.sync_mode not in (SYNC_MODE_AMO, SYNC_MODE_SYNCUNIT):
            raise OffloadError(f"invalid sync mode {self.sync_mode}")
        if self.exec_mode not in (EXEC_MODE_PHASED,
                                  EXEC_MODE_DOUBLE_BUFFERED):
            raise OffloadError(f"invalid exec mode {self.exec_mode}")
        if set(self.scalars) != set(kernel.scalar_names):
            raise OffloadError(
                f"scalars {sorted(self.scalars)} do not match kernel "
                f"{self.kernel_name!r} ({list(kernel.scalar_names)})")
        if set(self.input_addrs) != set(kernel.input_names):
            raise OffloadError(
                f"input buffers {sorted(self.input_addrs)} do not match "
                f"kernel {self.kernel_name!r} ({list(kernel.input_names)})")
        if set(self.output_addrs) != set(kernel.output_names):
            raise OffloadError(
                f"output buffers {sorted(self.output_addrs)} do not match "
                f"kernel {self.kernel_name!r} ({list(kernel.output_names)})")

    @property
    def kernel(self) -> Kernel:
        """The kernel instance this job runs."""
        return get_kernel(self.kernel_name)

    @property
    def words(self) -> int:
        """Descriptor size in 64-bit words."""
        kernel = self.kernel
        return (_HEADER_WORDS + len(kernel.scalar_names)
                + len(kernel.input_names) + len(kernel.output_names))


def descriptor_words(kernel: Kernel) -> int:
    """Descriptor size in words for a job running ``kernel``."""
    return (_HEADER_WORDS + len(kernel.scalar_names)
            + len(kernel.input_names) + len(kernel.output_names))


def encode_descriptor(desc: JobDescriptor) -> typing.List[int]:
    """Serialize a descriptor to the word list the host stores to memory."""
    kernel = desc.kernel
    words = [
        kernel_id(desc.kernel_name),
        desc.n,
        desc.num_clusters,
        desc.first_cluster,
        desc.sync_mode,
        desc.completion_addr,
        desc.exec_mode,
        len(kernel.scalar_names),
    ]
    words.extend(float_to_bits(desc.scalars[name])
                 for name in kernel.scalar_names)
    words.extend(desc.input_addrs[name] for name in kernel.input_names)
    words.extend(desc.output_addrs[name] for name in kernel.output_names)
    return words


def decode_descriptor(words: typing.Sequence[int]) -> JobDescriptor:
    """Parse the word list a DM core fetched back into a descriptor.

    Raises
    ------
    OffloadError
        On truncated or inconsistent encodings.
    """
    if len(words) < _HEADER_WORDS:
        raise OffloadError(
            f"descriptor truncated: {len(words)} < {_HEADER_WORDS} words")
    kernel = kernel_from_id(words[0])
    (n, num_clusters, first_cluster, sync_mode, completion_addr, exec_mode,
     num_scalars) = words[1:8]
    if num_scalars != len(kernel.scalar_names):
        raise OffloadError(
            f"descriptor scalar count {num_scalars} does not match kernel "
            f"{kernel.name!r} ({len(kernel.scalar_names)})")
    expected = descriptor_words(kernel)
    if len(words) < expected:
        raise OffloadError(
            f"descriptor truncated: {len(words)} < {expected} words")
    cursor = _HEADER_WORDS
    scalars = {}
    for name in kernel.scalar_names:
        scalars[name] = bits_to_float(words[cursor])
        cursor += 1
    input_addrs = {}
    for name in kernel.input_names:
        input_addrs[name] = words[cursor]
        cursor += 1
    output_addrs = {}
    for name in kernel.output_names:
        output_addrs[name] = words[cursor]
        cursor += 1
    return JobDescriptor(
        kernel_name=kernel.name, n=n, num_clusters=num_clusters,
        first_cluster=first_cluster, sync_mode=sync_mode,
        completion_addr=completion_addr, exec_mode=exec_mode,
        scalars=scalars, input_addrs=input_addrs,
        output_addrs=output_addrs,
    )
