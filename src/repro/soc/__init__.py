"""SoC top level: configuration, the credit-counter sync unit, and the
Manticore-class system builder that wires host, clusters, memory and
interconnect together."""

from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.syncunit import SyncUnit

__all__ = ["ManticoreSystem", "SoCConfig", "SyncUnit"]
