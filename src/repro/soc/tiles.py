"""Tile classes: declarative specs of heterogeneous compute tiles.

The paper derives its model (Eq. 1) for a homogeneous fabric of Snitch
clusters, but nothing in the offload pipeline — dispatch, DMA-in,
compute, DMA-out, completion — is Snitch-specific.  A
:class:`TileClass` captures what *does* differ between accelerator
classes:

- **Timing**: worker count, dispatch/decode/wake latencies, barrier
  cost, DMA setup, and per-kernel compute rates (cycles/element as a
  :class:`~repro.kernels.base.KernelTiming` rational).
- **Cost**: per-tile silicon area and power, which the fabric-level
  budget validation (:class:`~repro.soc.config.SoCConfig`) and the
  fabric-selection decision (:func:`repro.core.decision.choose_fabric`)
  trade off against runtime.

Every field except ``name`` is optional: ``None`` means *inherit the
SoC-level cluster knob*, so the default :data:`SNITCH` class — all
fields ``None``, no kernel-rate overrides — resolves to exactly the
homogeneous cluster the rest of the codebase has always simulated.
That inheritance is what keeps the golden cycle-identity suite exact:
a fabric of default-class groups is bit-for-bit the legacy SoC.

An empty ``kernel_rates`` tuple means "use each kernel's own timing"
(the Snitch rates baked into the kernel classes); a non-empty tuple is
a complete rate table and a kernel missing from it raises
:class:`~repro.errors.ConfigError` naming the class and kernel —
misconfigured fabrics must fail at configuration time, not deep inside
a simulation.

This module sits at the bottom of the ``soc`` layer: it may import
only :mod:`repro.errors` and :mod:`repro.kernels.base` (enforced by
``tools/check_imports.py``), so cluster/soc/core layers can all build
on it without cycles.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.kernels.base import KernelTiming

#: Rate-table entry: ``(kernel_name, (setup_cycles, cpe_num, cpe_den))``.
#: Tuples (not dicts) keep :class:`TileClass` hashable and
#: ``dataclasses.asdict``-able, which is what lets a fabric embedded in
#: :class:`~repro.soc.config.SoCConfig` contribute every rate to
#: ``SoCConfig.digest()`` automatically.
KernelRate = typing.Tuple[str, typing.Tuple[int, int, int]]

#: TileClass fields that resolve against a SoCConfig cluster knob when
#: left ``None``.  Maps field name → the SoCConfig attribute it
#: inherits from.
INHERITED_FIELDS: typing.Dict[str, str] = {
    "cores_per_tile": "cores_per_cluster",
    "tcdm_bytes": "tcdm_bytes",
    "tcdm_banks": "tcdm_banks",
    "wake_latency": "cluster_wake_latency",
    "dm_decode_cycles": "dm_decode_cycles",
    "dma_setup_cycles": "dma_setup_cycles",
    "barrier_latency": "barrier_latency",
    "worker_wake_latency": "worker_wake_latency",
}

#: Inherited fields that must resolve to a positive value (the rest
#: only need to be non-negative).
_POSITIVE_FIELDS = frozenset({"cores_per_tile", "tcdm_bytes", "tcdm_banks"})


def _check_rates(class_name: str, kernel_rates: typing.Tuple[KernelRate, ...]
                 ) -> None:
    seen: typing.Set[str] = set()
    for entry in kernel_rates:
        try:
            kernel_name, (setup, num, den) = entry
        except (TypeError, ValueError):
            raise ConfigError(
                f"tile class {class_name!r}: malformed kernel rate entry "
                f"{entry!r}; expected (kernel_name, (setup, cpe_num, "
                "cpe_den))") from None
        if not isinstance(kernel_name, str) or not kernel_name:
            raise ConfigError(
                f"tile class {class_name!r}: kernel rate name must be a "
                f"non-empty string, got {kernel_name!r}")
        if kernel_name in seen:
            raise ConfigError(
                f"tile class {class_name!r}: duplicate kernel rate for "
                f"{kernel_name!r}")
        seen.add(kernel_name)
        if setup < 0 or num <= 0 or den <= 0:
            raise ConfigError(
                f"tile class {class_name!r}: invalid rate for kernel "
                f"{kernel_name!r}: setup={setup}, cpe={num}/{den} "
                "(setup must be >= 0, the rate positive)")


def _timing_for(class_name: str,
                kernel_rates: typing.Tuple[KernelRate, ...],
                kernel_name: str) -> typing.Optional[KernelTiming]:
    """Shared lookup behind ``TileClass``/``ResolvedTile.timing_for``."""
    if not kernel_rates:
        return None
    for name, (setup, num, den) in kernel_rates:
        if name == kernel_name:
            return KernelTiming(setup_cycles=setup, cpe_num=num, cpe_den=den)
    rated = ", ".join(sorted(name for name, _rate in kernel_rates))
    raise ConfigError(
        f"tile class {class_name!r} has no compute rate for kernel "
        f"{kernel_name!r}; rated kernels: {rated}")


@dataclasses.dataclass(frozen=True)
class TileClass:
    """Declarative spec of one compute-tile flavour.

    ``None`` timing fields inherit the matching
    :class:`~repro.soc.config.SoCConfig` cluster knob at resolution
    time (:meth:`SoCConfig.resolve_tile`); see
    :data:`INHERITED_FIELDS` for the mapping.
    """

    #: Class name; also the registry key for built-in classes.
    name: str
    #: Worker cores per tile (None → ``cores_per_cluster``).
    cores_per_tile: typing.Optional[int] = None
    #: Scratchpad capacity (None → ``tcdm_bytes``).
    tcdm_bytes: typing.Optional[int] = None
    #: Scratchpad banks (None → ``tcdm_banks``).
    tcdm_banks: typing.Optional[int] = None
    #: Mailbox doorbell to DM-core fetch (None → ``cluster_wake_latency``).
    wake_latency: typing.Optional[int] = None
    #: Descriptor decode on the DM core (None → ``dm_decode_cycles``).
    dm_decode_cycles: typing.Optional[int] = None
    #: DMA programming cost (None → ``dma_setup_cycles``).  Overriding
    #: this is legal but forfeits the DMA fast path: the shared memory
    #: channels reserve in closed form only at the fabric-wide setup
    #: lead, so a mismatched lead falls back to the reference
    #: setup-then-transfer event pair (cycle-correct, just slower).
    dma_setup_cycles: typing.Optional[int] = None
    #: Intra-tile barrier cost (None → ``barrier_latency``).
    barrier_latency: typing.Optional[int] = None
    #: Worker wake from DM-core kick (None → ``worker_wake_latency``).
    worker_wake_latency: typing.Optional[int] = None
    #: Complete per-kernel compute-rate table, or empty to use each
    #: kernel's own (Snitch) timing.
    kernel_rates: typing.Tuple[KernelRate, ...] = ()
    #: Active power per tile (mW), the budget/energy-cost figure.
    tile_power: float = 25.0
    #: Silicon area per tile (mm^2), the budget/area-cost figure.
    area_mm2: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(
                f"tile class name must be a non-empty string, "
                f"got {self.name!r}")
        for field in INHERITED_FIELDS:
            value = getattr(self, field)
            if value is None:
                continue
            if field in _POSITIVE_FIELDS:
                if value <= 0:
                    raise ConfigError(
                        f"tile class {self.name!r}: {field} must be "
                        f"positive, got {value}")
            elif value < 0:
                raise ConfigError(
                    f"tile class {self.name!r}: {field} must be >= 0, "
                    f"got {value}")
        _check_rates(self.name, self.kernel_rates)
        if self.tile_power < 0:
            raise ConfigError(
                f"tile class {self.name!r}: tile_power must be >= 0, "
                f"got {self.tile_power}")
        if self.area_mm2 < 0:
            raise ConfigError(
                f"tile class {self.name!r}: area_mm2 must be >= 0, "
                f"got {self.area_mm2}")

    def timing_for(self, kernel_name: str) -> typing.Optional[KernelTiming]:
        """Compute timing for ``kernel_name`` on this class.

        ``None`` means "no override" — use the kernel's own timing
        (the default-class passthrough, which preserves bit-identity
        even for kernels that override ``compute_cycles``).  A class
        *with* a rate table must rate every kernel it runs:

        Raises
        ------
        ConfigError
            If this class has a rate table but no entry for
            ``kernel_name``.
        """
        return _timing_for(self.name, self.kernel_rates, kernel_name)

    @property
    def is_default(self) -> bool:
        """True when every knob inherits and no rates are overridden."""
        return (not self.kernel_rates
                and all(getattr(self, field) is None
                        for field in INHERITED_FIELDS))


@dataclasses.dataclass(frozen=True)
class ResolvedTile:
    """A :class:`TileClass` with every ``None`` filled from a config.

    What the system builder and batch planner consume: all timing
    fields are concrete ints, so no call site ever needs the "inherit"
    fallback logic again.
    """

    class_name: str
    cores_per_tile: int
    tcdm_bytes: int
    tcdm_banks: int
    wake_latency: int
    dm_decode_cycles: int
    dma_setup_cycles: int
    barrier_latency: int
    worker_wake_latency: int
    kernel_rates: typing.Tuple[KernelRate, ...] = ()
    tile_power: float = 25.0
    area_mm2: float = 1.0

    def timing_for(self, kernel_name: str) -> typing.Optional[KernelTiming]:
        """Same contract as :meth:`TileClass.timing_for`."""
        return _timing_for(self.class_name, self.kernel_rates, kernel_name)


@dataclasses.dataclass(frozen=True)
class TileGroup:
    """A contiguous run of ``count`` identical tiles in the fabric.

    ``tile`` accepts either a :class:`TileClass` instance or a
    registered class name (resolved through :func:`get_tile_class`).
    The instance is stored, not the name, so
    ``dataclasses.asdict(config)`` — and therefore
    ``SoCConfig.digest()`` — covers every timing field of every class
    in the fabric.
    """

    name: str
    tile: TileClass
    count: int

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(
                f"tile group name must be a non-empty string, "
                f"got {self.name!r}")
        if isinstance(self.tile, str):
            object.__setattr__(self, "tile", get_tile_class(self.tile))
        elif not isinstance(self.tile, TileClass):
            raise ConfigError(
                f"tile group {self.name!r}: tile must be a TileClass or a "
                f"registered class name, got {self.tile!r}")
        if not isinstance(self.count, int) or self.count < 1:
            raise ConfigError(
                f"tile group {self.name!r} (class {self.tile.name!r}) "
                f"must have at least one tile, got count={self.count!r}")


@dataclasses.dataclass(frozen=True)
class ResolvedGroup:
    """One fabric group with its tile resolved and its span placed."""

    name: str
    tile: ResolvedTile
    count: int
    #: First cluster id of the group's contiguous span.
    start: int


#: The homogeneous default: every knob inherits the SoCConfig cluster
#: knobs, every kernel uses its own Snitch timing.  A fabric of SNITCH
#: groups is bit-identical to the legacy homogeneous SoC.
SNITCH = TileClass(name="snitch")

#: A wide-datapath accelerator class: much faster streaming compute
#: (~1/4 of the Snitch cycles/element) on half the cores, bought with a
#: heavyweight dispatch front-end (8x decode, 4x wake) and a bigger,
#: hungrier tile.  Its runtime curve crosses Snitch's as N grows —
#: exactly the shape the fabric-selection decision
#: (:func:`repro.core.decision.choose_fabric`) trades off.
#: ``dma_setup_cycles`` deliberately inherits so the class keeps the
#: closed-form DMA channel fast path (see the field's doc above).
VECWIDE = TileClass(
    name="vecwide",
    cores_per_tile=4,
    wake_latency=40,
    dm_decode_cycles=160,
    worker_wake_latency=8,
    kernel_rates=(
        ("axpby", (40, 3, 4)),
        ("daxpy", (40, 13, 20)),
        ("dot", (40, 3, 8)),
        ("gemv", (48, 3, 8)),
        ("memcpy", (32, 1, 4)),
        ("relu", (32, 1, 4)),
        ("saxpy", (40, 13, 40)),
        ("scale", (36, 3, 8)),
        ("stencil3", (44, 1, 2)),
        ("vecsum", (36, 1, 4)),
    ),
    tile_power=60.0,
    area_mm2=4.0,
)

#: Built-in tile classes, by name.  ``TileGroup`` accepts these names
#: directly; custom classes are passed as instances.
TILE_CLASSES: typing.Dict[str, TileClass] = {
    SNITCH.name: SNITCH,
    VECWIDE.name: VECWIDE,
}

#: Name of the default (homogeneous legacy) class.
DEFAULT_TILE_CLASS = SNITCH.name


def get_tile_class(name: str) -> TileClass:
    """The registered :class:`TileClass` called ``name``.

    Raises
    ------
    ConfigError
        On unknown names, listing what is available.
    """
    try:
        return TILE_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown tile class {name!r}; available: "
            f"{', '.join(sorted(TILE_CLASSES))}") from None
