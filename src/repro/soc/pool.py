"""Reusable :class:`~repro.soc.manticore.ManticoreSystem` instances.

Building a 32-cluster system allocates an 8 MB main memory, 32 TCDMs,
and a ~66-region address map — roughly a fifth of the wall time of a
short sweep point.  Measurements that run many points on identical
hardware (every sweep in the paper) can instead lease one system per
configuration from a :class:`SystemPool`: a leased system is handed out
after :meth:`~repro.soc.manticore.ManticoreSystem.reset`, which
restores boot state bit-identically (property-tested in
``tests/property/test_system_reuse.py``).

Pooling is transparent to measurement code and can be disabled globally
for A/B verification by setting the ``REPRO_FRESH_SYSTEMS`` environment
variable to a non-empty value.
"""

from __future__ import annotations

import collections
import contextlib
import typing
import warnings

from repro import flags
from repro.errors import QuiescenceError
from repro.sim import IntegrityWarning
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem

#: Re-exported from :mod:`repro.flags`, the single source of truth for
#: every ``REPRO_*`` gate; kept here for backwards compatibility.
FRESH_SYSTEMS_ENV = flags.FRESH_SYSTEMS_ENV


def pooling_disabled() -> bool:
    """Whether ``REPRO_FRESH_SYSTEMS`` forces fresh construction."""
    return flags.fresh_systems()


class SystemPool:
    """A keyed pool of reset-to-boot ManticoreSystem instances.

    Keys are :meth:`SoCConfig.digest` values, so two structurally equal
    configurations share a pool slot.  ``max_idle`` bounds how many
    *idle* systems are retained per key (leased systems are owned by
    the caller and not counted); sweeps touch one or two configs at a
    time, so the default of 1 suffices.

    Thread/process notes: the pool is not thread-safe; sweep workers
    each own a process-local pool (see ``repro.core.executor``).
    """

    def __init__(self, max_idle: int = 1) -> None:
        if max_idle < 1:
            raise ValueError(f"max_idle must be >= 1, got {max_idle}")
        self.max_idle = max_idle
        self._idle: typing.Dict[str, collections.deque] = {}
        #: One post-reset (boot-state) snapshot per config digest,
        #: captured from the first recycled instance; later acquires
        #: restore it in O(dirty state) instead of walking the full
        #: reset.  ``REPRO_NAIVE_SNAPSHOT`` disables the restore path.
        self._boot_snapshots: typing.Dict[str, tuple] = {}
        #: Number of acquires served by reusing an idle instance.
        self.hits = 0
        #: Number of acquires that had to construct a system.
        self.builds = 0
        #: Number of reused acquires served by restoring the digest's
        #: boot snapshot (subset of :attr:`hits`).
        self.restores = 0
        #: Number of released systems dropped for failing the
        #: quiescence audit (non-zero means a measurement leaked
        #: in-flight state — see :meth:`release`).
        self.dropped = 0

    def acquire(self, config: SoCConfig,
                record_trace: bool = True) -> ManticoreSystem:
        """Lease a boot-state system for ``config``.

        The caller owns the instance until :meth:`release`; an idle
        pooled instance is reset before being handed out.  With
        ``REPRO_FRESH_SYSTEMS`` set, always constructs.
        """
        if not pooling_disabled():
            digest = config.digest()
            queue = self._idle.get(digest)
            while queue:
                system = queue.pop()
                # Trace recording is a construction-time choice; only
                # reuse an instance whose choice matches.
                if system.trace.enabled != record_trace:
                    continue
                boot = (None if flags.naive_snapshot()
                        else self._boot_snapshots.get(digest))
                # ``audited=True``: this instance entered the idle pool
                # through :meth:`release`'s quiescence audit and nothing
                # has run since, so re-auditing here would repeat the
                # exact walk that just passed.
                if boot is not None:
                    # Boot state is the same for every instance of a
                    # digest, so the captured snapshot applies to any
                    # of them (property-tested against reset()).
                    system.restore(boot, audited=True)
                    self.restores += 1
                else:
                    system.reset(audited=True)
                    if not flags.naive_snapshot():
                        self._boot_snapshots[digest] = \
                            system.snapshot(audited=True)
                self.hits += 1
                return system
        self.builds += 1
        return ManticoreSystem(config, record_trace=record_trace)

    def release(self, system: ManticoreSystem) -> None:
        """Return a leased system to the pool.

        The system must pass its quiescence audit (fully drained, every
        block back at boot state); callers that hit an exception
        mid-measurement should *discard* the instance instead (just
        drop the reference) — a half-run system cannot be proven
        reusable.  A system that fails the audit is dropped, counted in
        :attr:`dropped`, and reported with an
        :class:`~repro.sim.IntegrityWarning` (or
        :class:`~repro.errors.QuiescenceError` under ``REPRO_STRICT``)
        so leaked in-flight state never passes silently.  With
        ``REPRO_FRESH_SYSTEMS`` set, the instance is dropped without an
        audit — fresh-construction mode never recycles.
        """
        if pooling_disabled():
            return
        report = system.audit_quiescence()
        if not report.ok:
            self.dropped += 1
            if flags.strict():
                error = QuiescenceError(
                    "released system failed its quiescence audit\n"
                    + report.describe())
                error.report = report
                raise error
            warnings.warn(
                "SystemPool.release: dropping non-quiescent system "
                f"({report.violations[0].describe()}"
                + (f" and {len(report.violations) - 1} more"
                   if len(report.violations) > 1 else "")
                + ")",
                IntegrityWarning, stacklevel=2)
            return
        queue = self._idle.setdefault(
            system.config.digest(), collections.deque())
        if len(queue) < self.max_idle:
            queue.append(system)

    @contextlib.contextmanager
    def lease(self, config: SoCConfig, record_trace: bool = True):
        """``with pool.lease(cfg) as system:`` acquire/release pairing.

        On an exception the instance is discarded, not returned.
        """
        system = self.acquire(config, record_trace=record_trace)
        yield system
        self.release(system)

    def clear(self) -> None:
        """Drop every idle instance and captured boot snapshot."""
        self._idle.clear()
        self._boot_snapshots.clear()

    def resume_count(self) -> int:
        """Total process-body resumptions across idle instances.

        :attr:`~repro.sim.Simulator.resumes` is monotonic and survives
        reset/restore, so sweep statistics difference this across a run
        to report how much interpreter work the event engine did
        (instances leased out at call time are not visible; call
        between runs).
        """
        return sum(system.sim.resumes
                   for queue in self._idle.values() for system in queue)

    @property
    def idle_count(self) -> int:
        """Total idle instances currently retained."""
        return sum(len(queue) for queue in self._idle.values())
