"""SoC configuration: every microarchitectural knob in one place.

The defaults are calibrated so the simulated system's *emergent*
behaviour reproduces the paper's published constants (Eq. 1's offload
overhead near 367 cycles for the extended design, DAXPY's 2.6
cycles/element/core rate, the 64 B/cycle shared memory channel behind
the N/4 term) — see ``tests/integration/test_calibration.py``, which
pins these emergent values.

Two boolean *features* select the paper's hardware variants:

``multicast``
    The host LSU + interconnect replicate one dispatch store to all
    selected clusters (Fig. 1's "w/ extensions" dispatch).
``hw_sync``
    Clusters signal completion to the credit-counter sync unit, which
    interrupts the host, instead of AMO-and-poll.

``SoCConfig.baseline()`` and ``SoCConfig.extended()`` are the two
configurations Fig. 1 compares.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing

from repro import flags
from repro.errors import ConfigError
from repro.noc.xbar import NocParams
from repro.soc.tiles import (
    INHERITED_FIELDS,
    ResolvedGroup,
    ResolvedTile,
    SNITCH,
    TileClass,
    TileGroup,
)

#: Name of the implicit group a config with no declared fabric resolves
#: to: one default-class group spanning every cluster.
IMPLICIT_GROUP_NAME = "clusters"

class _VariantFeatureView(typing.Mapping):
    """Live name → (multicast, hw_sync) view of the variant registry.

    The strategy registry (:mod:`repro.runtime.strategies`) is the
    single source of truth for variant names; this mapping resolves
    through it lazily so the config layer never imports the runtime
    layer at module load (the runtime layer sits *above* soc in the
    import ladder and itself imports soc modules).
    """

    @staticmethod
    def _features() -> typing.Dict[str, typing.Tuple[bool, bool]]:
        from repro.runtime.strategies import variant_features
        return variant_features()

    def __getitem__(self, name: str) -> typing.Tuple[bool, bool]:
        return self._features()[name]

    def __iter__(self) -> typing.Iterator[str]:
        return iter(self._features())

    def __len__(self) -> int:
        return len(self._features())

    def __repr__(self) -> str:
        return repr(self._features())


#: Runtime variant name → (multicast, hw_sync) hardware feature pair.
#: A live view of the strategy registry, kept under its historical
#: name; ``SoCConfig.for_variant`` and ``repro.runtime`` resolve
#: through the same registry, so they cannot drift.
VARIANT_FEATURES: typing.Mapping[str, typing.Tuple[bool, bool]] = (
    _VariantFeatureView())


@dataclasses.dataclass(frozen=True)
class SoCConfig:
    """Complete parameterization of a Manticore-class MPSoC."""

    # ------------------------------------------------------------------
    # System shape
    # ------------------------------------------------------------------
    #: Number of compute clusters in the accelerator fabric (the paper
    #: evaluates up to 32 clusters = 288 cores incl. DM cores).
    num_clusters: int = 32
    #: Worker cores per cluster (plus one DM core = the paper's 9).
    cores_per_cluster: int = 8
    #: Per-cluster scratchpad capacity.
    tcdm_bytes: int = 128 * 1024
    #: TCDM SRAM banks per cluster.
    tcdm_banks: int = 32
    #: Shared main-memory capacity.
    main_memory_bytes: int = 32 * 1024 * 1024

    # ------------------------------------------------------------------
    # Features (the paper's extensions)
    # ------------------------------------------------------------------
    #: Multicast dispatch in the host LSU + interconnect.
    multicast: bool = False
    #: Credit-counter synchronization unit + completion interrupt.
    hw_sync: bool = False

    # ------------------------------------------------------------------
    # Shared memory data channels
    # ------------------------------------------------------------------
    #: Read-channel width in bytes/cycle (64 → DAXPY's N/4 inbound term).
    mem_read_width_bytes: int = 64
    #: Write-channel width in bytes/cycle.
    mem_write_width_bytes: int = 64

    # ------------------------------------------------------------------
    # Control interconnect
    # ------------------------------------------------------------------
    noc_request_latency: int = 8
    noc_response_latency: int = 8
    #: Host-port occupancy per store: the per-cluster dispatch cost in
    #: the baseline's sequential doorbell loop.
    noc_store_occupancy: int = 8
    noc_load_occupancy: int = 2
    noc_cluster_port_occupancy: int = 1
    noc_multicast_tree_latency: int = 3
    noc_amo_service_cycles: int = 2

    # ------------------------------------------------------------------
    # Host core
    # ------------------------------------------------------------------
    #: Runtime-entry bookkeeping before the first descriptor store.
    host_setup_cycles: int = 58
    #: Address computation per doorbell iteration (baseline loop body).
    host_addr_calc_cycles: int = 2
    #: Compare-and-branch work between completion-flag polls.
    host_poll_gap_cycles: int = 4
    #: Pipeline restart after WFI.
    host_wfi_wake_latency: int = 8

    # ------------------------------------------------------------------
    # Credit-counter sync unit
    # ------------------------------------------------------------------
    #: Threshold-match to interrupt-wire assertion.
    syncunit_irq_latency: int = 4

    # ------------------------------------------------------------------
    # Fabric start barrier (multi-cluster job synchronization)
    # ------------------------------------------------------------------
    #: DM-core arrival to the central barrier counter.
    fabric_barrier_arrival_latency: int = 8
    #: Release wave from the counter back to the clusters.
    fabric_barrier_release_latency: int = 8

    # ------------------------------------------------------------------
    # Cluster
    # ------------------------------------------------------------------
    cluster_wake_latency: int = 10
    dm_decode_cycles: int = 20
    dma_setup_cycles: int = 16
    barrier_latency: int = 2
    worker_wake_latency: int = 2

    # ------------------------------------------------------------------
    # Fabric composition (heterogeneous tile groups)
    # ------------------------------------------------------------------
    #: Named groups of identical tiles, in cluster-id order; their
    #: counts must sum to ``num_clusters``.  Empty means the legacy
    #: homogeneous fabric: one implicit group of the default Snitch
    #: class spanning every cluster (see :meth:`groups`).
    fabric: typing.Tuple[TileGroup, ...] = ()
    #: Optional silicon-area budget (mm^2) the composed fabric must fit.
    area_budget_mm2: typing.Optional[float] = None
    #: Optional power budget (mW) the composed fabric must fit.
    power_budget_mw: typing.Optional[float] = None

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def baseline(cls, num_clusters: int = 32, **overrides) -> "SoCConfig":
        """The unextended design: sequential dispatch, AMO-and-poll."""
        return cls(num_clusters=num_clusters, multicast=False, hw_sync=False,
                   **overrides)

    @classmethod
    def extended(cls, num_clusters: int = 32, **overrides) -> "SoCConfig":
        """The paper's design: multicast dispatch + sync-unit interrupt."""
        return cls(num_clusters=num_clusters, multicast=True, hw_sync=True,
                   **overrides)

    @classmethod
    def with_fabric(cls, groups: typing.Iterable[TileGroup],
                    **overrides) -> "SoCConfig":
        """A config composed from tile groups.

        ``num_clusters`` is derived from the group counts, so callers
        declare *what* the fabric is made of and the shape follows.
        Feature and budget knobs pass through ``overrides``.
        """
        fabric = tuple(groups)
        if "num_clusters" in overrides:
            raise ConfigError(
                "with_fabric derives num_clusters from the group counts; "
                "do not pass it explicitly")
        if not fabric:
            raise ConfigError("with_fabric needs at least one tile group")
        total = sum(group.count for group in fabric
                    if isinstance(group, TileGroup))
        return cls(num_clusters=total, fabric=fabric, **overrides)

    def with_features(self, multicast: bool, hw_sync: bool) -> "SoCConfig":
        """Copy of this config with the feature pair replaced (ablation)."""
        return dataclasses.replace(self, multicast=multicast, hw_sync=hw_sync)

    def for_variant(self, variant: str) -> "SoCConfig":
        """Copy of this config with the hardware a runtime variant needs.

        Saves callers hand-rolling ``dataclasses.replace(cfg,
        multicast=..., hw_sync=...)`` per variant and keeps the
        name → feature mapping in one place (:data:`VARIANT_FEATURES`).

        Raises
        ------
        ConfigError
            On unknown variant names.
        """
        try:
            multicast, hw_sync = VARIANT_FEATURES[variant]
        except KeyError:
            raise ConfigError(
                f"unknown runtime variant {variant!r}; available: "
                f"{', '.join(sorted(VARIANT_FEATURES))}"
            ) from None
        return self.with_features(multicast=multicast, hw_sync=hw_sync)

    # ------------------------------------------------------------------
    # Validation & derived values
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        positive = {
            "num_clusters": self.num_clusters,
            "cores_per_cluster": self.cores_per_cluster,
            "tcdm_bytes": self.tcdm_bytes,
            "tcdm_banks": self.tcdm_banks,
            "main_memory_bytes": self.main_memory_bytes,
            "mem_read_width_bytes": self.mem_read_width_bytes,
            "mem_write_width_bytes": self.mem_write_width_bytes,
            "noc_store_occupancy": self.noc_store_occupancy,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigError(f"SoCConfig.{name} must be positive, got {value}")
        non_negative = {
            "noc_request_latency": self.noc_request_latency,
            "noc_response_latency": self.noc_response_latency,
            "noc_load_occupancy": self.noc_load_occupancy,
            "noc_cluster_port_occupancy": self.noc_cluster_port_occupancy,
            "noc_multicast_tree_latency": self.noc_multicast_tree_latency,
            "noc_amo_service_cycles": self.noc_amo_service_cycles,
            "host_setup_cycles": self.host_setup_cycles,
            "host_addr_calc_cycles": self.host_addr_calc_cycles,
            "host_poll_gap_cycles": self.host_poll_gap_cycles,
            "host_wfi_wake_latency": self.host_wfi_wake_latency,
            "syncunit_irq_latency": self.syncunit_irq_latency,
            "fabric_barrier_arrival_latency": self.fabric_barrier_arrival_latency,
            "fabric_barrier_release_latency": self.fabric_barrier_release_latency,
            "cluster_wake_latency": self.cluster_wake_latency,
            "dm_decode_cycles": self.dm_decode_cycles,
            "dma_setup_cycles": self.dma_setup_cycles,
            "barrier_latency": self.barrier_latency,
            "worker_wake_latency": self.worker_wake_latency,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ConfigError(f"SoCConfig.{name} must be >= 0, got {value}")
        if self.num_clusters > 1024:
            raise ConfigError(
                f"num_clusters={self.num_clusters} exceeds the modeled "
                "fabric limit (1024)")
        if not isinstance(self.fabric, tuple):
            object.__setattr__(self, "fabric", tuple(self.fabric))
        self._check_fabric()

    def _check_fabric(self) -> None:
        """Fabric-composition validation: structure first, then budgets.

        Misconfigured fabrics must fail here — at configuration time,
        naming the offending group/class — never deep inside a
        simulation.
        """
        seen: typing.Set[str] = set()
        for group in self.fabric:
            if not isinstance(group, TileGroup):
                raise ConfigError(
                    f"SoCConfig.fabric entries must be TileGroup instances, "
                    f"got {group!r}")
            if group.name in seen:
                raise ConfigError(
                    f"duplicate tile group name {group.name!r} in fabric")
            seen.add(group.name)
        if self.fabric:
            total_tiles = sum(group.count for group in self.fabric)
            if total_tiles != self.num_clusters:
                detail = " + ".join(
                    f"{group.name}:{group.count}" for group in self.fabric)
                raise ConfigError(
                    f"fabric declares {total_tiles} tiles ({detail}) but "
                    f"num_clusters={self.num_clusters}; the group counts "
                    "must sum to the cluster count")
        entries = ([(group.name, group.tile) for group in self.fabric]
                   or [(IMPLICIT_GROUP_NAME, SNITCH)])
        counts = ([group.count for group in self.fabric]
                  or [self.num_clusters])
        if self.area_budget_mm2 is not None:
            self._check_budget(
                "area_budget_mm2", self.area_budget_mm2, "mm^2", entries,
                counts, lambda tile: tile.area_mm2)
        if self.power_budget_mw is not None:
            self._check_budget(
                "power_budget_mw", self.power_budget_mw, "mW", entries,
                counts, lambda tile: tile.tile_power)

    @staticmethod
    def _check_budget(budget_name: str, budget: float, unit: str,
                      entries: typing.List[typing.Tuple[str, TileClass]],
                      counts: typing.List[int],
                      cost: typing.Callable[[TileClass], float]) -> None:
        """Lumos-style composition check: sum of per-tile costs vs budget."""
        if budget < 0:
            raise ConfigError(
                f"SoCConfig.{budget_name} must be >= 0, got {budget}")
        per_group = [(name, tile, count, count * cost(tile))
                     for (name, tile), count in zip(entries, counts)]
        total = sum(subtotal for _n, _t, _c, subtotal in per_group)
        if total > budget:
            worst = max(per_group, key=lambda item: item[3])
            raise ConfigError(
                f"fabric exceeds {budget_name}: total {total:g} {unit} > "
                f"budget {budget:g} {unit}; largest contributor is group "
                f"{worst[0]!r} (class {worst[1].name!r}, {worst[2]} tiles, "
                f"{worst[3]:g} {unit})")

    # ------------------------------------------------------------------
    # Fabric resolution
    # ------------------------------------------------------------------
    def resolve_tile(self, tile: TileClass) -> ResolvedTile:
        """Fill every ``None`` (inherited) field from this config's knobs."""
        values = {
            field: (getattr(self, knob) if getattr(tile, field) is None
                    else getattr(tile, field))
            for field, knob in INHERITED_FIELDS.items()
        }
        return ResolvedTile(
            class_name=tile.name, kernel_rates=tile.kernel_rates,
            tile_power=tile.tile_power, area_mm2=tile.area_mm2, **values)

    def groups(self) -> typing.Tuple[ResolvedGroup, ...]:
        """The fabric as resolved groups with placed cluster-id spans.

        A config with no declared fabric resolves to one implicit
        group (:data:`IMPLICIT_GROUP_NAME`) of the default class
        spanning every cluster — or, under ``REPRO_EXPLICIT_FABRIC``,
        to one single-tile default-class group per cluster, which is
        timing-identical but exercises the per-group construction path
        (the homogeneous-equivalence A/B).

        Memoized per gate value: resolution is pure given the frozen
        config and the gate.
        """
        explicit = flags.explicit_fabric()
        cache = getattr(self, "_groups_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_groups_cache", cache)
        resolved = cache.get(explicit)
        if resolved is not None:
            return resolved
        if self.fabric:
            groups = []
            start = 0
            for group in self.fabric:
                groups.append(ResolvedGroup(
                    name=group.name, tile=self.resolve_tile(group.tile),
                    count=group.count, start=start))
                start += group.count
            resolved = tuple(groups)
        elif explicit:
            default = self.resolve_tile(SNITCH)
            resolved = tuple(
                ResolvedGroup(name=f"tile{index}", tile=default, count=1,
                              start=index)
                for index in range(self.num_clusters))
        else:
            resolved = (ResolvedGroup(
                name=IMPLICIT_GROUP_NAME, tile=self.resolve_tile(SNITCH),
                count=self.num_clusters, start=0),)
        cache[explicit] = resolved
        return resolved

    def tile_group(self, name: str) -> ResolvedGroup:
        """The resolved group called ``name``.

        Raises
        ------
        ConfigError
            On unknown group names, listing what the fabric declares.
        """
        groups = self.groups()
        for group in groups:
            if group.name == name:
                return group
        raise ConfigError(
            f"unknown tile group {name!r}; this fabric has: "
            f"{', '.join(group.name for group in groups)}")

    def tile_of(self, cluster_id: int) -> ResolvedTile:
        """The resolved tile occupying cluster slot ``cluster_id``."""
        if not 0 <= cluster_id < self.num_clusters:
            raise ConfigError(
                f"cluster id {cluster_id} outside fabric "
                f"[0, {self.num_clusters})")
        for group in self.groups():
            if group.start <= cluster_id < group.start + group.count:
                return group.tile
        raise ConfigError(  # pragma: no cover - groups() always covers
            f"cluster id {cluster_id} not covered by any fabric group")

    def span_tile(self, first_cluster: int,
                  count: int) -> typing.Optional[ResolvedTile]:
        """The single tile spec shared by ``count`` clusters, or ``None``.

        Returns the resolved tile when every cluster in
        ``[first_cluster, first_cluster + count)`` resolves to an
        *equal* tile — even across group boundaries, so N single-tile
        default groups still present a uniform span.  ``None`` means
        the span is genuinely heterogeneous (the batch planner then
        falls back to event simulation for it).
        """
        if count < 1 or first_cluster < 0 or (
                first_cluster + count > self.num_clusters):
            raise ConfigError(
                f"invalid cluster span [{first_cluster}, "
                f"{first_cluster + count}) in a {self.num_clusters}-cluster "
                "fabric")
        tiles = {self.tile_of(cluster_id)
                 for cluster_id in range(first_cluster,
                                         first_cluster + count)}
        if len(tiles) == 1:
            return next(iter(tiles))
        return None

    def min_tcdm_bytes(self, first_cluster: int, count: int) -> int:
        """Smallest per-tile scratchpad over a cluster span.

        The staging-footprint check must hold for every participating
        tile, so the binding constraint is the smallest TCDM in the
        span (for homogeneous spans this is exactly ``tcdm_bytes``).
        """
        if count < 1 or first_cluster < 0 or (
                first_cluster + count > self.num_clusters):
            raise ConfigError(
                f"invalid cluster span [{first_cluster}, "
                f"{first_cluster + count}) in a {self.num_clusters}-cluster "
                "fabric")
        return min(self.tile_of(cluster_id).tcdm_bytes
                   for cluster_id in range(first_cluster,
                                           first_cluster + count))

    @property
    def total_cores(self) -> int:
        """All cores in the fabric, DM cores included (paper: 9/cluster)."""
        return self.num_clusters * (self.cores_per_cluster + 1)

    def noc_params(self) -> NocParams:
        """The interconnect's view of this configuration."""
        return NocParams(
            request_latency=self.noc_request_latency,
            response_latency=self.noc_response_latency,
            store_occupancy=self.noc_store_occupancy,
            load_occupancy=self.noc_load_occupancy,
            cluster_port_occupancy=self.noc_cluster_port_occupancy,
            multicast_enabled=self.multicast,
            multicast_tree_latency=self.noc_multicast_tree_latency,
            amo_service_cycles=self.noc_amo_service_cycles,
        )

    def digest(self) -> str:
        """Stable content hash of every knob in this configuration.

        Two configs share a digest iff every field is equal, so the
        digest is a safe cache key component: any microarchitectural
        change (and therefore any change in simulated timing) changes
        it.  Fields are serialized by name, so reordering the dataclass
        does not invalidate caches — but adding a knob does, which is
        exactly right because a new knob means new timing behaviour.

        Memoized: the config is frozen, and pooled sweep execution
        digests the same instance once per grid point.
        """
        cached = getattr(self, "_digest_cache", None)
        if cached is None:
            fields = dataclasses.asdict(self)
            text = ",".join(
                f"{name}={fields[name]!r}" for name in sorted(fields))
            cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    def describe(self) -> str:
        """One-line human-readable summary."""
        features = []
        if self.multicast:
            features.append("multicast")
        if self.hw_sync:
            features.append("hw-sync")
        suffix = "+".join(features) if features else "baseline"
        base = (f"{self.num_clusters} clusters x "
                f"{self.cores_per_cluster}+1 cores, {suffix}")
        if self.fabric:
            composition = " + ".join(
                f"{group.name}:{group.tile.name}x{group.count}"
                for group in self.fabric)
            base += f" [{composition}]"
        return base
