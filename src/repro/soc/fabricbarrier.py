"""Fabric-level start barrier for multi-cluster jobs.

A job offloaded to M clusters begins with a *global* synchronization:
every participating DM core reports arrival to a central credit counter
and waits for the release wave before starting the collective DMA/compute
phases (Manticore-class fabrics provide hardware-assisted global
barriers for exactly this purpose — a multi-cluster job must not start
collective phases before every member holds its arguments).

This is the mechanism that makes the baseline's sequential dispatch
fully *precede* the job: the first-dispatched cluster waits at this
barrier until the last-dispatched cluster arrives, so the doorbell
loop's ``d·M`` cost adds to the runtime instead of hiding behind the
DMA pipeline.  With multicast dispatch all clusters arrive together and
the barrier costs only its constant wire latency.

The unit provides independent *groups* (hardware: a small bank of
counters indexed by a group ID carried in the arrival write) so that
space-shared concurrent jobs on disjoint cluster ranges synchronize
independently; the offload protocol uses the job's first cluster as its
group ID, which is unique across concurrent jobs by construction.

Timing: an arrival takes ``arrival_latency`` cycles to reach the
central counter; once the last arrival of a group lands, the release
wave reaches that group's clusters ``release_latency`` cycles later.
"""

from __future__ import annotations

import typing

from repro import flags
from repro.errors import ConfigError, SimulationError
from repro.sim import Event, Simulator


def _fire_release(release: Event) -> None:
    """Trigger a release wave stamped with the current cycle.

    Module-level so the fast-forward crossing allocates no closure; the
    naive path's per-crossing lambda is kept untouched as the reference.
    """
    release.trigger(release.sim.now)


class FabricBarrier:
    """Banked credit-counter barrier across participating clusters."""

    def __init__(self, sim: Simulator, arrival_latency: int = 8,
                 release_latency: int = 8) -> None:
        if arrival_latency < 0 or release_latency < 0:
            raise ConfigError("fabric barrier latencies must be >= 0")
        self.sim = sim
        self.arrival_latency = arrival_latency
        self.release_latency = release_latency
        #: group id -> (expected, arrived, release event)
        self._groups: typing.Dict[int, typing.Tuple[int, int, Event]] = {}
        self.generations = 0
        #: Arrivals absorbed by the fast path (counter bookkeeping at
        #: the arrival write, wire latency virtualized).
        self.ff_arrivals = 0

    def arrive(self, parties: int, group: int = 0) -> typing.Generator:
        """Arrive at ``group`` and wait for all its ``parties`` clusters.

        All arrivals of one open generation of a group must agree on
        ``parties`` — a mismatch means two jobs' barriers interleaved on
        the same counter, which the offload protocol forbids (concurrent
        jobs use disjoint cluster ranges, hence distinct group IDs).

        Fast path (default): the counter is updated at the arrival
        write and only the generation-completing arrival schedules
        events — a latency hop standing in for its in-flight arrival,
        then the release wave.  The arrival wire latency is a constant,
        so bookkeeping order at the counter equals the naive in-flight
        order and both paths release every waiter at the identical
        cycle with identical event ordering.  ``REPRO_NAIVE_BARRIER``
        selects the reference path: every arrival simulates its wire
        latency before touching the counter.
        """
        if parties <= 0:
            raise SimulationError(
                f"barrier party count must be positive, got {parties}")
        if group < 0:
            raise SimulationError(f"barrier group must be >= 0, got {group}")
        if not flags.naive_barrier():
            yield self.book_arrival(parties, group)
            return
        if self.arrival_latency:
            yield self.arrival_latency
        if group not in self._groups:
            release = self.sim.event(
                name=f"fabric_barrier.g{group}.gen{self.generations}")
            self._groups[group] = (parties, 0, release)
        expected, arrived, release = self._groups[group]
        if expected != parties:
            raise SimulationError(
                f"fabric barrier group {group} arrival expects {parties} "
                f"parties but the open generation expects {expected}")
        arrived += 1
        if arrived == expected:
            del self._groups[group]
            self.generations += 1
            if self.release_latency:
                self.sim.schedule(self.release_latency,
                                  lambda _arg: release.trigger(self.sim.now))
            else:
                release.trigger(self.sim.now)
        else:
            self._groups[group] = (expected, arrived, release)
        yield release

    def book_arrival(self, parties: int, group: int = 0) -> Event:
        """Non-generator form of :meth:`arrive`'s fast path: book the
        arrival and return the release event for the caller to park on
        directly (the DM core's flattened fast path).  Callers must
        have checked ``REPRO_NAIVE_BARRIER`` themselves."""
        if parties <= 0:
            raise SimulationError(
                f"barrier party count must be positive, got {parties}")
        if group < 0:
            raise SimulationError(f"barrier group must be >= 0, got {group}")
        self.ff_arrivals += 1
        return self._book_arrival(parties, group)

    def _book_arrival(self, parties: int, group: int) -> Event:
        """Fast-path counter bookkeeping at the arrival write."""
        if group not in self._groups:
            release = self.sim.event(
                name=f"fabric_barrier.g{group}.gen{self.generations}")
            self._groups[group] = (parties, 0, release)
        expected, arrived, release = self._groups[group]
        if expected != parties:
            raise SimulationError(
                f"fabric barrier group {group} arrival expects {parties} "
                f"parties but the open generation expects {expected}")
        arrived += 1
        if arrived == expected:
            del self._groups[group]
            self.generations += 1
            # The completing arrival still travels the wire: the
            # release wave starts ``arrival_latency`` cycles from now,
            # exactly where the naive path's last in-flight arrival
            # would schedule it.
            if self.arrival_latency:
                self.sim.schedule(self.arrival_latency,
                                  self._ff_complete, release)
            else:
                self._ff_complete(release)
        else:
            self._groups[group] = (expected, arrived, release)
        return release

    def _ff_complete(self, release: Event) -> None:
        """Runs where the naive last arrival would resume; launches the
        release wave."""
        if self.release_latency:
            self.sim.schedule(self.release_latency, _fire_release, release)
        else:
            release.trigger(self.sim.now)

    def reset(self) -> None:
        """Restore boot state; only legal with no open generations."""
        if self._groups:
            raise SimulationError(
                f"cannot reset fabric barrier with open groups "
                f"{self.open_groups}")
        self.generations = 0
        self.ff_arrivals = 0

    def snapshot(self) -> typing.Tuple[int, int]:
        """Capture crossing state; only legal with no open groups."""
        if self._groups:
            raise SimulationError(
                f"cannot snapshot fabric barrier with open groups "
                f"{self.open_groups}")
        return (self.generations, self.ff_arrivals)

    def restore(self, state: typing.Tuple[int, int]) -> None:
        """Restore a :meth:`snapshot`; only legal with no open groups."""
        if self._groups:
            raise SimulationError(
                f"cannot restore fabric barrier with open groups "
                f"{self.open_groups}")
        self.generations, self.ff_arrivals = state

    def waiting(self, group: int = 0) -> int:
        """Clusters currently blocked in ``group``'s open generation."""
        if group not in self._groups:
            return 0
        return self._groups[group][1]

    @property
    def open_groups(self) -> typing.Tuple[int, ...]:
        """Groups with an incomplete generation (debug aid)."""
        return tuple(sorted(self._groups))
