"""The Manticore-class MPSoC: construction and wiring.

``ManticoreSystem`` instantiates and connects every block from a
:class:`~repro.soc.config.SoCConfig`: the simulation kernel, shared main
memory and its two data channels, the control interconnect, the CVA6-
class host (LSU + interrupt controller), the credit-counter sync unit,
and one :class:`~repro.cluster.Cluster` per fabric slot (each with its
TCDM, DMA engine, mailbox, barrier and worker cores).  Cluster DM cores
start serving their mailboxes immediately.

System address map::

    0x0200_0000  sync unit registers
    0x0400_0000  cluster peripherals, one 64 KiB block per cluster
                 (mailbox at offset 0)
    0x1000_0000  cluster TCDMs, one 1 MiB-aligned block per cluster
    0x8000_0000  shared main memory

Construction is the expensive part of a measurement at sweep scale, so
instances are reusable: :meth:`ManticoreSystem.reset` restores boot
state bit-identically once a run has drained, and
:class:`repro.soc.pool.SystemPool` hands the same instance to
successive same-config measurements.
"""

from __future__ import annotations

import typing

from repro.cluster.cluster import Cluster
from repro.cluster.mailbox import JOB_PTR_OFFSET, Mailbox
from repro.errors import ConfigError, QuiescenceError
from repro.host.cva6 import HostCore
from repro.host.irq import InterruptController
from repro.host.lsu import LoadStoreUnit
from repro.mem.map import AddressMap, Region
from repro.mem.memory import MainMemory
from repro.mem.tcdm import Tcdm
from repro.noc.multicast import multicast_targets
from repro.noc.xbar import Interconnect
from repro.sim import (
    AccessAuditor,
    QuiescenceAudit,
    QuiescenceReport,
    Simulator,
    ThroughputChannel,
    TraceRecorder,
)
from repro.soc.config import SoCConfig
from repro.soc.fabricbarrier import FabricBarrier
from repro.soc import syncunit as syncunit_regs
from repro.soc.syncunit import SyncUnit

SYNCUNIT_BASE = 0x0200_0000
SYNCUNIT_SIZE = 0x1000
CLUSTER_PERIPH_BASE = 0x0400_0000
CLUSTER_PERIPH_STRIDE = 0x0001_0000
CLUSTER_PERIPH_SIZE = 0x1000
TCDM_BASE = 0x1000_0000
TCDM_STRIDE = 0x0010_0000
DRAM_BASE = 0x8000_0000


class ManticoreSystem:
    """A fully-wired MPSoC instance ready to run offloads."""

    def __init__(self, config: typing.Optional[SoCConfig] = None,
                 record_trace: bool = True) -> None:
        self.config = config or SoCConfig()
        self.sim = Simulator()
        self.trace = TraceRecorder(self.sim, enabled=record_trace)
        #: Shared MMIO access auditor; every device built below reports
        #: anomalous accesses here (see ``repro.sim.diag``).
        self.auditor = AccessAuditor(self.sim)

        # --- Memory -------------------------------------------------------
        self.memory = MainMemory(
            size_bytes=self.config.main_memory_bytes, base=DRAM_BASE)
        self.address_map = AddressMap()
        self.address_map.add(Region(
            "dram", self.memory.base, self.memory.size_bytes, self.memory))
        # The channels' only requesters are the cluster DMA engines,
        # which all share one setup time — exactly the constant-lead
        # contract the reservation fast-forward needs (see
        # repro.sim.resource).
        self.read_channel = ThroughputChannel(
            self.sim, self.config.mem_read_width_bytes, name="mem.read",
            reserve_lead=self.config.dma_setup_cycles)
        self.write_channel = ThroughputChannel(
            self.sim, self.config.mem_write_width_bytes, name="mem.write",
            reserve_lead=self.config.dma_setup_cycles)

        # --- Host complex --------------------------------------------------
        self.irq = InterruptController(
            self.sim, wake_latency=self.config.host_wfi_wake_latency)
        self.syncunit = SyncUnit(
            self.sim, self.irq, irq_latency=self.config.syncunit_irq_latency,
            auditor=self.auditor)
        self.address_map.add_device(
            "syncunit", SYNCUNIT_BASE, SYNCUNIT_SIZE, self.syncunit)

        self.noc = Interconnect(
            self.sim, self.address_map, self.config.noc_params(),
            num_clusters=self.config.num_clusters)
        self.host = HostCore(
            self.sim,
            LoadStoreUnit(self.noc, multicast_capable=self.config.multicast),
            self.irq, trace=self.trace)

        # --- Accelerator fabric ----------------------------------------------
        self.fabric_barrier = FabricBarrier(
            self.sim,
            arrival_latency=self.config.fabric_barrier_arrival_latency,
            release_latency=self.config.fabric_barrier_release_latency)
        # Clusters are built per fabric group: each cluster slot gets
        # its group's resolved tile spec (worker count, TCDM shape,
        # dispatch/compute latencies).  Homogeneous configs resolve to
        # one default-class group whose tile equals the config knobs
        # exactly, so this loop is bit-identical to the legacy
        # homogeneous construction.
        self.clusters: typing.List[Cluster] = []
        for group in self.config.groups():
            tile = group.tile
            if tile.tcdm_bytes > TCDM_STRIDE:
                raise ConfigError(
                    f"tile group {group.name!r} (class {tile.class_name!r}) "
                    f"declares tcdm_bytes={tile.tcdm_bytes}, which exceeds "
                    f"the {TCDM_STRIDE}-byte per-cluster TCDM window")
            for cluster_id in range(group.start, group.start + group.count):
                mailbox = Mailbox(self.sim, cluster_id)
                mailbox.auditor = self.auditor
                self.address_map.add_device(
                    f"cluster{cluster_id}.periph",
                    CLUSTER_PERIPH_BASE + cluster_id * CLUSTER_PERIPH_STRIDE,
                    CLUSTER_PERIPH_SIZE, mailbox)
                tcdm = Tcdm(
                    size_bytes=tile.tcdm_bytes,
                    base=TCDM_BASE + cluster_id * TCDM_STRIDE,
                    num_banks=tile.tcdm_banks)
                self.address_map.add(Region(
                    f"cluster{cluster_id}.tcdm", tcdm.base, tcdm.size_bytes,
                    tcdm))
                cluster = Cluster(
                    self.sim, cluster_id, self.noc, self.memory, tcdm,
                    mailbox, self.read_channel, self.write_channel,
                    fabric_barrier=self.fabric_barrier,
                    num_workers=tile.cores_per_tile,
                    wake_latency=tile.wake_latency,
                    dm_decode_cycles=tile.dm_decode_cycles,
                    dma_setup_cycles=tile.dma_setup_cycles,
                    barrier_latency=tile.barrier_latency,
                    worker_wake_latency=tile.worker_wake_latency,
                    tile=tile,
                    trace=self.trace)
                cluster.start()
                self.clusters.append(cluster)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def mailbox_addr(self, cluster_id: int) -> int:
        """Doorbell (JOB_PTR) register address of one cluster."""
        if not 0 <= cluster_id < self.config.num_clusters:
            raise IndexError(
                f"cluster id {cluster_id} out of range "
                f"[0, {self.config.num_clusters})")
        return (CLUSTER_PERIPH_BASE + cluster_id * CLUSTER_PERIPH_STRIDE
                + JOB_PTR_OFFSET)

    def mailbox_addrs(self, num_clusters: int,
                      first_cluster: int = 0) -> typing.Tuple[int, ...]:
        """Doorbell addresses of the cluster range (multicast target set)."""
        if first_cluster < 0 or num_clusters <= 0 \
                or first_cluster + num_clusters > self.config.num_clusters:
            raise IndexError(
                f"cannot target clusters [{first_cluster}, "
                f"{first_cluster + num_clusters}) on a "
                f"{self.config.num_clusters}-cluster fabric")
        return multicast_targets(
            base=CLUSTER_PERIPH_BASE + first_cluster * CLUSTER_PERIPH_STRIDE,
            stride=CLUSTER_PERIPH_STRIDE,
            count=num_clusters, offset=JOB_PTR_OFFSET)

    @property
    def syncunit_threshold_addr(self) -> int:
        return SYNCUNIT_BASE + syncunit_regs.THRESHOLD_OFFSET

    @property
    def syncunit_increment_addr(self) -> int:
        return SYNCUNIT_BASE + syncunit_regs.INCREMENT_OFFSET

    @property
    def syncunit_count_addr(self) -> int:
        return SYNCUNIT_BASE + syncunit_regs.COUNT_OFFSET

    # ------------------------------------------------------------------
    # Reuse
    # ------------------------------------------------------------------
    def audit_quiescence(self) -> QuiescenceReport:
        """Verify every block is back at (resettable) boot state.

        A clean report means the previous run fully drained: no queued
        callbacks, no in-flight NoC or memory-channel transactions, no
        armed sync unit, no pending or awaited interrupts, no open
        barriers, and each cluster's DM core parked on its mailbox
        exactly as after boot.  :meth:`reset` runs this audit first and
        refuses to recycle a dirty system.
        """
        audit = QuiescenceAudit()
        audit.expect("sim", "pending callbacks", 0, self.sim.pending)
        audit.expect("noc.host_port", "backlog cycles", 0,
                     self.noc.host_port.backlog)
        audit.expect("noc.amo_port", "backlog cycles", 0,
                     self.noc.amo_port.backlog)
        for cluster_id, port in enumerate(self.noc.cluster_ports):
            audit.expect(f"noc.cluster_port[{cluster_id}]", "backlog cycles",
                         0, port.backlog)
        audit.expect("mem.read", "backlog cycles", 0,
                     self.read_channel.backlog)
        audit.expect("mem.write", "backlog cycles", 0,
                     self.write_channel.backlog)
        audit.expect("syncunit", "armed", False, self.syncunit.armed)
        audit.expect("irq", "parked waiters", {}, self.irq.parked_waiters())
        audit.expect("irq", "pending lines", (), self.irq.pending_lines())
        audit.expect("fabric_barrier", "open groups", (),
                     self.fabric_barrier.open_groups)
        for cluster in self.clusters:
            name = f"cluster{cluster.cluster_id}"
            audit.expect(f"{name}.barrier", "parties waiting", 0,
                         cluster.barrier.waiting)
            audit.expect(f"{name}.mailbox", "doorbell waiters", 1,
                         cluster.mailbox.waiters)
        return audit.report()

    def _require_quiescent(self, action: str) -> None:
        """Run the quiescence audit and raise if the system is dirty."""
        quiescence = self.audit_quiescence()
        if not quiescence.ok:
            error = QuiescenceError(
                f"cannot {action} a non-quiescent system\n"
                + quiescence.describe())
            error.report = quiescence
            raise error

    def reset(self, audited: bool = False) -> None:
        """Restore the system to boot state for the next measurement.

        Safe only once the simulation has fully drained (``run()``
        returned with nothing pending): the clock rewinds to cycle 0,
        allocators, counters, peripherals, memory contents, transaction
        and trace logs all return to their post-construction values.
        The one intentional difference from a fresh instance is that
        each cluster's DM core is already parked on its mailbox event
        rather than pending its kick-off callback — timing-equivalent,
        because the host's setup phase strictly precedes the first
        doorbell (see ``tests/property/test_system_reuse.py``).

        Raises
        ------
        QuiescenceError
            If the boot-state audit finds residue from the previous run
            (queued callbacks, in-flight transactions, parked waiters).
            The failing :class:`~repro.sim.QuiescenceReport` is attached
            as the exception's ``report`` attribute.

        ``audited=True`` skips the audit; only callers that *just* ran
        it (e.g. :class:`~repro.soc.pool.SystemPool`, which audits on
        release and recycles with nothing running in between) may pass
        it.
        """
        if not audited:
            self._require_quiescent("reset")
        self.sim.reset()  # validates the queues are drained
        self.trace.clear()
        self.address_map.clear_watchpoints()
        self.memory.reset()
        self.read_channel.reset()
        self.write_channel.reset()
        self.noc.reset()
        self.irq.reset()
        self.syncunit.reset()
        self.fabric_barrier.reset()
        self.host.reset()
        for cluster in self.clusters:
            cluster.reset()
        self.auditor.clear()

    def snapshot(self, audited: bool = False) -> tuple:
        """Capture the whole system's state between runs.

        Only legal on a quiescent system (same audit as :meth:`reset`):
        with nothing in flight, the complete mutable state is the
        components' counters, registers, logs, and allocated memory
        prefixes, all of which the component ``snapshot()`` methods
        capture.  The captured tuple is opaque; hand it back to
        :meth:`restore` on *this* instance (or a structurally identical
        one).  :class:`repro.soc.pool.SystemPool` uses a post-reset
        snapshot to hand out boot-state systems in O(dirty state);
        warm-state snapshots fork a partially-run system instead of
        replaying its prefix.  ``audited=True`` skips the audit for
        callers that just ran it themselves.
        """
        if not audited:
            self._require_quiescent("snapshot")
        return (
            self.sim.snapshot(),
            self.trace.snapshot(),
            self.memory.snapshot(),
            self.read_channel.snapshot(),
            self.write_channel.snapshot(),
            self.noc.snapshot(),
            self.irq.snapshot(),
            self.syncunit.snapshot(),
            self.fabric_barrier.snapshot(),
            self.host.snapshot(),
            tuple(cluster.snapshot() for cluster in self.clusters),
        )

    def restore(self, state: tuple, audited: bool = False) -> None:
        """Restore a :meth:`snapshot`, bit-identically.

        Only legal on a quiescent system.  The simulation clock is
        restored first so absolute cycles inside component states are
        meaningful; watchpoints and audit findings are cleared exactly
        as :meth:`reset` clears them.  ``audited=True`` skips the
        audit for callers that just ran it themselves.
        """
        if not audited:
            self._require_quiescent("restore onto")
        (sim, trace, memory, read_channel, write_channel, noc, irq,
         syncunit, fabric_barrier, host, clusters) = state
        self.sim.restore(sim)
        self.trace.restore(trace)
        self.address_map.clear_watchpoints()
        self.memory.restore(memory)
        self.read_channel.restore(read_channel)
        self.write_channel.restore(write_channel)
        self.noc.restore(noc)
        self.irq.restore(irq)
        self.syncunit.restore(syncunit)
        self.fabric_barrier.restore(fabric_barrier)
        self.host.restore(host)
        for cluster, cstate in zip(self.clusters, clusters):
            cluster.restore(cstate)
        self.auditor.clear()

    # ------------------------------------------------------------------
    # Fast-forward accounting
    # ------------------------------------------------------------------
    def fastforward_stats(self) -> typing.Dict[str, int]:
        """Aggregate hit/fallback counters of every fast-forward layer.

        A/B harnesses assert on these to prove the fast paths actually
        engaged (a bit-identical result proves nothing if the closed
        forms never ran).
        """
        return {
            "channel_requests": (self.read_channel.ff_requests
                                 + self.write_channel.ff_requests),
            "channel_conflicts": (self.read_channel.ff_conflicts
                                  + self.write_channel.ff_conflicts),
            "dma_transfers": sum(
                cluster.dma.ff_transfers for cluster in self.clusters),
            "dma_fallbacks": sum(
                cluster.dma.ff_fallbacks for cluster in self.clusters),
            "barrier_crossings": sum(
                cluster.barrier.ff_crossings for cluster in self.clusters),
            "compute_phases": sum(
                cluster.ff_compute_phases for cluster in self.clusters),
            "fabric_arrivals": self.fabric_barrier.ff_arrivals,
            "staged_store_runs": self.noc.ff_store_runs,
            "staged_stores": self.noc.ff_stores,
        }

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run(self, until=None) -> int:
        """Run the simulation (see :meth:`repro.sim.Simulator.run`)."""
        return self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ManticoreSystem {self.config.describe()}>"
