"""The credit-counter synchronization unit — the paper's dedicated block.

Quoting the paper's design: the host "sets the number of accelerator
clusters selected for offload as a threshold for the counter.  When a
cluster is done with the job, it atomically increments the counter by
writing to a register which triggers the increment as a side effect.
As soon as the counter reaches the threshold value set by CVA6, it
automatically fires an interrupt notifying CVA6 of job completion."

Register map (word offsets from the unit's base address):

====== =========== ====================================================
offset register    behaviour
====== =========== ====================================================
0x00   THRESHOLD   read/write; writing re-arms the unit and clears the
                   counter for the next offload
0x08   COUNT       read-only credit counter
0x10   INCREMENT   write-to-increment (+1 per store, data ignored)
0x18   CLEAR       write: zero the counter, disarm, and cancel any
                   interrupt already in flight from this unit
0x20   FIRED       read-only count of interrupts delivered (statistics)
====== =========== ====================================================

The completion interrupt is delivered to the host's interrupt
controller ``irq_latency`` cycles after the threshold-matching
increment arrives.  A ``CLEAR`` (or :meth:`reset`) landing inside that
delivery window *cancels* the in-flight interrupt — a cleared or
reused unit must never spuriously interrupt the host on behalf of a
job that was abandoned (epoch-tagged delivery; see :meth:`_increment`).

Increments that arrive while the unit is disarmed are *stale credits*:
a completion signal with no job armed to receive it.  They never bump
``COUNT``; they are counted in :attr:`stale_credits`, reported to the
system's MMIO access auditor, and raise
:class:`~repro.errors.ProtocolError` in strict mode.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError, ProtocolError
from repro.host.irq import InterruptController
from repro.mem.map import MmioDevice
from repro.sim import Simulator

if typing.TYPE_CHECKING:
    from repro.sim.diag import AccessAuditor

THRESHOLD_OFFSET = 0x00
COUNT_OFFSET = 0x08
INCREMENT_OFFSET = 0x10
CLEAR_OFFSET = 0x18
FIRED_OFFSET = 0x20

#: Name of the interrupt line the unit drives.
IRQ_LINE = "syncunit"


class SyncUnit(MmioDevice):
    """Centralized credit counter with threshold interrupt."""

    def __init__(self, sim: Simulator, irq: InterruptController,
                 irq_latency: int = 4,
                 auditor: typing.Optional["AccessAuditor"] = None) -> None:
        if irq_latency < 0:
            raise ConfigError(f"negative sync-unit IRQ latency {irq_latency}")
        self.sim = sim
        self.irq = irq
        self.irq_latency = irq_latency
        self.auditor = auditor
        self.threshold = 0
        self.count = 0
        self.interrupts_fired = 0
        #: Increments received while disarmed (a completion signal with
        #: no armed job — always a protocol bug somewhere upstream).
        self.stale_credits = 0
        self._armed = False
        #: Bumped by CLEAR/reset; an in-flight interrupt delivery
        #: carries the epoch it was scheduled under and is dropped if
        #: the unit was cleared in the meantime.
        self._epoch = 0
        irq.register_line(IRQ_LINE)

    # ------------------------------------------------------------------
    # MMIO interface
    # ------------------------------------------------------------------
    def read_register(self, offset: int) -> int:
        if offset == THRESHOLD_OFFSET:
            return self.threshold
        if offset == COUNT_OFFSET:
            return self.count
        if offset == FIRED_OFFSET:
            return self.interrupts_fired
        return super().read_register(offset)

    def write_register(self, offset: int, value: int) -> None:
        if offset == THRESHOLD_OFFSET:
            if value <= 0:
                # A runtime MMIO write gone wrong is a protocol bug in
                # the simulated software, not a construction-time
                # configuration error.
                self.audit("invalid-threshold", offset, value=value,
                           fatal=True)
                raise ProtocolError(
                    f"sync-unit threshold must be positive, got {value}")
            self.threshold = value
            self.count = 0
            self._armed = True
            return
        if offset == INCREMENT_OFFSET:
            self._increment()
            return
        if offset == CLEAR_OFFSET:
            self.count = 0
            self._armed = False
            self._epoch += 1  # cancel any in-flight interrupt delivery
            return
        if offset in (COUNT_OFFSET, FIRED_OFFSET):
            self.audit("read-only-write", offset, value=value, fatal=True)
            raise ProtocolError(
                f"sync-unit register at +{offset:#x} is read-only")
        super().write_register(offset, value)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _increment(self) -> None:
        if not self._armed:
            # Disarmed unit: the credit belongs to no armed job.  Count
            # it as a stale-credit event (and escalate in strict mode)
            # instead of silently corrupting the next job's COUNT.
            self.stale_credits += 1
            self.audit("stale-credit", INCREMENT_OFFSET,
                       detail="increment while disarmed")
            return
        self.count += 1
        if self.count >= self.threshold:
            self._armed = False
            epoch = self._epoch

            def deliver(_arg: typing.Any) -> None:
                if epoch != self._epoch:
                    return  # cleared/reset while the IRQ was in flight
                self.interrupts_fired += 1
                self.irq.raise_line(IRQ_LINE)

            self.sim.schedule(self.irq_latency, deliver)

    @property
    def armed(self) -> bool:
        """Whether a threshold is set and the interrupt has not fired yet."""
        return self._armed

    def reset(self) -> None:
        """Restore boot state (threshold cleared, counters zeroed).

        Like ``CLEAR``, cancels any interrupt delivery still in flight.
        """
        self.threshold = 0
        self.count = 0
        self.interrupts_fired = 0
        self.stale_credits = 0
        self._armed = False
        self._epoch += 1

    def snapshot(self) -> typing.Tuple[int, int, int, int, bool]:
        """Capture register and statistics state."""
        return (self.threshold, self.count, self.interrupts_fired,
                self.stale_credits, self._armed)

    def restore(self, state: typing.Tuple[int, int, int, int, bool]) -> None:
        """Restore a :meth:`snapshot`.

        Like ``CLEAR`` and :meth:`reset`, bumps the delivery epoch so an
        interrupt somehow still in flight can never fire into the
        restored state (a quiescent system has none; the bump is the
        same defense-in-depth reset applies).
        """
        (self.threshold, self.count, self.interrupts_fired,
         self.stale_credits, self._armed) = state
        self._epoch += 1
