"""The credit-counter synchronization unit — the paper's dedicated block.

Quoting the paper's design: the host "sets the number of accelerator
clusters selected for offload as a threshold for the counter.  When a
cluster is done with the job, it atomically increments the counter by
writing to a register which triggers the increment as a side effect.
As soon as the counter reaches the threshold value set by CVA6, it
automatically fires an interrupt notifying CVA6 of job completion."

Register map (word offsets from the unit's base address):

====== =========== ====================================================
offset register    behaviour
====== =========== ====================================================
0x00   THRESHOLD   read/write; writing re-arms the unit and clears the
                   counter for the next offload
0x08   COUNT       read-only credit counter
0x10   INCREMENT   write-to-increment (+1 per store, data ignored)
0x18   CLEAR       write: zero the counter and disarm
0x20   FIRED       read-only count of interrupts fired (statistics)
====== =========== ====================================================

The completion interrupt is delivered to the host's interrupt
controller ``irq_latency`` cycles after the threshold-matching
increment arrives.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.host.irq import InterruptController
from repro.mem.map import MmioDevice
from repro.sim import Simulator

THRESHOLD_OFFSET = 0x00
COUNT_OFFSET = 0x08
INCREMENT_OFFSET = 0x10
CLEAR_OFFSET = 0x18
FIRED_OFFSET = 0x20

#: Name of the interrupt line the unit drives.
IRQ_LINE = "syncunit"


class SyncUnit(MmioDevice):
    """Centralized credit counter with threshold interrupt."""

    def __init__(self, sim: Simulator, irq: InterruptController,
                 irq_latency: int = 4) -> None:
        if irq_latency < 0:
            raise ConfigError(f"negative sync-unit IRQ latency {irq_latency}")
        self.sim = sim
        self.irq = irq
        self.irq_latency = irq_latency
        self.threshold = 0
        self.count = 0
        self.interrupts_fired = 0
        self._armed = False
        irq.register_line(IRQ_LINE)

    # ------------------------------------------------------------------
    # MMIO interface
    # ------------------------------------------------------------------
    def read_register(self, offset: int) -> int:
        if offset == THRESHOLD_OFFSET:
            return self.threshold
        if offset == COUNT_OFFSET:
            return self.count
        if offset == FIRED_OFFSET:
            return self.interrupts_fired
        return super().read_register(offset)

    def write_register(self, offset: int, value: int) -> None:
        if offset == THRESHOLD_OFFSET:
            if value <= 0:
                raise ConfigError(
                    f"sync-unit threshold must be positive, got {value}")
            self.threshold = value
            self.count = 0
            self._armed = True
            return
        if offset == INCREMENT_OFFSET:
            self._increment()
            return
        if offset == CLEAR_OFFSET:
            self.count = 0
            self._armed = False
            return
        super().write_register(offset, value)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _increment(self) -> None:
        self.count += 1
        if self._armed and self.count >= self.threshold:
            self._armed = False
            self.interrupts_fired += 1
            self.sim.schedule(
                self.irq_latency,
                lambda _arg: self.irq.raise_line(IRQ_LINE))

    @property
    def armed(self) -> bool:
        """Whether a threshold is set and the interrupt has not fired yet."""
        return self._armed

    def reset(self) -> None:
        """Restore boot state (threshold cleared, counters zeroed)."""
        self.threshold = 0
        self.count = 0
        self.interrupts_fired = 0
        self._armed = False
