"""Workload-level execution: job streams and placement policies.

The paper's introduction motivates offload-overhead reduction with
applications that issue many small, heterogeneous data-parallel jobs.
This module provides that workload layer:

- :class:`JobSpec` / :func:`generate_workload` — reproducible streams
  of kernel invocations with configurable size distributions;
- placement *policies* — always-host, always-offload at fixed M, and
  the paper's contribution applied at stream scale: a **model-driven
  adaptive** policy that characterizes the platform once (fits the
  Eq.-1 family per kernel plus a host model from measurements) and then
  decides per job whether and how wide to offload;
- :func:`run_workload` — execute a stream on one simulated system and
  account makespan and per-job placements.

``repro.experiments.scheduler_experiment`` compares the policies; the
adaptive one wins because it sends fine-grained jobs to the host (the
offload floor would dominate) and wide jobs to the fabric.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro import flags
from repro.core.decision import HostExecutionModel
from repro.core.model import OffloadModel
from repro.core.offload import DEFAULT_MAX_CYCLES, offload, run_on_host
from repro.core.sweep import sweep
from repro.errors import OffloadError, ReproError, WorkloadError
from repro.kernels.registry import get_kernel
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job in a workload stream.

    ``tenant`` and ``arrival_cycle`` carry the traffic layer's
    annotations (who submitted the job, and when); for the classic
    back-to-back streams both stay at their zero defaults.
    """

    kernel_name: str
    n: int
    scalars: typing.Mapping[str, float] = dataclasses.field(
        default_factory=dict)
    seed: int = 0
    tenant: int = 0
    arrival_cycle: int = 0

    def __post_init__(self) -> None:
        kernel = get_kernel(self.kernel_name)
        scalars = dict(self.scalars) or {
            name: 1.0 for name in kernel.scalar_names}
        object.__setattr__(self, "scalars", scalars)
        kernel.validate(self.n, scalars)
        if self.tenant < 0:
            raise OffloadError(f"tenant id must be non-negative, "
                               f"got {self.tenant}")
        if self.arrival_cycle < 0:
            raise OffloadError(f"arrival cycle must be non-negative, "
                               f"got {self.arrival_cycle}")


#: Mixed into the per-stream seed-derivation RNG so job seeds never
#: collide with the stream seed itself (or with neighbouring streams'
#: job seeds, which the old ``seed + index`` scheme guaranteed).
_JOB_SEED_STREAM = 0x6A0B_5EED


def generate_workload(num_jobs: int,
                      kernels: typing.Sequence[str] = ("daxpy", "memcpy",
                                                       "scale", "dot"),
                      min_n: int = 16, max_n: int = 4096,
                      seed: int = 0, tenant: int = 0) -> typing.List[JobSpec]:
    """A reproducible stream of jobs with log-uniform sizes.

    Log-uniform sizes mirror real fine-grained workloads: most jobs are
    small (where offload overhead hurts) with a heavy tail of large
    ones (where the accelerator shines).

    Per-job input seeds are drawn from a dedicated RNG keyed on
    ``(seed, stream constant)``, so two streams with different seeds
    share no job seeds.  (The historical ``seed + index`` derivation
    made streams with seeds 0 and 1 share almost every job seed; set
    ``REPRO_LEGACY_JOB_SEEDS`` to restore it for old artifacts.)
    ``tenant`` tags every job in the stream — callers generating one
    stream per tenant should vary ``seed`` per tenant too, or the
    streams will be identical.
    """
    if num_jobs <= 0:
        raise OffloadError(f"workload needs at least one job, got {num_jobs}")
    if not 0 < min_n <= max_n:
        raise OffloadError(f"invalid size range [{min_n}, {max_n}]")
    rng = numpy.random.default_rng(seed)
    # A separate stream for job seeds keeps the kernel/size draws on
    # the historical sequence (E9's committed numbers depend on them).
    seed_rng = numpy.random.default_rng((seed, _JOB_SEED_STREAM))
    legacy_seeds = flags.legacy_job_seeds()
    jobs = []
    for index in range(num_jobs):
        kernel = str(rng.choice(list(kernels)))
        n = int(numpy.exp(rng.uniform(numpy.log(min_n), numpy.log(max_n))))
        n = max(min_n, min(max_n, n))
        job_seed = (seed + index if legacy_seeds
                    else int(seed_rng.integers(0, 2**63)))
        jobs.append(JobSpec(kernel_name=kernel, n=n, seed=job_seed,
                            tenant=tenant))
    return jobs


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Placement:
    """Where one job should run: the host, or M clusters."""

    offload: bool
    num_clusters: int


class Policy:
    """Base class: maps a job to a :class:`Placement`."""

    name = "policy"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        raise NotImplementedError

    def resolved_name(self, fabric_clusters: int) -> str:
        """The policy's name *on this fabric*.

        Policies whose behaviour depends on the fabric (e.g. a fixed
        offload width clamped to a smaller fabric) override this so
        result tables attribute measurements to what actually ran.
        """
        return self.name


class AlwaysHost(Policy):
    """Run everything on the host (the no-accelerator baseline)."""

    name = "always_host"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        return Placement(offload=False, num_clusters=0)


class AlwaysOffload(Policy):
    """Offload everything at a fixed width.

    ``place`` clamps the width to the fabric, so the *effective* width
    on a small fabric can be narrower than requested —
    :meth:`resolved_name` reports the width that actually runs (the
    bare :attr:`name` used to claim the requested width even when every
    placement was clamped, mislabeling experiment CSVs).
    """

    name = "always_offload"

    def __init__(self, num_clusters: int = 32) -> None:
        if num_clusters <= 0:
            raise OffloadError(
                f"offload width must be positive, got {num_clusters}")
        self.num_clusters = num_clusters
        self.name = f"always_offload_{num_clusters}"

    def resolved_name(self, fabric_clusters: int) -> str:
        return f"always_offload_{min(self.num_clusters, fabric_clusters)}"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        return Placement(offload=True,
                         num_clusters=min(self.num_clusters, fabric_clusters))


class ModelDriven(Policy):
    """The paper's decision model applied per job.

    Holds a fitted :class:`OffloadModel` and a fitted
    :class:`HostExecutionModel` per kernel (see
    :func:`characterize_platform`) and picks the faster predicted
    option, choosing the runtime-optimal M for offloads.
    """

    name = "model_driven"

    def __init__(self, offload_models: typing.Mapping[str, OffloadModel],
                 host_models: typing.Mapping[str, HostExecutionModel]) -> None:
        self.offload_models = dict(offload_models)
        self.host_models = dict(host_models)

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        try:
            model = self.offload_models[job.kernel_name]
            host = self.host_models[job.kernel_name]
        except KeyError:
            raise OffloadError(
                f"platform was not characterized for kernel "
                f"{job.kernel_name!r}") from None
        best_m = model.best_m(job.n, fabric_clusters)
        if model.predict(best_m, job.n) < host.predict(job.n):
            return Placement(offload=True, num_clusters=best_m)
        return Placement(offload=False, num_clusters=0)


def characterize_platform(
        config: SoCConfig,
        kernels: typing.Sequence[str],
        n_values: typing.Sequence[int] = (128, 256, 512, 1024),
        m_values: typing.Sequence[int] = (1, 2, 4, 8, 16, 32),
        jobs: int = 1,
        ) -> ModelDriven:
    """Fit offload and host models for each kernel (done once, offline).

    ``jobs`` fans each kernel's characterization sweep out over worker
    processes (see :func:`repro.core.sweep.sweep`); the fits are
    bit-identical to the serial path.
    """
    m_values = [m for m in m_values if m <= config.num_clusters]
    offload_models, host_models = {}, {}
    for kernel in kernels:
        grid = sweep(config, kernel, n_values, m_values, verify=False,
                     jobs=jobs)
        offload_models[kernel] = OffloadModel.fit(
            grid.triples(), label=f"platform/{kernel}")
        host_points = []
        for n in n_values:
            result = run_on_host(ManticoreSystem(config), kernel, n,
                                 verify=False)
            host_points.append((n, float(result.runtime_cycles)))
        host_models[kernel] = HostExecutionModel.fit(host_points)
    return ModelDriven(offload_models, host_models)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """One executed job: its placement and measured cycles."""

    spec: JobSpec
    placement: Placement
    cycles: int


@dataclasses.dataclass(frozen=True)
class WorkloadResult:
    """A workload stream executed under one policy."""

    policy_name: str
    outcomes: typing.Tuple[JobOutcome, ...]

    @property
    def makespan_cycles(self) -> int:
        """Total cycles to drain the stream (jobs run back to back)."""
        return sum(outcome.cycles for outcome in self.outcomes)

    @property
    def offloaded_jobs(self) -> int:
        return sum(1 for o in self.outcomes if o.placement.offload)

    @property
    def host_jobs(self) -> int:
        return len(self.outcomes) - self.offloaded_jobs


def run_workload(system: ManticoreSystem, jobs: typing.Sequence[JobSpec],
                 policy: Policy, verify: bool = False,
                 max_cycles: int = DEFAULT_MAX_CYCLES) -> WorkloadResult:
    """Execute a job stream under a placement policy on one system.

    ``max_cycles`` bounds each job's simulation individually (host and
    offloaded placements alike), not the whole stream.

    Raises
    ------
    WorkloadError
        If any job fails mid-stream.  The message names the job's
        index, kernel, size and placement; the failing job is on the
        ``job`` attribute, the original error is chained as
        ``__cause__``, and the simulation post-mortem (see
        :mod:`repro.sim.diag`) rides through on ``report`` when the
        underlying failure carried one.  The system is left for the
        caller to audit — a half-run instance is exactly what
        :meth:`repro.soc.pool.SystemPool.release` quiescence-checks
        (it drops dirty systems instead of recycling them), so
        releasing after a failure is safe.
    """
    if not jobs:
        raise OffloadError("empty workload")
    outcomes = []
    for index, job in enumerate(jobs):
        placement = policy.place(job, system.config.num_clusters)
        where = (f"{placement.num_clusters} clusters" if placement.offload
                 else "the host")
        try:
            if placement.offload:
                result = offload(system, job.kernel_name, job.n,
                                 placement.num_clusters, scalars=job.scalars,
                                 seed=job.seed, verify=verify,
                                 max_cycles=max_cycles)
                cycles = result.runtime_cycles
            else:
                result = run_on_host(system, job.kernel_name, job.n,
                                     scalars=job.scalars, seed=job.seed,
                                     verify=verify, max_cycles=max_cycles)
                cycles = result.runtime_cycles
        except ReproError as err:
            error = WorkloadError(
                f"job {index}/{len(jobs)} of policy "
                f"{policy.resolved_name(system.config.num_clusters)!r} "
                f"failed: {job.kernel_name}(n={job.n}) on {where}: {err}")
            error.job = job
            error.job_index = index
            error.placement = placement
            error.report = getattr(err, "report", None)
            raise error from err
        outcomes.append(JobOutcome(spec=job, placement=placement,
                                   cycles=cycles))
    return WorkloadResult(
        policy_name=policy.resolved_name(system.config.num_clusters),
        outcomes=tuple(outcomes))
