"""Workload-level execution: job streams and placement policies.

The paper's introduction motivates offload-overhead reduction with
applications that issue many small, heterogeneous data-parallel jobs.
This module provides that workload layer:

- :class:`JobSpec` / :func:`generate_workload` — reproducible streams
  of kernel invocations with configurable size distributions;
- placement *policies* — always-host, always-offload at fixed M, and
  the paper's contribution applied at stream scale: a **model-driven
  adaptive** policy that characterizes the platform once (fits the
  Eq.-1 family per kernel plus a host model from measurements) and then
  decides per job whether and how wide to offload;
- :func:`run_workload` — execute a stream on one simulated system and
  account makespan and per-job placements.

``repro.experiments.scheduler_experiment`` compares the policies; the
adaptive one wins because it sends fine-grained jobs to the host (the
offload floor would dominate) and wide jobs to the fabric.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.decision import HostExecutionModel
from repro.core.model import OffloadModel
from repro.core.offload import DEFAULT_MAX_CYCLES, offload, run_on_host
from repro.core.sweep import sweep
from repro.errors import OffloadError
from repro.kernels.registry import get_kernel
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job in a workload stream."""

    kernel_name: str
    n: int
    scalars: typing.Mapping[str, float] = dataclasses.field(
        default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        kernel = get_kernel(self.kernel_name)
        scalars = dict(self.scalars) or {
            name: 1.0 for name in kernel.scalar_names}
        object.__setattr__(self, "scalars", scalars)
        kernel.validate(self.n, scalars)


def generate_workload(num_jobs: int,
                      kernels: typing.Sequence[str] = ("daxpy", "memcpy",
                                                       "scale", "dot"),
                      min_n: int = 16, max_n: int = 4096,
                      seed: int = 0) -> typing.List[JobSpec]:
    """A reproducible stream of jobs with log-uniform sizes.

    Log-uniform sizes mirror real fine-grained workloads: most jobs are
    small (where offload overhead hurts) with a heavy tail of large
    ones (where the accelerator shines).
    """
    if num_jobs <= 0:
        raise OffloadError(f"workload needs at least one job, got {num_jobs}")
    if not 0 < min_n <= max_n:
        raise OffloadError(f"invalid size range [{min_n}, {max_n}]")
    rng = numpy.random.default_rng(seed)
    jobs = []
    for index in range(num_jobs):
        kernel = str(rng.choice(list(kernels)))
        n = int(numpy.exp(rng.uniform(numpy.log(min_n), numpy.log(max_n))))
        n = max(min_n, min(max_n, n))
        jobs.append(JobSpec(kernel_name=kernel, n=n, seed=seed + index))
    return jobs


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Placement:
    """Where one job should run: the host, or M clusters."""

    offload: bool
    num_clusters: int


class Policy:
    """Base class: maps a job to a :class:`Placement`."""

    name = "policy"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        raise NotImplementedError


class AlwaysHost(Policy):
    """Run everything on the host (the no-accelerator baseline)."""

    name = "always_host"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        return Placement(offload=False, num_clusters=0)


class AlwaysOffload(Policy):
    """Offload everything at a fixed width."""

    name = "always_offload"

    def __init__(self, num_clusters: int = 32) -> None:
        self.num_clusters = num_clusters
        self.name = f"always_offload_{num_clusters}"

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        return Placement(offload=True,
                         num_clusters=min(self.num_clusters, fabric_clusters))


class ModelDriven(Policy):
    """The paper's decision model applied per job.

    Holds a fitted :class:`OffloadModel` and a fitted
    :class:`HostExecutionModel` per kernel (see
    :func:`characterize_platform`) and picks the faster predicted
    option, choosing the runtime-optimal M for offloads.
    """

    name = "model_driven"

    def __init__(self, offload_models: typing.Mapping[str, OffloadModel],
                 host_models: typing.Mapping[str, HostExecutionModel]) -> None:
        self.offload_models = dict(offload_models)
        self.host_models = dict(host_models)

    def place(self, job: JobSpec, fabric_clusters: int) -> Placement:
        try:
            model = self.offload_models[job.kernel_name]
            host = self.host_models[job.kernel_name]
        except KeyError:
            raise OffloadError(
                f"platform was not characterized for kernel "
                f"{job.kernel_name!r}") from None
        best_m = model.best_m(job.n, fabric_clusters)
        if model.predict(best_m, job.n) < host.predict(job.n):
            return Placement(offload=True, num_clusters=best_m)
        return Placement(offload=False, num_clusters=0)


def characterize_platform(
        config: SoCConfig,
        kernels: typing.Sequence[str],
        n_values: typing.Sequence[int] = (128, 256, 512, 1024),
        m_values: typing.Sequence[int] = (1, 2, 4, 8, 16, 32),
        ) -> ModelDriven:
    """Fit offload and host models for each kernel (done once, offline)."""
    m_values = [m for m in m_values if m <= config.num_clusters]
    offload_models, host_models = {}, {}
    for kernel in kernels:
        grid = sweep(config, kernel, n_values, m_values, verify=False)
        offload_models[kernel] = OffloadModel.fit(
            grid.triples(), label=f"platform/{kernel}")
        host_points = []
        for n in n_values:
            result = run_on_host(ManticoreSystem(config), kernel, n,
                                 verify=False)
            host_points.append((n, float(result.runtime_cycles)))
        host_models[kernel] = HostExecutionModel.fit(host_points)
    return ModelDriven(offload_models, host_models)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JobOutcome:
    """One executed job: its placement and measured cycles."""

    spec: JobSpec
    placement: Placement
    cycles: int


@dataclasses.dataclass(frozen=True)
class WorkloadResult:
    """A workload stream executed under one policy."""

    policy_name: str
    outcomes: typing.Tuple[JobOutcome, ...]

    @property
    def makespan_cycles(self) -> int:
        """Total cycles to drain the stream (jobs run back to back)."""
        return sum(outcome.cycles for outcome in self.outcomes)

    @property
    def offloaded_jobs(self) -> int:
        return sum(1 for o in self.outcomes if o.placement.offload)

    @property
    def host_jobs(self) -> int:
        return len(self.outcomes) - self.offloaded_jobs


def run_workload(system: ManticoreSystem, jobs: typing.Sequence[JobSpec],
                 policy: Policy, verify: bool = False,
                 max_cycles: int = DEFAULT_MAX_CYCLES) -> WorkloadResult:
    """Execute a job stream under a placement policy on one system.

    ``max_cycles`` bounds each job's simulation individually (host and
    offloaded placements alike), not the whole stream.
    """
    if not jobs:
        raise OffloadError("empty workload")
    outcomes = []
    for job in jobs:
        placement = policy.place(job, system.config.num_clusters)
        if placement.offload:
            result = offload(system, job.kernel_name, job.n,
                             placement.num_clusters, scalars=job.scalars,
                             seed=job.seed, verify=verify,
                             max_cycles=max_cycles)
            cycles = result.runtime_cycles
        else:
            result = run_on_host(system, job.kernel_name, job.n,
                                 scalars=job.scalars, seed=job.seed,
                                 verify=verify, max_cycles=max_cycles)
            cycles = result.runtime_cycles
        outcomes.append(JobOutcome(spec=job, placement=placement,
                                   cycles=cycles))
    return WorkloadResult(policy_name=policy.name, outcomes=tuple(outcomes))
