"""Small statistics helpers used by reports and benchmarks."""

from __future__ import annotations

import typing

import numpy

from repro.errors import ModelError


def geometric_mean(values: typing.Sequence[float]) -> float:
    """Geometric mean (the right average for speedup ratios)."""
    array = numpy.asarray(values, dtype=float)
    if array.size == 0:
        raise ModelError("geometric mean of an empty sequence")
    if (array <= 0).any():
        raise ModelError("geometric mean requires positive values")
    return float(numpy.exp(numpy.mean(numpy.log(array))))


def summarize(values: typing.Sequence[float]) -> typing.Dict[str, float]:
    """Min/max/mean/median/std of a sample, as a dict."""
    array = numpy.asarray(values, dtype=float)
    if array.size == 0:
        raise ModelError("summary of an empty sequence")
    return {
        "min": float(array.min()),
        "max": float(array.max()),
        "mean": float(array.mean()),
        "median": float(numpy.median(array)),
        "std": float(array.std()),
    }


def crossover_m(runtimes: typing.Mapping[int, float]) -> typing.Optional[int]:
    """The M at which a runtime-vs-M series stops improving.

    Returns the arg-min M of the series (the interior optimum of the
    baseline curve in Fig. 1 left), or None for an empty series.
    """
    if not runtimes:
        return None
    return min(sorted(runtimes), key=lambda m: (runtimes[m], m))


def parallel_efficiency(runtimes: typing.Mapping[int, float]
                        ) -> typing.Dict[int, float]:
    """Speedup(M) / M relative to the M=1 entry of the series."""
    if 1 not in runtimes:
        raise ModelError("parallel efficiency needs the M=1 measurement")
    base = runtimes[1]
    if base <= 0:
        raise ModelError("non-positive M=1 runtime")
    return {m: base / (t * m) for m, t in sorted(runtimes.items())}


def amdahl_speedup(serial_fraction: float, m: int) -> float:
    """Textbook Amdahl speedup for a serial fraction ``s`` on ``m`` units."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ModelError(
            f"serial fraction must be in [0, 1], got {serial_fraction}")
    if m <= 0:
        raise ModelError(f"m must be positive, got {m}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / m)
