"""Model-fit quality reporting.

:meth:`repro.core.model.OffloadModel.fit` produces the coefficients;
this module quantifies how well they describe the measurements —
R², MAPE, worst-case APE and residuals — and compares a fitted model
against the paper's published constants.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.core.mape import mape, max_ape
from repro.core.model import OffloadModel
from repro.errors import ModelError


@dataclasses.dataclass(frozen=True)
class FitReport:
    """Goodness-of-fit of a model against a measurement set."""

    model: OffloadModel
    num_points: int
    r_squared: float
    mape_percent: float
    max_ape_percent: float
    residuals: typing.Tuple[float, ...]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            self.model.describe(),
            f"  points:  {self.num_points}",
            f"  R^2:     {self.r_squared:.6f}",
            f"  MAPE:    {self.mape_percent:.3f} %",
            f"  max APE: {self.max_ape_percent:.3f} %",
        ]
        return "\n".join(lines)


def fit_report(model: OffloadModel,
               measurements: typing.Sequence[typing.Tuple[int, int, float]]
               ) -> FitReport:
    """Evaluate ``model`` against ``(M, N, cycles)`` measurements."""
    measurements = list(measurements)
    if not measurements:
        raise ModelError("cannot evaluate a fit against zero measurements")
    actual = numpy.array([t for _m, _n, t in measurements], dtype=float)
    predicted = numpy.array(
        [model.predict(m, n) for m, n, _t in measurements])
    residuals = actual - predicted
    total = float(numpy.sum((actual - actual.mean()) ** 2))
    if total == 0.0:
        r_squared = 1.0 if numpy.allclose(residuals, 0) else 0.0
    else:
        r_squared = 1.0 - float(numpy.sum(residuals ** 2)) / total
    return FitReport(
        model=model,
        num_points=len(measurements),
        r_squared=r_squared,
        mape_percent=mape(actual, predicted),
        max_ape_percent=max_ape(actual, predicted),
        residuals=tuple(float(r) for r in residuals),
    )


def compare_models(ours: OffloadModel, reference: OffloadModel
                   ) -> typing.Dict[str, typing.Tuple[float, float]]:
    """Coefficient-by-coefficient comparison (ours vs reference)."""
    return {
        "t0": (ours.t0, reference.t0),
        "mem_coeff": (ours.mem_coeff, reference.mem_coeff),
        "compute_coeff": (ours.compute_coeff, reference.compute_coeff),
        "dispatch_coeff": (ours.dispatch_coeff, reference.dispatch_coeff),
    }
