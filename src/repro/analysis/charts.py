"""ASCII charts: terminal-friendly renderings of the paper's figures."""

from __future__ import annotations

import typing


def bar_chart(series: typing.Mapping[str, float], width: int = 50,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart of labelled values.

    >>> print(bar_chart({"a": 2.0, "b": 4.0}, width=4))
    a | ##   2
    b | #### 4
    """
    if not series:
        raise ValueError("bar chart of an empty series")
    if width <= 0:
        raise ValueError(f"chart width must be positive, got {width}")
    peak = max(series.values())
    if peak <= 0:
        raise ValueError("bar chart requires at least one positive value")
    label_width = max(len(str(label)) for label in series)
    lines = [title] if title else []
    for label, value in series.items():
        bar = "#" * max(0, round(width * value / peak))
        shown = f"{value:g}{unit}"
        lines.append(f"{str(label).ljust(label_width)} | {bar.ljust(width)} {shown}")
    return "\n".join(lines)


def line_chart(series: typing.Mapping[str, typing.Mapping[float, float]],
               width: int = 60, height: int = 16, title: str = "") -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a series name to ``{x: y}``.  Each series is drawn
    with its own glyph (``*``, ``o``, ``+``, ``x``, ...); axes are
    annotated with min/max.  Intended for quick terminal inspection of
    figure shapes, not publication graphics.
    """
    if not series:
        raise ValueError("line chart of an empty series dict")
    glyphs = "*o+x@%&="
    points = [(x, y) for data in series.values() for x, y in data.items()]
    if not points:
        raise ValueError("line chart with no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, data) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in data.items():
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = [title] if title else []
    lines.append(f"y_max = {y_hi:g}")
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append(f"  y_min = {y_lo:g};  x: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series))
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)
