"""Resource-utilization reporting for a simulated system.

After a run, every contended resource in the SoC knows how busy it was;
this report collects them into the table an architect looks at first:
is the bottleneck the memory channel, the host port, or the atomics
path?
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.soc.manticore import ManticoreSystem


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Activity of one serial resource over the whole simulation."""

    name: str
    requests: int
    busy_cycles: int
    utilization: float


def collect_utilization(system: ManticoreSystem,
                        include_idle: bool = False
                        ) -> typing.List[ResourceUsage]:
    """Usage of every contended resource (idle ones skipped by default)."""
    resources = [
        system.read_channel,
        system.write_channel,
        system.noc.host_port,
        system.noc.amo_port,
        *system.noc.cluster_ports,
    ]
    usages = []
    for resource in resources:
        if not include_idle and resource.requests == 0:
            continue
        usages.append(ResourceUsage(
            name=resource.name,
            requests=resource.requests,
            busy_cycles=resource.busy_cycles,
            utilization=resource.utilization(),
        ))
    usages.sort(key=lambda usage: usage.busy_cycles, reverse=True)
    return usages


def utilization_report(system: ManticoreSystem,
                       include_idle: bool = False) -> str:
    """Render the utilization table for a system that has run."""
    usages = collect_utilization(system, include_idle=include_idle)
    table = Table(["resource", "requests", "busy [cycles]", "utilization"],
                  title=f"resource utilization over {system.sim.now} cycles")
    for usage in usages:
        table.add_row([usage.name, usage.requests, usage.busy_cycles,
                       f"{100 * usage.utilization:.1f} %"])
    if not usages:
        table.add_row(["(no traffic)", 0, 0, "0.0 %"])
    return table.render()
