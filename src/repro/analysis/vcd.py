"""VCD (Value Change Dump) export of simulation traces.

EDA workflows debug timing in a waveform viewer; this module converts a
:class:`repro.sim.TraceRecorder` log into an IEEE-1364 VCD file that
GTKWave and friends open directly.  Each trace *source* becomes a
scope; each *label* within it becomes a 1-bit event wire that pulses
high for one cycle at every occurrence (the standard encoding for
discrete markers).  Timescale is 1 ns — the paper's 1 GHz clock, so
waveform time reads directly in cycles.
"""

from __future__ import annotations

import io
import typing

from repro.sim import TraceRecorder

#: VCD identifier alphabet (printable ASCII as per the standard).
_ID_ALPHABET = [chr(code) for code in range(33, 127)]


def _identifier(index: int) -> str:
    """The ``index``-th VCD short identifier (base-94 encoding)."""
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        digits.append(_ID_ALPHABET[rem])
    return "".join(reversed(digits))


def trace_to_vcd(recorder: TraceRecorder, module: str = "soc") -> str:
    """Render a trace as VCD text.

    Raises
    ------
    ValueError
        If the recorder holds no records (an empty VCD is a viewer
        error, better caught here).
    """
    if not len(recorder):
        raise ValueError("cannot export an empty trace to VCD")

    # Collect (source, label) wires in first-appearance order.
    wires: typing.Dict[typing.Tuple[str, str], str] = {}
    for record in recorder:
        key = (record.source, record.label)
        if key not in wires:
            wires[key] = _identifier(len(wires))

    out = io.StringIO()
    out.write("$date repro trace export $end\n")
    out.write("$version repro 1.0 $end\n")
    out.write("$timescale 1ns $end\n")
    out.write(f"$scope module {module} $end\n")
    by_source: typing.Dict[str, typing.List[typing.Tuple[str, str]]] = {}
    for (source, label), ident in wires.items():
        by_source.setdefault(source, []).append((label, ident))
    for source in by_source:
        safe_source = source.replace(" ", "_").replace(".", "_")
        out.write(f"$scope module {safe_source} $end\n")
        for label, ident in by_source[source]:
            safe_label = label.replace(" ", "_")
            out.write(f"$var wire 1 {ident} {safe_label} $end\n")
        out.write("$upscope $end\n")
    out.write("$upscope $end\n")
    out.write("$enddefinitions $end\n")

    # Initial values: everything low.
    out.write("$dumpvars\n")
    for ident in wires.values():
        out.write(f"0{ident}\n")
    out.write("$end\n")

    # One-cycle pulses: raise at the record cycle, drop one cycle later.
    changes: typing.Dict[int, typing.List[str]] = {}
    for record in recorder:
        ident = wires[(record.source, record.label)]
        changes.setdefault(record.cycle, []).append(f"1{ident}")
        changes.setdefault(record.cycle + 1, []).append(f"0{ident}")
    for cycle in sorted(changes):
        out.write(f"#{cycle}\n")
        # A pulse at consecutive cycles yields 0 then 1 at the same
        # timestamp; emit falls before rises so the wire re-pulses.
        for change in sorted(changes[cycle], key=lambda c: c[0] != "0"):
            out.write(change + "\n")
    return out.getvalue()


def write_vcd(recorder: TraceRecorder, path: str,
              module: str = "soc") -> None:
    """Write the trace to a ``.vcd`` file."""
    with open(path, "w") as handle:
        handle.write(trace_to_vcd(recorder, module=module))
