"""CSV export of sweep measurements and grids."""

from __future__ import annotations

import csv
import io
import typing

from repro.core.sweep import SweepResult


def sweep_to_csv(result: SweepResult) -> str:
    """Render a sweep as CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["kernel", "n", "num_clusters", "variant",
                     "runtime_cycles", "setup", "dispatch",
                     "completion_wait", "sync_overhead"])
    for point in result:
        phases = point.phases
        writer.writerow([
            point.kernel_name, point.n, point.num_clusters, point.variant,
            point.runtime_cycles,
            phases.get("setup", ""), phases.get("dispatch", ""),
            phases.get("completion_wait", ""),
            phases.get("sync_overhead", ""),
        ])
    return buffer.getvalue()


def grid_to_csv(grid: typing.Mapping[typing.Tuple[int, int], float],
                value_name: str = "value") -> str:
    """Render a ``{(M, N): value}`` grid as long-format CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["num_clusters", "n", value_name])
    for (m, n), value in sorted(grid.items()):
        writer.writerow([m, n, value])
    return buffer.getvalue()
