"""Parameter sensitivity: how model coefficients respond to any knob.

Ablation A2 sweeps one parameter (the dispatch cost) by hand; this tool
generalizes it: sweep *any* :class:`~repro.soc.config.SoCConfig` field,
re-fit the Eq.-1 model at each value, and report how the coefficients
move.  Because the model's terms map one-to-one onto mechanisms (see
``docs/modeling.md``), the sensitivity table tells an architect directly
which hardware knob buys which term — e.g. halving
``mem_read_width_bytes`` doubles the memory coefficient and leaves the
compute coefficient alone.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.tables import Table
from repro.core.model import OffloadModel
from repro.core.sweep import sweep
from repro.errors import ConfigError
from repro.soc.config import SoCConfig


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """The fitted model at one parameter value."""

    value: int
    model: OffloadModel


@dataclasses.dataclass(frozen=True)
class SensitivityResult:
    """A parameter sweep with per-value fitted models."""

    parameter: str
    kernel: str
    points: typing.Tuple[SensitivityPoint, ...]

    def coefficient(self, name: str) -> typing.Dict[int, float]:
        """``{parameter_value: coefficient}`` for one model coefficient."""
        return {point.value: getattr(point.model, name)
                for point in self.points}

    def most_sensitive_coefficient(self) -> str:
        """The coefficient with the largest relative swing over the sweep.

        The constant term is compared on equal footing by normalizing
        every coefficient to its value at the sweep's first point.
        """
        best_name, best_swing = "t0", 0.0
        for name in ("t0", "mem_coeff", "compute_coeff", "dispatch_coeff"):
            series = [getattr(p.model, name) for p in self.points]
            baseline = series[0]
            if baseline <= 0:
                span = max(series) - min(series)
                swing = float("inf") if span > 1e-9 else 0.0
            else:
                swing = (max(series) - min(series)) / baseline
            if swing > best_swing:
                best_name, best_swing = name, swing
        return best_name

    def render(self) -> str:
        table = Table([self.parameter, "t0", "mem", "compute", "dispatch"],
                      title=f"sensitivity of the fitted {self.kernel} "
                            f"model to SoCConfig.{self.parameter}")
        for point in self.points:
            model = point.model
            table.add_row([point.value, model.t0, model.mem_coeff,
                           model.compute_coeff, model.dispatch_coeff])
        note = (f"most sensitive coefficient: "
                f"{self.most_sensitive_coefficient()}")
        return "\n\n".join([table.render(), note])


def sensitivity(parameter: str, values: typing.Sequence[int],
                kernel: str = "daxpy", design: str = "extended",
                n_values: typing.Sequence[int] = (256, 512, 1024),
                m_values: typing.Sequence[int] = (1, 2, 4, 8, 16, 32),
                **config_overrides) -> SensitivityResult:
    """Sweep one config field and fit the model at each value.

    Parameters
    ----------
    parameter:
        Name of a :class:`SoCConfig` field (validated).
    design:
        ``"extended"`` fits the 3-coefficient model; ``"baseline"``
        includes the dispatch column.

    Raises
    ------
    ConfigError
        On unknown fields or empty value lists.
    """
    field_names = {field.name for field in dataclasses.fields(SoCConfig)}
    if parameter not in field_names:
        raise ConfigError(
            f"SoCConfig has no field {parameter!r}; see "
            "repro.soc.config.SoCConfig")
    if not values:
        raise ConfigError("sensitivity sweep needs at least one value")
    if design not in ("extended", "baseline"):
        raise ConfigError(f"unknown design {design!r}")

    points = []
    for value in values:
        overrides = dict(config_overrides)
        overrides[parameter] = value
        if design == "extended":
            config = SoCConfig.extended(**overrides)
        else:
            config = SoCConfig.baseline(**overrides)
        usable_ms = [m for m in m_values if m <= config.num_clusters]
        grid = sweep(config, kernel, n_values, usable_ms, verify=False)
        model = OffloadModel.fit(
            grid.triples(),
            include_dispatch_term=(design == "baseline"),
            label=f"{parameter}={value}")
        points.append(SensitivityPoint(value=value, model=model))
    return SensitivityResult(parameter=parameter, kernel=kernel,
                             points=tuple(points))
