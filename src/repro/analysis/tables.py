"""Minimal ASCII table rendering for benchmark reports."""

from __future__ import annotations

import typing


class Table:
    """A fixed-header table that renders aligned ASCII.

    >>> t = Table(["M", "cycles"])
    >>> t.add_row([1, 978])
    >>> t.add_row([32, 532])
    >>> print(t.render())        # doctest: +NORMALIZE_WHITESPACE
    M   | cycles
    ----+-------
    1   | 978
    32  | 532
    """

    def __init__(self, headers: typing.Sequence[str],
                 title: str = "") -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: typing.List[typing.List[str]] = []

    def add_row(self, values: typing.Sequence) -> None:
        """Append a row; floats render with 3 decimals, rest via str()."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns")
        self.rows.append([self._format(v) for v in values])

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """The table as a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)).rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(
                cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
