"""Analysis and reporting: fit statistics, tables, charts, exports.

These utilities turn sweep measurements into the artifacts the paper
reports: the runtime-vs-M series of Fig. 1 (left), the speedup grid of
Fig. 1 (right), the fitted Eq.-1 coefficients, and the per-N MAPE
table.  Rendering is plain text (the benchmarks print reproduction
tables and ASCII charts); raw data can be exported as CSV.
"""

from repro.analysis.fitting import FitReport, fit_report
from repro.analysis.charts import bar_chart, line_chart
from repro.analysis.export import grid_to_csv, sweep_to_csv
from repro.analysis.sensitivity import SensitivityResult, sensitivity
from repro.analysis.stats import geometric_mean, summarize
from repro.analysis.tables import Table
from repro.analysis.utilization import collect_utilization, utilization_report
from repro.analysis.vcd import trace_to_vcd, write_vcd

__all__ = [
    "FitReport",
    "SensitivityResult",
    "Table",
    "bar_chart",
    "collect_utilization",
    "fit_report",
    "geometric_mean",
    "grid_to_csv",
    "line_chart",
    "sensitivity",
    "summarize",
    "sweep_to_csv",
    "trace_to_vcd",
    "utilization_report",
    "write_vcd",
]
