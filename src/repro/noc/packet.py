"""Transaction records carried by the interconnect.

These are bookkeeping objects: the timing lives in
:class:`repro.noc.xbar.Interconnect` and the state change in the address
map targets.  Keeping an explicit record per transaction gives tests and
traces something concrete to assert on (ordering, counts, targets).
"""

from __future__ import annotations

import enum
import typing


class TransactionKind(enum.Enum):
    """The four operations the control interconnect supports."""

    READ = "read"
    WRITE = "write"
    AMO_ADD = "amo_add"
    MULTICAST_WRITE = "multicast_write"


class _TransactionFields(typing.NamedTuple):
    kind: "TransactionKind"
    source: str
    addresses: typing.Tuple[int, ...]
    value: typing.Optional[int]
    posted: bool
    issued_at: int


class Transaction(_TransactionFields):
    """One interconnect transaction.

    Built on a named tuple (with validation in ``__new__``) rather than
    a frozen dataclass: the interconnect logs one of these per control
    operation, so construction cost is paid tens of thousands of times
    per measurement.

    Attributes
    ----------
    kind:
        Operation type.
    source:
        Initiator label (``"host"`` or ``"cluster<i>"``).
    addresses:
        Target byte addresses — a single element except for multicasts.
    value:
        Store data / AMO operand (``None`` for reads).
    posted:
        Whether the initiator continues without waiting for delivery.
    issued_at:
        Cycle the transaction entered its request port.
    """

    __slots__ = ()

    def __new__(cls, kind: TransactionKind, source: str,
                addresses: typing.Tuple[int, ...],
                value: typing.Optional[int], posted: bool,
                issued_at: int) -> "Transaction":
        if not addresses:
            raise ValueError("transaction must target at least one address")
        if kind is not TransactionKind.MULTICAST_WRITE \
                and len(addresses) != 1:
            raise ValueError(
                f"{kind.value} transaction must target exactly one "
                f"address, got {len(addresses)}"
            )
        return _TransactionFields.__new__(
            cls, kind, source, addresses, value, posted, issued_at)

    @property
    def address(self) -> int:
        """The single target address (unicast transactions only)."""
        if len(self.addresses) != 1:
            raise ValueError("multicast transaction has multiple addresses")
        return self.addresses[0]

    @property
    def fanout(self) -> int:
        """Number of delivery targets."""
        return len(self.addresses)
