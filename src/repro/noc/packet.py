"""Transaction records carried by the interconnect.

These are bookkeeping objects: the timing lives in
:class:`repro.noc.xbar.Interconnect` and the state change in the address
map targets.  Keeping an explicit record per transaction gives tests and
traces something concrete to assert on (ordering, counts, targets).
"""

from __future__ import annotations

import dataclasses
import enum
import typing


class TransactionKind(enum.Enum):
    """The four operations the control interconnect supports."""

    READ = "read"
    WRITE = "write"
    AMO_ADD = "amo_add"
    MULTICAST_WRITE = "multicast_write"


@dataclasses.dataclass(frozen=True)
class Transaction:
    """One interconnect transaction.

    Attributes
    ----------
    kind:
        Operation type.
    source:
        Initiator label (``"host"`` or ``"cluster<i>"``).
    addresses:
        Target byte addresses — a single element except for multicasts.
    value:
        Store data / AMO operand (``None`` for reads).
    posted:
        Whether the initiator continues without waiting for delivery.
    issued_at:
        Cycle the transaction entered its request port.
    """

    kind: TransactionKind
    source: str
    addresses: typing.Tuple[int, ...]
    value: typing.Optional[int]
    posted: bool
    issued_at: int

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError("transaction must target at least one address")
        if self.kind is not TransactionKind.MULTICAST_WRITE \
                and len(self.addresses) != 1:
            raise ValueError(
                f"{self.kind.value} transaction must target exactly one "
                f"address, got {len(self.addresses)}"
            )

    @property
    def address(self) -> int:
        """The single target address (unicast transactions only)."""
        if len(self.addresses) != 1:
            raise ValueError("multicast transaction has multiple addresses")
        return self.addresses[0]

    @property
    def fanout(self) -> int:
        """Number of delivery targets."""
        return len(self.addresses)
