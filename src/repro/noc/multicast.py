"""Multicast target-set construction.

In the extended hardware, the host's load-store unit recognizes stores
to a *multicast window*: one store is replicated by the interconnect to
the same peripheral offset in every selected cluster.  The selection is
a contiguous range of cluster IDs here (the paper always offloads to
clusters ``0..M-1``), expressed as the list of concrete per-cluster
addresses the replication tree must deliver to.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError


def multicast_targets(base: int, stride: int, count: int,
                      offset: int = 0) -> typing.Tuple[int, ...]:
    """Per-cluster delivery addresses for a multicast store.

    Parameters
    ----------
    base:
        Base address of cluster 0's peripheral block.
    stride:
        Address distance between consecutive clusters' blocks.
    count:
        Number of clusters selected (IDs ``0..count-1``).
    offset:
        Register offset within each cluster's block.

    Returns
    -------
    tuple of int
        One absolute address per selected cluster, in cluster-ID order.

    Raises
    ------
    ConfigError
        If the parameters do not describe a valid target set.
    """
    if count <= 0:
        raise ConfigError(f"multicast needs at least one target, got {count}")
    if stride <= 0:
        raise ConfigError(f"multicast stride must be positive, got {stride}")
    if offset < 0 or offset >= stride:
        raise ConfigError(
            f"multicast register offset {offset:#x} outside the per-cluster "
            f"block (stride {stride:#x})"
        )
    return tuple(base + cluster * stride + offset for cluster in range(count))
