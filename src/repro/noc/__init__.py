"""Interconnect models.

The interconnect carries *control* traffic: host stores/loads to cluster
peripherals and MMIO devices, cluster atomics and posted writes back
toward the host side.  Bulk *data* traffic (DMA bursts) does not travel
here — it uses the bandwidth-arbitrated memory channels owned by the SoC
(see :class:`repro.sim.ThroughputChannel` and
:class:`repro.cluster.dma.DmaEngine`), matching the split between the
narrow configuration interconnect and the wide data interconnect in
Manticore-class designs.

The paper's first hardware extension lives here:
:meth:`Interconnect.host_multicast_write` replicates one host store to
many cluster targets with a single host-port occupancy, making dispatch
cost constant in the number of clusters instead of linear.
"""

from repro.noc.packet import Transaction, TransactionKind
from repro.noc.multicast import multicast_targets
from repro.noc.xbar import Interconnect, NocParams

__all__ = [
    "Interconnect",
    "NocParams",
    "Transaction",
    "TransactionKind",
    "multicast_targets",
]
