"""The control interconnect: host and cluster ports, timing, routing.

Timing model
------------
Each initiator owns a *request port* (:class:`repro.sim.SerialResource`)
that serializes its outgoing transactions: a store occupies the host
port for ``store_occupancy`` cycles, which is what makes the baseline's
one-store-per-cluster dispatch loop linear in the cluster count.  After
leaving the port, a transaction takes ``request_latency`` cycles to
reach its target, where the functional state change happens; responses
(read data, AMO results, store acks) take ``response_latency`` cycles
back.

Multicast stores occupy the host port *once* and are delivered to every
target after an extra ``multicast_tree_latency`` (the replication tree
depth) — the paper's interconnect extension.

Atomics from all clusters serialize at a single atomics port in front of
shared memory (``amo_service_cycles`` each), which is why the baseline's
completion protocol degrades as clusters multiply.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import ConfigError
from repro.mem.map import AddressMap
from repro.noc.packet import Transaction, TransactionKind
from repro.sim import Event, SerialResource, Simulator


@dataclasses.dataclass(frozen=True)
class NocParams:
    """Interconnect timing parameters (cycles).

    Defaults are calibrated so the full system reproduces the paper's
    emergent constants; see ``tests/integration/test_calibration.py``.
    """

    request_latency: int = 6
    response_latency: int = 6
    store_occupancy: int = 8
    load_occupancy: int = 2
    cluster_port_occupancy: int = 1
    multicast_enabled: bool = False
    multicast_tree_latency: int = 3
    amo_service_cycles: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range parameters."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.type == "int" and value < 0:
                raise ConfigError(f"NocParams.{field.name} must be >= 0, got {value}")
        if self.store_occupancy == 0:
            raise ConfigError("store_occupancy must be at least 1 cycle")


@dataclasses.dataclass(frozen=True)
class WriteHandle:
    """The three milestones of a store.

    Attributes
    ----------
    issued:
        Port occupancy released — a *posted* store lets the initiator
        continue here.
    delivered:
        Functional write performed at the target.
    acked:
        Ack returned to the initiator — a *non-posted* store stalls the
        initiator until here.
    """

    issued: Event
    delivered: Event
    acked: Event


class Interconnect:
    """Routes timed control transactions through the address map."""

    def __init__(self, sim: Simulator, address_map: AddressMap,
                 params: typing.Optional[NocParams] = None,
                 num_clusters: int = 1) -> None:
        params = params or NocParams()
        params.validate()
        if num_clusters <= 0:
            raise ConfigError(f"need at least one cluster, got {num_clusters}")
        self.sim = sim
        self.address_map = address_map
        self.params = params
        self.host_port = SerialResource(sim, "noc.host_port")
        self.cluster_ports = [
            SerialResource(sim, f"noc.cluster{i}_port") for i in range(num_clusters)
        ]
        self.amo_port = SerialResource(sim, "noc.amo_port")
        self.transactions: typing.List[Transaction] = []
        # Per-initiator routing handles: each port keeps its own
        # last-region hit slot, so one cluster's descriptor burst cannot
        # evict the host's completion-flag region from a shared cache.
        self._host_router = address_map.port_router()
        self._cluster_routers = [
            address_map.port_router() for _ in range(num_clusters)
        ]

    # ------------------------------------------------------------------
    # Host-initiated traffic
    # ------------------------------------------------------------------
    def host_write(self, addr: int, value: int) -> WriteHandle:
        """A host store to one target; see :class:`WriteHandle`."""
        self._log(TransactionKind.WRITE, "host", (addr,), value)
        return self._write(self.host_port, self.params.store_occupancy,
                           self.params.request_latency, (addr,), value,
                           self._host_router)

    def host_multicast_write(self, addresses: typing.Sequence[int],
                             value: int) -> WriteHandle:
        """One host store replicated to many targets (the extension).

        Raises
        ------
        ConfigError
            If the interconnect was built without multicast support.
        """
        if not self.params.multicast_enabled:
            raise ConfigError(
                "multicast store on an interconnect without the multicast "
                "extension (set NocParams.multicast_enabled)"
            )
        addresses = tuple(addresses)
        self._log(TransactionKind.MULTICAST_WRITE, "host", addresses, value)
        latency = self.params.request_latency + self.params.multicast_tree_latency
        return self._write(self.host_port, self.params.store_occupancy,
                           latency, addresses, value, self._host_router)

    def host_read(self, addr: int) -> Event:
        """A host load; the returned event's value is the data."""
        self._log(TransactionKind.READ, "host", (addr,), None)
        return self._read(self.host_port, self.params.load_occupancy, addr,
                          self._host_router)

    # ------------------------------------------------------------------
    # Cluster-initiated traffic
    # ------------------------------------------------------------------
    def cluster_write(self, cluster_id: int, addr: int, value: int) -> WriteHandle:
        """A cluster store (e.g. the posted sync-unit increment)."""
        port = self._cluster_port(cluster_id)
        self._log(TransactionKind.WRITE, f"cluster{cluster_id}", (addr,), value)
        return self._write(port, self.params.cluster_port_occupancy,
                           self.params.request_latency, (addr,), value,
                           self._cluster_routers[cluster_id])

    def cluster_read(self, cluster_id: int, addr: int) -> Event:
        """A cluster load (e.g. the DM core fetching the job descriptor)."""
        port = self._cluster_port(cluster_id)
        self._log(TransactionKind.READ, f"cluster{cluster_id}", (addr,), None)
        return self._read(port, self.params.cluster_port_occupancy, addr,
                          self._cluster_routers[cluster_id])

    def cluster_read_burst(self, cluster_id: int, addr: int,
                           nwords: int) -> Event:
        """A burst read of ``nwords`` consecutive words (AXI-style).

        Costs one round trip plus one beat per extra word; the event's
        value is the list of words.  Used by DM cores to fetch job
        descriptors in one or two bursts instead of word-by-word loads.
        """
        if nwords <= 0:
            raise ConfigError(f"burst length must be positive, got {nwords}")
        port = self._cluster_port(cluster_id)
        router = self._cluster_routers[cluster_id]
        self._log(TransactionKind.READ, f"cluster{cluster_id}", (addr,), None)
        done = self.sim.event(name=f"burst@{addr:#x}")

        def body():
            yield port.request(self.params.cluster_port_occupancy)
            yield self.params.request_latency
            values = [router.read_word(addr + 8 * i)
                      for i in range(nwords)]
            yield self.params.response_latency + (nwords - 1)
            done.trigger(values)

        self.sim.spawn(body(), name=f"noc.burst.c{cluster_id}")
        return done

    def cluster_amo_add(self, cluster_id: int, addr: int, operand: int) -> Event:
        """Atomic fetch-and-add from a cluster; event value is the *old* word.

        All AMOs serialize at the shared atomics port, so concurrent
        completion flags from many clusters queue up — the baseline
        synchronization cost the credit counter removes.
        """
        port = self._cluster_port(cluster_id)
        router = self._cluster_routers[cluster_id]
        self._log(TransactionKind.AMO_ADD, f"cluster{cluster_id}", (addr,), operand)
        done = self.sim.event(name=f"amo@{addr:#x}")

        def body():
            yield port.request(self.params.cluster_port_occupancy)
            yield self.params.request_latency
            yield self.amo_port.request(self.params.amo_service_cycles)
            old = router.amo_add(addr, operand)
            yield self.params.response_latency
            done.trigger(old)

        self.sim.spawn(body(), name=f"noc.amo.c{cluster_id}")
        return done

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cluster_port(self, cluster_id: int) -> SerialResource:
        if not 0 <= cluster_id < len(self.cluster_ports):
            raise ConfigError(
                f"cluster id {cluster_id} out of range "
                f"[0, {len(self.cluster_ports)})"
            )
        return self.cluster_ports[cluster_id]

    def _write(self, port: SerialResource, occupancy: int, latency: int,
               addresses: typing.Tuple[int, ...], value: int,
               router) -> WriteHandle:
        issued = port.request(occupancy)
        delivered = self.sim.event(name="write.delivered")
        acked = self.sim.event(name="write.acked")

        def body():
            yield issued
            yield latency
            for addr in addresses:
                router.write_word(addr, value)
            delivered.trigger(self.sim.now)
            yield self.params.response_latency
            acked.trigger(self.sim.now)

        self.sim.spawn(body(), name="noc.write")
        return WriteHandle(issued=issued, delivered=delivered, acked=acked)

    def _read(self, port: SerialResource, occupancy: int, addr: int,
              router) -> Event:
        done = self.sim.event(name=f"read@{addr:#x}")

        def body():
            yield port.request(occupancy)
            yield self.params.request_latency
            value = router.read_word(addr)
            yield self.params.response_latency
            done.trigger(value)

        self.sim.spawn(body(), name="noc.read")
        return done

    # ------------------------------------------------------------------
    # Analytic fast-forward support (see repro.runtime.protocol)
    # ------------------------------------------------------------------
    def charge_host_poll_reads(self, addr: int, first_issue: int,
                               period: int, count: int) -> None:
        """Account ``count`` host poll loads without simulating them.

        The virtualized completion-poll path computes analytically when
        each skipped load would have issued; this charges exactly what
        the simulated loads would have: one logged READ transaction per
        load (``issued_at`` at the true issue cycle) and the host
        port's occupancy and request count.  Entries are appended in
        one batch, so their *list position* relative to concurrent
        cluster traffic can differ from a fully simulated run — counts,
        timestamps, and port accounting are identical.
        """
        occupancy = self.params.load_occupancy
        append = self.transactions.append
        for k in range(count):
            append(Transaction(
                kind=TransactionKind.READ, source="host", addresses=(addr,),
                value=None, posted=False, issued_at=first_issue + k * period,
            ))
        self.host_port.charge_bulk(
            requests=count, busy_cycles=count * occupancy,
            next_free=first_issue + (count - 1) * period + occupancy)

    def reset(self) -> None:
        """Restore boot state: empty transaction log, idle ports."""
        self.transactions.clear()
        self.host_port.reset()
        self.amo_port.reset()
        for port in self.cluster_ports:
            port.reset()

    def _log(self, kind: TransactionKind, source: str,
             addresses: typing.Tuple[int, ...],
             value: typing.Optional[int]) -> None:
        self.transactions.append(Transaction(
            kind=kind, source=source, addresses=addresses, value=value,
            posted=False, issued_at=self.sim.now,
        ))

    def count(self, kind: TransactionKind,
              source: typing.Optional[str] = None) -> int:
        """Number of logged transactions of a kind (optionally per source)."""
        return sum(
            1 for txn in self.transactions
            if txn.kind is kind and (source is None or txn.source == source)
        )
