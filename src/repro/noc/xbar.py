"""The control interconnect: host and cluster ports, timing, routing.

Timing model
------------
Each initiator owns a *request port* (:class:`repro.sim.SerialResource`)
that serializes its outgoing transactions: a store occupies the host
port for ``store_occupancy`` cycles, which is what makes the baseline's
one-store-per-cluster dispatch loop linear in the cluster count.  After
leaving the port, a transaction takes ``request_latency`` cycles to
reach its target, where the functional state change happens; responses
(read data, AMO results, store acks) take ``response_latency`` cycles
back.

Multicast stores occupy the host port *once* and are delivered to every
target after an extra ``multicast_tree_latency`` (the replication tree
depth) — the paper's interconnect extension.

Atomics from all clusters serialize at a single atomics port in front of
shared memory (``amo_service_cycles`` each), which is why the baseline's
completion protocol degrades as clusters multiply.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.errors import ConfigError
from repro.mem.map import AddressMap, MmioDevice
from repro.noc.packet import Transaction, TransactionKind
from repro.sim import Event, SerialResource, Simulator


@dataclasses.dataclass(frozen=True)
class NocParams:
    """Interconnect timing parameters (cycles).

    Defaults are calibrated so the full system reproduces the paper's
    emergent constants; see ``tests/integration/test_calibration.py``.
    """

    request_latency: int = 6
    response_latency: int = 6
    store_occupancy: int = 8
    load_occupancy: int = 2
    cluster_port_occupancy: int = 1
    multicast_enabled: bool = False
    multicast_tree_latency: int = 3
    amo_service_cycles: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range parameters."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.type == "int" and value < 0:
                raise ConfigError(f"NocParams.{field.name} must be >= 0, got {value}")
        if self.store_occupancy == 0:
            raise ConfigError("store_occupancy must be at least 1 cycle")


class _StoreFlight:
    """One in-flight store as a chain of plain scheduler callbacks.

    Timing-equivalent to a spawned generator body (``yield issued``,
    ``yield latency``, write, ``yield response_latency``, ack) but
    allocates no process or generator frame.  The kick-off hop lands at
    the exact queue position a process kick-off would, each later step
    runs where the corresponding generator resume would, and every
    scheduler entry consumes the same sequence number — so the chain is
    bit-identical to the process form, transaction for transaction.
    """

    __slots__ = ("noc", "issued", "latency", "addresses", "value", "router",
                 "delivered", "acked")

    def __init__(self, noc: "Interconnect", issued: Event, latency: int,
                 addresses: typing.Tuple[int, ...], value: int, router,
                 delivered: Event, acked: Event) -> None:
        self.noc = noc
        self.issued = issued
        self.latency = latency
        self.addresses = addresses
        self.value = value
        self.router = router
        self.delivered = delivered
        self.acked = acked

    def _kick(self, _arg) -> None:
        self.issued.add_callback(self._issued)

    def _issued(self, _event) -> None:
        self.noc.sim.schedule(self.latency, self._deliver, None)

    def _deliver(self, _arg) -> None:
        noc = self.noc
        for addr in self.addresses:
            self.router.write_word(addr, self.value)
        self.delivered.trigger(noc.sim.now)
        noc.sim.schedule(noc.params.response_latency, self._ack, None)

    def _ack(self, _arg) -> None:
        self.acked.trigger(self.noc.sim.now)


class _ReadFlight:
    """One in-flight load (or burst) as a chain of scheduler callbacks.

    A burst (``scalar=False``) reads ``nwords`` consecutive words and
    delivers the list; its data-beat tail stretches the response delay
    by one cycle per extra word.  A plain load (``scalar=True``)
    delivers the single word itself.  The port request is issued
    *inside* the kick-off hop, exactly where a spawned body's first
    resume would issue it, so request-port FIFO order is preserved
    against any traffic scheduled in between.
    """

    __slots__ = ("noc", "port", "occupancy", "addr", "nwords", "scalar",
                 "router", "done", "values")

    def __init__(self, noc: "Interconnect", port: SerialResource,
                 occupancy: int, addr: int, nwords: int, scalar: bool,
                 router, done: Event) -> None:
        self.noc = noc
        self.port = port
        self.occupancy = occupancy
        self.addr = addr
        self.nwords = nwords
        self.scalar = scalar
        self.router = router
        self.done = done
        self.values: typing.Optional[typing.List[int]] = None

    def _kick(self, _arg) -> None:
        self.port.request(self.occupancy).add_callback(self._granted)

    def _granted(self, _event) -> None:
        noc = self.noc
        noc.sim.schedule(noc.params.request_latency, self._at_target, None)

    def _at_target(self, _arg) -> None:
        noc = self.noc
        self.values = self.router.read_words(self.addr, self.nwords)
        noc.sim.schedule(noc.params.response_latency + (self.nwords - 1),
                         self._respond, None)

    def _respond(self, _arg) -> None:
        self.done.trigger(self.values[0] if self.scalar else self.values)


class _AmoFlight:
    """One in-flight atomic fetch-and-add as a callback chain.

    The shared atomics-port request is issued in the post-latency step —
    the same instant a spawned body would issue it — so the serialization
    order of concurrent AMOs from different clusters is preserved.
    """

    __slots__ = ("noc", "port", "addr", "operand", "router", "done", "value")

    def __init__(self, noc: "Interconnect", port: SerialResource, addr: int,
                 operand: int, router, done: Event) -> None:
        self.noc = noc
        self.port = port
        self.addr = addr
        self.operand = operand
        self.router = router
        self.done = done
        self.value = 0

    def _kick(self, _arg) -> None:
        self.port.request(
            self.noc.params.cluster_port_occupancy).add_callback(self._granted)

    def _granted(self, _event) -> None:
        noc = self.noc
        noc.sim.schedule(noc.params.request_latency, self._at_amo, None)

    def _at_amo(self, _arg) -> None:
        noc = self.noc
        noc.amo_port.request(
            noc.params.amo_service_cycles).add_callback(self._serviced)

    def _serviced(self, _event) -> None:
        noc = self.noc
        self.value = self.router.amo_add(self.addr, self.operand)
        noc.sim.schedule(noc.params.response_latency, self._respond, None)

    def _respond(self, _arg) -> None:
        self.done.trigger(self.value)


def _trigger_at_now(event: Event) -> None:
    """Scheduler callback: trigger ``event`` with the current cycle."""
    event.trigger(event.sim.now)


@dataclasses.dataclass(frozen=True)
class WriteHandle:
    """The three milestones of a store.

    Attributes
    ----------
    issued:
        Port occupancy released — a *posted* store lets the initiator
        continue here.
    delivered:
        Functional write performed at the target.
    acked:
        Ack returned to the initiator — a *non-posted* store stalls the
        initiator until here.
    """

    issued: Event
    delivered: Event
    acked: Event


class Interconnect:
    """Routes timed control transactions through the address map."""

    def __init__(self, sim: Simulator, address_map: AddressMap,
                 params: typing.Optional[NocParams] = None,
                 num_clusters: int = 1) -> None:
        params = params or NocParams()
        params.validate()
        if num_clusters <= 0:
            raise ConfigError(f"need at least one cluster, got {num_clusters}")
        self.sim = sim
        self.address_map = address_map
        self.params = params
        self.host_port = SerialResource(sim, "noc.host_port")
        self.cluster_ports = [
            SerialResource(sim, f"noc.cluster{i}_port") for i in range(num_clusters)
        ]
        self.amo_port = SerialResource(sim, "noc.amo_port")
        #: Interned per-cluster source labels: one transaction is logged
        #: per control operation, so building the label with an f-string
        #: each time is measurable across a sweep.
        self._cluster_labels = tuple(
            f"cluster{i}" for i in range(num_clusters))
        self.transactions: typing.List[Transaction] = []
        #: Closed-form host store runs committed by
        #: :meth:`host_write_block` (and the stores they covered) —
        #: fast-forward visibility counters, mirrored into
        #: ``ManticoreSystem.fastforward_stats``.
        self.ff_store_runs = 0
        self.ff_stores = 0
        # Per-initiator routing handles: each port keeps its own
        # last-region hit slot, so one cluster's descriptor burst cannot
        # evict the host's completion-flag region from a shared cache.
        self._host_router = address_map.port_router()
        self._cluster_routers = [
            address_map.port_router() for _ in range(num_clusters)
        ]

    # ------------------------------------------------------------------
    # Host-initiated traffic
    # ------------------------------------------------------------------
    def host_write(self, addr: int, value: int) -> WriteHandle:
        """A host store to one target; see :class:`WriteHandle`."""
        self._log(TransactionKind.WRITE, "host", (addr,), value)
        return self._write(self.host_port, self.params.store_occupancy,
                           self.params.request_latency, (addr,), value,
                           self._host_router)

    def host_multicast_write(self, addresses: typing.Sequence[int],
                             value: int) -> WriteHandle:
        """One host store replicated to many targets (the extension).

        Raises
        ------
        ConfigError
            If the interconnect was built without multicast support.
        """
        if not self.params.multicast_enabled:
            raise ConfigError(
                "multicast store on an interconnect without the multicast "
                "extension (set NocParams.multicast_enabled)"
            )
        addresses = tuple(addresses)
        self._log(TransactionKind.MULTICAST_WRITE, "host", addresses, value)
        latency = self.params.request_latency + self.params.multicast_tree_latency
        return self._write(self.host_port, self.params.store_occupancy,
                           latency, addresses, value, self._host_router)

    def host_read(self, addr: int) -> Event:
        """A host load; the returned event's value is the data."""
        self._log(TransactionKind.READ, "host", (addr,), None)
        return self._read(self.host_port, self.params.load_occupancy, addr,
                          self._host_router)

    # ------------------------------------------------------------------
    # Cluster-initiated traffic
    # ------------------------------------------------------------------
    def cluster_write(self, cluster_id: int, addr: int, value: int) -> WriteHandle:
        """A cluster store (e.g. the posted sync-unit increment)."""
        port = self._cluster_port(cluster_id)
        self._log(TransactionKind.WRITE, self._cluster_labels[cluster_id],
                  (addr,), value)
        return self._write(port, self.params.cluster_port_occupancy,
                           self.params.request_latency, (addr,), value,
                           self._cluster_routers[cluster_id])

    def cluster_read(self, cluster_id: int, addr: int) -> Event:
        """A cluster load (e.g. the DM core fetching the job descriptor)."""
        port = self._cluster_port(cluster_id)
        self._log(TransactionKind.READ, self._cluster_labels[cluster_id],
                  (addr,), None)
        return self._read(port, self.params.cluster_port_occupancy, addr,
                          self._cluster_routers[cluster_id])

    def cluster_read_burst(self, cluster_id: int, addr: int,
                           nwords: int) -> Event:
        """A burst read of ``nwords`` consecutive words (AXI-style).

        Costs one round trip plus one beat per extra word; the event's
        value is the list of words.  Used by DM cores to fetch job
        descriptors in one or two bursts instead of word-by-word loads.
        """
        if nwords <= 0:
            raise ConfigError(f"burst length must be positive, got {nwords}")
        port = self._cluster_port(cluster_id)
        router = self._cluster_routers[cluster_id]
        self._log(TransactionKind.READ, self._cluster_labels[cluster_id],
                  (addr,), None)
        done = self.sim.event(name="noc.burst")
        flight = _ReadFlight(self, port, self.params.cluster_port_occupancy,
                             addr, nwords, False, router, done)
        self.sim.schedule(0, flight._kick, None)
        return done

    def cluster_amo_add(self, cluster_id: int, addr: int, operand: int) -> Event:
        """Atomic fetch-and-add from a cluster; event value is the *old* word.

        All AMOs serialize at the shared atomics port, so concurrent
        completion flags from many clusters queue up — the baseline
        synchronization cost the credit counter removes.
        """
        port = self._cluster_port(cluster_id)
        router = self._cluster_routers[cluster_id]
        self._log(TransactionKind.AMO_ADD, self._cluster_labels[cluster_id],
                  (addr,), operand)
        done = self.sim.event(name="noc.amo")
        flight = _AmoFlight(self, port, addr, operand, router, done)
        self.sim.schedule(0, flight._kick, None)
        return done

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cluster_port(self, cluster_id: int) -> SerialResource:
        if not 0 <= cluster_id < len(self.cluster_ports):
            raise ConfigError(
                f"cluster id {cluster_id} out of range "
                f"[0, {len(self.cluster_ports)})"
            )
        return self.cluster_ports[cluster_id]

    def _write(self, port: SerialResource, occupancy: int, latency: int,
               addresses: typing.Tuple[int, ...], value: int,
               router) -> WriteHandle:
        issued = port.request(occupancy)
        delivered = self.sim.event(name="write.delivered")
        acked = self.sim.event(name="write.acked")
        flight = _StoreFlight(self, issued, latency, addresses, value,
                              router, delivered, acked)
        # The kick-off hop keeps the issued-event callback registration
        # at the queue position a spawned body's first resume would use,
        # so waiter ordering on ``issued`` matches the process form.
        self.sim.schedule(0, flight._kick, None)
        return WriteHandle(issued=issued, delivered=delivered, acked=acked)

    def _read(self, port: SerialResource, occupancy: int, addr: int,
              router) -> Event:
        done = self.sim.event(name="noc.read")
        flight = _ReadFlight(self, port, occupancy, addr, 1, True, router,
                             done)
        self.sim.schedule(0, flight._kick, None)
        return done

    # ------------------------------------------------------------------
    # Analytic fast-forward support (see repro.runtime.protocol)
    # ------------------------------------------------------------------
    def host_write_block(
            self, blocks: typing.Sequence[
                typing.Tuple[int, typing.Sequence[int]]]
    ) -> typing.Optional[Event]:
        """Commit a run of back-to-back host stores in closed form.

        ``blocks`` lists ``(base_addr, words)`` runs of consecutive
        words — the offload setup phase's descriptor stores.  The
        reference loop issues every word as a posted store (the final
        one non-posted, the release fence) and parks on each ``issued``
        event in turn; this closed form charges the identical port
        occupancy, logs the identical transactions with their true
        issue cycles, performs the functional writes, and allocates a
        *single* scheduler event that fires at the fence's ack cycle.

        Safe only when nothing can observe the skipped intermediate
        cycles, so it refuses (returns ``None``, caller must run the
        reference loop) unless:

        - the scheduler is empty apart from the caller itself (the
          setup window is single-actor: clusters are parked on their
          doorbells and nothing else is in flight);
        - no watchpoint is armed (delivery-time visibility);
        - every block lies inside one plain-memory region (MMIO
          delivery has side effects at delivered-cycle granularity).
        """
        if self.sim.pending or self.address_map.has_watchpoints:
            return None
        targets = []
        for base, words in blocks:
            region = self._host_router.region_at(base)
            target = region.target
            if isinstance(target, MmioDevice) \
                    or base + 8 * len(words) > region.end:
                return None
            targets.append(target)
        sim = self.sim
        params = self.params
        now = sim.now
        occupancy = params.store_occupancy
        start = max(now, self.host_port.next_free)
        count = sum(len(words) for _base, words in blocks)
        # The reference loop logs each store at its call cycle: the
        # first at ``now``, each later one when its predecessor's
        # ``issued`` event released the host — an arithmetic
        # progression, charged as one vectorized int64 pass.
        issues = (start
                  + occupancy * numpy.arange(count, dtype=numpy.int64))
        if count:
            issues[0] = now
        issue_list = iter(issues.tolist())
        self.transactions.extend(
            Transaction(TransactionKind.WRITE, "host",
                        (base + 8 * index,), word, False, issued_at)
            for base, words in blocks
            for (index, word), issued_at in zip(enumerate(words),
                                                issue_list))
        for target, (base, words) in zip(targets, blocks):
            target.write_words(base, words)
        finish = start + count * occupancy
        self.host_port.charge_bulk(requests=count,
                                   busy_cycles=count * occupancy,
                                   next_free=finish)
        self.ff_store_runs += 1
        self.ff_stores += count
        acked = sim.event(name="noc.host_block.acked")
        sim.schedule(
            finish - now + params.request_latency + params.response_latency,
            _trigger_at_now, acked)
        return acked

    def charge_host_poll_reads(self, addr: int, first_issue: int,
                               period: int, count: int) -> None:
        """Account ``count`` host poll loads without simulating them.

        The virtualized completion-poll path computes analytically when
        each skipped load would have issued; this charges exactly what
        the simulated loads would have: one logged READ transaction per
        load (``issued_at`` at the true issue cycle) and the host
        port's occupancy and request count.  Entries are appended in
        one batch, so their *list position* relative to concurrent
        cluster traffic can differ from a fully simulated run — counts,
        timestamps, and port accounting are identical.
        """
        occupancy = self.params.load_occupancy
        # One vectorized pass over the whole poll segment: the issue
        # schedule is an arithmetic progression, so the per-read
        # multiply-adds collapse into a single int64 array op (the
        # logged records are identical, entry for entry).
        issues = (first_issue
                  + period * numpy.arange(count, dtype=numpy.int64)).tolist()
        target = (addr,)
        self.transactions.extend(
            Transaction(TransactionKind.READ, "host", target, None, False,
                        issued_at)
            for issued_at in issues)
        self.host_port.charge_bulk(
            requests=count, busy_cycles=count * occupancy,
            next_free=first_issue + (count - 1) * period + occupancy)

    def reset(self) -> None:
        """Restore boot state: empty transaction log, idle ports."""
        self.transactions.clear()
        self.ff_store_runs = 0
        self.ff_stores = 0
        self.host_port.reset()
        self.amo_port.reset()
        for port in self.cluster_ports:
            port.reset()

    def snapshot(self) -> tuple:
        """Capture port accounting and the transaction log."""
        return (
            self.host_port.snapshot(),
            self.amo_port.snapshot(),
            tuple(port.snapshot() for port in self.cluster_ports),
            tuple(self.transactions),
            self.ff_store_runs,
            self.ff_stores,
        )

    def restore(self, state: tuple) -> None:
        """Restore a :meth:`snapshot` (quiescent states only)."""
        (host_port, amo_port, cluster_ports, transactions,
         self.ff_store_runs, self.ff_stores) = state
        self.host_port.restore(host_port)
        self.amo_port.restore(amo_port)
        for port, pstate in zip(self.cluster_ports, cluster_ports):
            port.restore(pstate)
        self.transactions[:] = transactions

    def _log(self, kind: TransactionKind, source: str,
             addresses: typing.Tuple[int, ...],
             value: typing.Optional[int]) -> None:
        self.transactions.append(Transaction(
            kind=kind, source=source, addresses=addresses, value=value,
            posted=False, issued_at=self.sim.now,
        ))

    def count(self, kind: TransactionKind,
              source: typing.Optional[str] = None) -> int:
        """Number of logged transactions of a kind (optionally per source)."""
        return sum(
            1 for txn in self.transactions
            if txn.kind is kind and (source is None or txn.source == source)
        )
