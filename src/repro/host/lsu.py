"""The host core's load-store unit.

The LSU is the hardware block the paper extends on the host side: with
the extension, it recognizes stores to the multicast window and emits a
single multicast transaction instead of trapping.  Here it is a thin,
capability-checked adapter between :class:`repro.host.cva6.HostCore`
and :class:`repro.noc.Interconnect`, so that "the host was built without
multicast support" is a configuration fact enforced in one place.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigError
from repro.noc.xbar import Interconnect, WriteHandle
from repro.sim import Event


class LoadStoreUnit:
    """Issues the host's memory transactions onto the interconnect."""

    def __init__(self, noc: Interconnect, multicast_capable: bool = False) -> None:
        if multicast_capable and not noc.params.multicast_enabled:
            raise ConfigError(
                "host LSU is multicast-capable but the interconnect is not; "
                "the extension must be enabled on both sides"
            )
        self.noc = noc
        self.multicast_capable = multicast_capable
        self.stores_issued = 0
        self.multicast_stores_issued = 0
        self.loads_issued = 0

    def reset(self) -> None:
        """Zero the issue counters (boot state)."""
        self.stores_issued = 0
        self.multicast_stores_issued = 0
        self.loads_issued = 0

    def snapshot(self) -> typing.Tuple[int, int, int]:
        """Capture the issue counters."""
        return (self.stores_issued, self.multicast_stores_issued,
                self.loads_issued)

    def restore(self, state: typing.Tuple[int, int, int]) -> None:
        """Restore a :meth:`snapshot`."""
        (self.stores_issued, self.multicast_stores_issued,
         self.loads_issued) = state

    def store(self, addr: int, value: int) -> WriteHandle:
        """Issue a unicast store."""
        self.stores_issued += 1
        return self.noc.host_write(addr, value)

    def store_block(
            self, blocks: typing.Sequence[
                typing.Tuple[int, typing.Sequence[int]]]
    ) -> typing.Optional[Event]:
        """Issue a run of back-to-back stores in closed form.

        Delegates to :meth:`repro.noc.Interconnect.host_write_block`;
        on success the issue counter advances by the full store count
        and the returned event fires at the final ack.  Returns
        ``None`` (and charges nothing) when the closed form is
        unavailable — the caller must issue word by word.
        """
        done = self.noc.host_write_block(blocks)
        if done is not None:
            self.stores_issued += sum(
                len(words) for _base, words in blocks)
        return done

    def multicast_store(self, addresses: typing.Sequence[int],
                        value: int) -> WriteHandle:
        """Issue one store delivered to every address in ``addresses``.

        Raises
        ------
        ConfigError
            If this LSU was built without the multicast extension.
        """
        if not self.multicast_capable:
            raise ConfigError(
                "multicast store on a baseline LSU (build the host with "
                "multicast_capable=True to use the extension)"
            )
        self.multicast_stores_issued += 1
        return self.noc.host_multicast_write(addresses, value)

    def load(self, addr: int) -> Event:
        """Issue a load; the event's value is the data."""
        self.loads_issued += 1
        return self.noc.host_read(addr)
