"""Interrupt controller for the host core.

Minimal CLINT/PLIC-style model: named lines with level-pending
semantics.  A device raises a line; the host's WFI consumes the pending
bit and resumes after a wake-up latency.  If the line was already
pending when WFI executes, the sleep falls through immediately (as the
RISC-V WFI specification allows), which prevents the classic lost-wakeup
race between job completion and the host reaching its WFI.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError
from repro.sim import Event, Simulator


class InterruptController:
    """Named interrupt lines with pending bits and waiter wake-up."""

    def __init__(self, sim: Simulator, wake_latency: int = 5) -> None:
        if wake_latency < 0:
            raise SimulationError(
                f"wake latency must be >= 0, got {wake_latency}"
            )
        self.sim = sim
        self.wake_latency = wake_latency
        self._pending: typing.Dict[str, bool] = {}
        self._waiters: typing.Dict[str, typing.List[Event]] = {}
        self._raise_counts: typing.Dict[str, int] = {}

    def register_line(self, name: str) -> None:
        """Declare an interrupt line; raising an unknown line is an error."""
        if name in self._pending:
            raise SimulationError(f"interrupt line {name!r} already registered")
        self._pending[name] = False
        self._waiters[name] = []
        self._raise_counts[name] = 0

    def raise_line(self, name: str) -> None:
        """Assert a line: set pending and wake any waiter."""
        self._check_line(name)
        self._pending[name] = True
        self._raise_counts[name] += 1
        waiters, self._waiters[name] = self._waiters[name], []
        for event in waiters:
            event.trigger(self.sim.now)

    def is_pending(self, name: str) -> bool:
        """Whether the line is currently pending."""
        self._check_line(name)
        return self._pending[name]

    def raise_count(self, name: str) -> int:
        """How many times the line has been asserted."""
        self._check_line(name)
        return self._raise_counts[name]

    def clear(self, name: str) -> None:
        """Deassert a pending line (the handler acknowledging it)."""
        self._check_line(name)
        self._pending[name] = False

    def wait(self, name: str) -> typing.Generator:
        """Process-style wait: resume once the line is pending, and consume it.

        Returns the number of cycles slept (0 if the line was already
        pending).  Callers add the core's wake-up latency themselves —
        see :meth:`repro.host.cva6.HostCore.wfi`.
        """
        self._check_line(name)
        started = self.sim.now
        if not self._pending[name]:
            event = self.sim.event(name=f"irq.{name}")
            self._waiters[name].append(event)
            yield event
        self._pending[name] = False
        return self.sim.now - started

    def parked_waiters(self) -> typing.Dict[str, int]:
        """Lines with processes parked in :meth:`wait` (line -> count).

        Empty on a quiescent controller; used by the boot-state audit.
        """
        return {name: len(waiters)
                for name, waiters in self._waiters.items() if waiters}

    def pending_lines(self) -> typing.Tuple[str, ...]:
        """Lines currently pending (empty on a quiescent controller)."""
        return tuple(name for name, flag in self._pending.items() if flag)

    def reset(self) -> None:
        """Restore boot state: no line pending, zero raise counts.

        Registered lines survive (the devices driving them persist too).
        Raises if any process is still parked in :meth:`wait` — reset is
        only legal on a drained system.
        """
        for name, waiters in self._waiters.items():
            if waiters:
                raise SimulationError(
                    f"cannot reset: {len(waiters)} waiter(s) parked on "
                    f"interrupt line {name!r}")
        for name in self._pending:
            self._pending[name] = False
            self._raise_counts[name] = 0

    def snapshot(self) -> typing.Tuple:
        """Capture pending bits and raise counts (no parked waiters)."""
        for name, waiters in self._waiters.items():
            if waiters:
                raise SimulationError(
                    f"cannot snapshot: {len(waiters)} waiter(s) parked on "
                    f"interrupt line {name!r}")
        return tuple(
            (name, self._pending[name], self._raise_counts[name])
            for name in self._pending)

    def restore(self, state: typing.Tuple) -> None:
        """Restore a :meth:`snapshot` (no parked waiters on either side)."""
        for name, waiters in self._waiters.items():
            if waiters:
                raise SimulationError(
                    f"cannot restore: {len(waiters)} waiter(s) parked on "
                    f"interrupt line {name!r}")
        for name, pending, count in state:
            self._check_line(name)
            self._pending[name] = pending
            self._raise_counts[name] = count

    def _check_line(self, name: str) -> None:
        if name not in self._pending:
            raise SimulationError(f"unknown interrupt line {name!r}")
