"""The CVA6-class host core timing model.

The host executes offload *programs*: Python generators composed from
the timed primitives below (every ``yield from host.<primitive>(...)``
advances simulated time the way the corresponding instruction sequence
would on the real core).  This is deliberately not an ISA interpreter —
the paper's offload routines are short, and what determines their cost
is the number and kind of memory-system interactions, which these
primitives model exactly.

Primitives
----------
``execute(cycles)``
    Straight-line ALU/branch work (address computation, loop overhead).
``store / store_posted``
    Non-posted stores stall until the ack returns; posted stores stall
    only for the LSU/port occupancy.
``multicast_store``
    One posted store delivered to many clusters (requires the extension).
``load``
    Stalls for the full round trip; returns the loaded word.
``wfi(line)``
    Sleep until the interrupt line is pending, then pay the pipeline
    wake-up latency.
"""

from __future__ import annotations

import typing

from repro.host.irq import InterruptController
from repro.host.lsu import LoadStoreUnit
from repro.sim import Event, Simulator, TraceRecorder


class HostCore:
    """Timed execution engine for offload programs."""

    def __init__(self, sim: Simulator, lsu: LoadStoreUnit,
                 irq: InterruptController,
                 trace: typing.Optional[TraceRecorder] = None,
                 name: str = "host") -> None:
        self.sim = sim
        self.lsu = lsu
        self.irq = irq
        self.trace = (trace if trace is not None
                      else TraceRecorder(sim, enabled=False))
        self.name = name
        self.retired_operations = 0
        #: Cycles spent asleep in WFI (energy accounting: the core is
        #: clock-gated while waiting, unlike a poll loop).
        self.slept_cycles = 0

    # ------------------------------------------------------------------
    # Timed primitives (all are generators: ``yield from host.xxx()``)
    # ------------------------------------------------------------------
    def execute(self, cycles: int) -> typing.Generator:
        """Spend ``cycles`` of straight-line compute."""
        self.retired_operations += 1
        if cycles:
            yield cycles
        return None

    def store(self, addr: int, value: int) -> typing.Generator:
        """Non-posted store: stalls until the ack returns."""
        self.retired_operations += 1
        handle = self.lsu.store(addr, value)
        yield handle.acked
        return None

    def store_posted(self, addr: int, value: int) -> typing.Generator:
        """Posted store: stalls only while the port accepts the store."""
        self.retired_operations += 1
        handle = self.lsu.store(addr, value)
        yield handle.issued
        return handle

    def store_block(
            self, blocks: typing.Sequence[
                typing.Tuple[int, typing.Sequence[int]]]
    ) -> typing.Optional[Event]:
        """Closed-form run of posted stores ending in a release fence.

        The cycle-exact equivalent of issuing every word of every
        ``(base_addr, words)`` block with :meth:`store_posted` and the
        final word with :meth:`store` — statistics included — but
        resolved as one scheduler event.  Returns the fence-ack event
        to ``yield`` on, or ``None`` (charging nothing) when the
        closed form cannot be proven safe and the caller must loop.
        """
        done = self.lsu.store_block(blocks)
        if done is not None:
            self.retired_operations += sum(
                len(words) for _base, words in blocks)
        return done

    def multicast_store(self, addresses: typing.Sequence[int],
                        value: int) -> typing.Generator:
        """Posted multicast store to every address in ``addresses``."""
        self.retired_operations += 1
        handle = self.lsu.multicast_store(addresses, value)
        yield handle.issued
        return handle

    def load(self, addr: int) -> typing.Generator:
        """Load a word: stalls for the round trip, returns the data."""
        self.retired_operations += 1
        done = self.lsu.load(addr)
        value = yield done
        return value

    def wfi(self, line: str) -> typing.Generator:
        """Wait-for-interrupt on ``line``, then pay the wake-up latency."""
        self.retired_operations += 1
        self.trace.record(self.name, "wfi_enter", line)
        slept = yield from self.irq.wait(line)
        self.slept_cycles += slept
        if self.irq.wake_latency:
            yield self.irq.wake_latency
        self.trace.record(self.name, "wfi_exit", line)
        return None

    def reset(self) -> None:
        """Zero the statistics counters (boot state)."""
        self.retired_operations = 0
        self.slept_cycles = 0
        self.lsu.reset()

    def snapshot(self) -> typing.Tuple:
        """Capture execution statistics (core + LSU)."""
        return (self.retired_operations, self.slept_cycles,
                self.lsu.snapshot())

    def restore(self, state: typing.Tuple) -> None:
        """Restore a :meth:`snapshot`."""
        self.retired_operations, self.slept_cycles, lsu = state
        self.lsu.restore(lsu)

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run_program(self, program: typing.Generator, name: str = ""):
        """Spawn an offload program as a simulation process."""
        return self.sim.spawn(program, name=name or f"{self.name}.program")
