"""Host complex: a CVA6-class application core and its peripherals.

The host is modeled at the granularity the offload study needs: it
executes *programs* (Python generators written against the timed
primitives of :class:`HostCore`) whose loads, stores, multicast stores,
ALU work and wait-for-interrupt sleeps each cost cycles through the LSU,
the interconnect and the interrupt controller.  The offload runtimes in
:mod:`repro.runtime` are exactly such programs — the software half of
the paper's hardware/software co-design.
"""

from repro.host.cva6 import HostCore
from repro.host.irq import InterruptController
from repro.host.lsu import LoadStoreUnit

__all__ = ["HostCore", "InterruptController", "LoadStoreUnit"]
