"""Environment-variable gates, in one place.

Every behavioural override the reproduction honours is a ``REPRO_*``
environment variable, and every one of them is read through an accessor
in this module — so tests, benchmarks and docs have a single source of
truth for what can be toggled and what each toggle means.

========================= ============================================
variable                  effect
========================= ============================================
``REPRO_NAIVE_POLL``      baseline completion wait simulates every
                          poll iteration instead of the cycle-exact
                          watchpoint fast-forward
``REPRO_NAIVE_CHANNEL``   DMA engines simulate the setup delay and the
                          shared-channel transfer as separate scheduler
                          events instead of one analytic reservation
``REPRO_NAIVE_BARRIER``   cluster compute phases spawn one process per
                          worker core and fabric-barrier arrivals pay
                          their wire latency as simulated waits,
                          instead of the closed-form release schedule
``REPRO_NAIVE_SNAPSHOT``  system pools recycle instances through the
                          full ``reset()`` component walk instead of
                          restoring the captured boot snapshot
``REPRO_NAIVE_BATCH``     sweeps simulate every grid point through the
                          event engine instead of batching
                          contention-free points through the vectorized
                          ``BatchPlanner`` timing model
``REPRO_NAIVE_MPREDICT``  the batch planner calibrates one event
                          simulation per (variant, M) group instead of
                          fitting the dispatch prefix as an affine
                          function of M from two anchor calibrations
                          (and skips the persistent calibration store)
``REPRO_EXPLICIT_FABRIC`` configs with no declared fabric resolve to
                          one explicit single-tile default-class group
                          per cluster instead of one implicit fabric-
                          wide group; timing is identical, so this is
                          the homogeneous-equivalence A/B lever
                          proving fabric composition changes nothing
                          for default-class tiles
``REPRO_LEGACY_JOB_SEEDS``  ``generate_workload`` derives per-job
                          input seeds as ``stream seed + index`` (the
                          historical scheme, under which streams with
                          adjacent seeds share almost every job seed)
                          instead of drawing them from a dedicated
                          per-stream RNG
``REPRO_LINEAR_ROUTING``  address maps fall back to the unsorted
                          linear region scan (pre-bisect routing);
                          sampled at map construction time
``REPRO_FRESH_SYSTEMS``   system pools construct a fresh SoC for
                          every acquire instead of resetting and
                          reusing pooled instances
``REPRO_CACHE_DIR``       relocates the on-disk sweep cache
``REPRO_CACHE_MAX_ENTRIES``  bounds the on-disk sweep-cache layer to
                          this many record files; the least recently
                          used records are evicted past the bound
``REPRO_STRICT``          simulation-integrity strict mode: access
                          anomalies the auditors would otherwise only
                          *record* (stale sync-unit credits, lost
                          doorbells) raise ``ProtocolError``, and
                          returning a non-quiescent system to a
                          ``SystemPool`` raises ``QuiescenceError``
                          instead of counting a drop
========================= ============================================

All boolean gates follow the same convention: *set to any non-empty
string* means enabled, unset or empty means disabled.  Accessors read
``os.environ`` on every call, so tests can flip gates with
``monkeypatch.setenv`` without re-importing anything.

This module sits at the very bottom of the import ladder (it imports
only the standard library), so any layer may use it.
"""

from __future__ import annotations

import os
import typing

#: Environment variable: when set (non-empty), the baseline completion
#: wait simulates every poll iteration instead of fast-forwarding.
#: Used by the A/B property tests proving the fast path is cycle-exact.
NAIVE_POLL_ENV = "REPRO_NAIVE_POLL"

#: Environment variable: when set (non-empty), DMA engines pay their
#: setup delay and shared-channel transfer as two separate simulated
#: waits instead of committing a single analytic channel reservation.
#: Used by the A/B property tests proving the reservation fast path is
#: cycle-exact.
NAIVE_CHANNEL_ENV = "REPRO_NAIVE_CHANNEL"

#: Environment variable: when set (non-empty), cluster compute phases
#: spawn one process per worker core (each paying its wake latency and
#: barrier arrival as simulated waits) and fabric-barrier arrivals
#: simulate their wire latency, instead of the closed-form
#: max-of-known-delays release schedule.
NAIVE_BARRIER_ENV = "REPRO_NAIVE_BARRIER"

#: Environment variable: when set (non-empty), system pools recycle
#: instances through the full ``reset()`` component walk instead of
#: restoring a captured boot snapshot.
NAIVE_SNAPSHOT_ENV = "REPRO_NAIVE_SNAPSHOT"

#: Environment variable: when set (non-empty), ``SweepExecutor`` runs
#: every grid point through the full event engine instead of letting
#: the ``BatchPlanner`` time contention-free points as vectorized
#: NumPy array arithmetic seeded from calibration runs.  Used by the
#: A/B property tests proving batched timing is bit-identical.
NAIVE_BATCH_ENV = "REPRO_NAIVE_BATCH"

#: Environment variable: when set (non-empty), the ``BatchPlanner``
#: restores the one-calibration-per-(variant, M)-group behaviour: no
#: affine M-axis prefix models are fitted, no prefixes are synthesized
#: for unvisited M groups, and the persistent calibration store is
#: neither read nor written.  Used by the A/B property tests proving
#: M-axis prefix prediction is bit-identical.
NAIVE_MPREDICT_ENV = "REPRO_NAIVE_MPREDICT"

#: Environment variable: when set (non-empty), ``SoCConfig.groups()``
#: resolves a config with no declared fabric into one explicit
#: single-tile group of the default class per cluster, instead of one
#: implicit group spanning the whole fabric.  Default-class tiles
#: resolve to exactly the config's cluster knobs, so measured cycles
#: are identical either way — this is the A/B lever the golden
#: cycle-identity suite uses to prove fabric composition is timing-
#: neutral for homogeneous configs.
EXPLICIT_FABRIC_ENV = "REPRO_EXPLICIT_FABRIC"

#: Environment variable: when set (non-empty), ``generate_workload``
#: restores the historical ``seed + index`` per-job seed derivation.
#: That scheme makes neighbouring stream seeds share almost all job
#: seeds (and every multi-tenant stream overlap), so it exists only as
#: a compatibility lever for artifacts recorded before the fix.
LEGACY_JOB_SEEDS_ENV = "REPRO_LEGACY_JOB_SEEDS"

#: Environment variable: when set (non-empty) at map construction time,
#: ``region_at`` falls back to the unsorted linear scan (and port
#: routers bypass their hit slots).  Routing is functional, so this is
#: purely an A/B lever for benchmarking the bisect + hit-cache routing
#: against the original implementation; results are identical.
LINEAR_ROUTING_ENV = "REPRO_LINEAR_ROUTING"

#: Environment variable: when set (non-empty), pools build a fresh
#: system for every acquire and discard it on release.
FRESH_SYSTEMS_ENV = "REPRO_FRESH_SYSTEMS"

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the on-disk sweep-cache layer: a
#: positive integer caps the number of record files kept under the
#: cache directory; past the cap, the least recently used records are
#: evicted (reads refresh recency).  Unset, empty or non-positive
#: means unbounded — the pre-existing behaviour.
CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"

#: Environment variable: when set (non-empty), the integrity auditors
#: escalate recorded anomalies to errors (see :mod:`repro.sim.diag`).
#: CI runs the whole suite once with this set so strict-mode
#: regressions fail fast.
STRICT_ENV = "REPRO_STRICT"

#: Every gate this module owns, for introspection and for benchmarks
#: that must run with a known-clean environment.
ALL_GATES = (NAIVE_POLL_ENV, NAIVE_CHANNEL_ENV, NAIVE_BARRIER_ENV,
             NAIVE_SNAPSHOT_ENV, NAIVE_BATCH_ENV, NAIVE_MPREDICT_ENV,
             EXPLICIT_FABRIC_ENV, LEGACY_JOB_SEEDS_ENV, LINEAR_ROUTING_ENV,
             FRESH_SYSTEMS_ENV, CACHE_DIR_ENV, CACHE_MAX_ENTRIES_ENV,
             STRICT_ENV)


def _enabled(name: str) -> bool:
    return bool(os.environ.get(name))


def naive_poll() -> bool:
    """Whether ``REPRO_NAIVE_POLL`` forces the reference poll loop."""
    return _enabled(NAIVE_POLL_ENV)


def naive_channel() -> bool:
    """Whether ``REPRO_NAIVE_CHANNEL`` forces per-event DMA timing."""
    return _enabled(NAIVE_CHANNEL_ENV)


def naive_barrier() -> bool:
    """Whether ``REPRO_NAIVE_BARRIER`` forces per-participant events."""
    return _enabled(NAIVE_BARRIER_ENV)


def naive_snapshot() -> bool:
    """Whether ``REPRO_NAIVE_SNAPSHOT`` forces full pool resets."""
    return _enabled(NAIVE_SNAPSHOT_ENV)


def naive_batch() -> bool:
    """Whether ``REPRO_NAIVE_BATCH`` disables batched sweep timing."""
    return _enabled(NAIVE_BATCH_ENV)


def naive_mpredict() -> bool:
    """Whether ``REPRO_NAIVE_MPREDICT`` disables M-axis prefix models."""
    return _enabled(NAIVE_MPREDICT_ENV)


def explicit_fabric() -> bool:
    """Whether ``REPRO_EXPLICIT_FABRIC`` expands implicit fabrics."""
    return _enabled(EXPLICIT_FABRIC_ENV)


def legacy_job_seeds() -> bool:
    """Whether ``REPRO_LEGACY_JOB_SEEDS`` restores seed+index job seeds."""
    return _enabled(LEGACY_JOB_SEEDS_ENV)


def linear_routing() -> bool:
    """Whether ``REPRO_LINEAR_ROUTING`` selects linear-scan routing."""
    return _enabled(LINEAR_ROUTING_ENV)


def fresh_systems() -> bool:
    """Whether ``REPRO_FRESH_SYSTEMS`` disables system pooling."""
    return _enabled(FRESH_SYSTEMS_ENV)


def cache_dir() -> typing.Optional[str]:
    """The ``REPRO_CACHE_DIR`` override, or ``None`` when unset/empty."""
    return os.environ.get(CACHE_DIR_ENV) or None


def cache_max_entries() -> typing.Optional[int]:
    """The ``REPRO_CACHE_MAX_ENTRIES`` bound, or ``None`` (unbounded).

    Only a positive integer bounds the cache; empty, non-numeric or
    non-positive values are ignored rather than crashing a sweep over a
    typo in an environment variable.
    """
    raw = os.environ.get(CACHE_MAX_ENTRIES_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def strict() -> bool:
    """Whether ``REPRO_STRICT`` escalates integrity anomalies to errors."""
    return _enabled(STRICT_ENV)
