"""Service metrics over a served job stream.

The quantities the multi-tenant story is judged on:

- **deadline-miss rate** — fraction of jobs finishing past their
  deadline; shed jobs count as misses (nobody served them in time);
- **sojourn time** — arrival to completion, reported at the median and
  the 99th percentile (the tail is what deadlines are about);
- **cluster utilization** — reserved cluster-cycles over the fabric's
  capacity for the scenario horizon;
- **Jain's fairness index** over per-tenant deadline *hit* rates:
  ``J = (Σx)² / (k·Σx²)`` is 1.0 when every tenant gets the same
  service quality and approaches ``1/k`` when one tenant gets
  everything.

Percentiles use ``numpy.percentile`` (linear interpolation) over the
integer sojourns, so the same outcomes always produce bit-identical
metrics — the determinism gate in CI diffs the resulting CSV bytes.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy

from repro.traffic.engine import PLACEMENT_OFFLOAD, TrafficResult


@dataclasses.dataclass(frozen=True)
class TenantMetrics:
    """One tenant's share of a served stream."""

    tenant: int
    jobs: int
    admitted: int
    shed: int
    deadline_misses: int
    p50_sojourn_cycles: float
    p99_sojourn_cycles: float

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.jobs if self.jobs else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate


@dataclasses.dataclass(frozen=True)
class TrafficMetrics:
    """A policy's report card on one arrival scenario."""

    policy_name: str
    arrival_name: str
    jobs: int
    admitted: int
    shed: int
    offloaded: int
    deadline_misses: int
    p50_sojourn_cycles: float
    p99_sojourn_cycles: float
    utilization: float
    jain_fairness: float
    per_tenant: typing.Tuple[TenantMetrics, ...]

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.jobs if self.jobs else 0.0


def _sojourn_percentiles(
        outcomes: typing.Sequence) -> typing.Tuple[float, float]:
    sojourns = [o.sojourn_cycles for o in outcomes if o.admitted]
    if not sojourns:
        return 0.0, 0.0
    values = numpy.array(sorted(sojourns), dtype=float)
    return (float(numpy.percentile(values, 50)),
            float(numpy.percentile(values, 99)))


def jain_index(shares: typing.Sequence[float]) -> float:
    """``(Σx)² / (k·Σx²)`` — 1.0 is perfectly fair.

    All-zero shares (every tenant equally unserved) count as fair:
    the index reports *imbalance*, not quality.
    """
    if not shares:
        return 1.0
    total = float(sum(shares))
    squares = float(sum(x * x for x in shares))
    if squares == 0.0:
        return 1.0
    return total * total / (len(shares) * squares)


def compute_metrics(result: TrafficResult) -> TrafficMetrics:
    """Aggregate one :class:`~repro.traffic.engine.TrafficResult`."""
    outcomes = result.outcomes
    p50, p99 = _sojourn_percentiles(outcomes)
    tenants = sorted({o.spec.tenant for o in outcomes})
    per_tenant = []
    for tenant in tenants:
        mine = [o for o in outcomes if o.spec.tenant == tenant]
        t50, t99 = _sojourn_percentiles(mine)
        per_tenant.append(TenantMetrics(
            tenant=tenant,
            jobs=len(mine),
            admitted=sum(1 for o in mine if o.admitted),
            shed=sum(1 for o in mine if not o.admitted),
            deadline_misses=sum(1 for o in mine if o.missed_deadline),
            p50_sojourn_cycles=t50,
            p99_sojourn_cycles=t99))
    return TrafficMetrics(
        policy_name=result.policy_name,
        arrival_name=result.arrival_name,
        jobs=len(outcomes),
        admitted=sum(1 for o in outcomes if o.admitted),
        shed=sum(1 for o in outcomes if not o.admitted),
        offloaded=sum(
            1 for o in outcomes if o.placement == PLACEMENT_OFFLOAD),
        deadline_misses=sum(1 for o in outcomes if o.missed_deadline),
        p50_sojourn_cycles=p50,
        p99_sojourn_cycles=p99,
        utilization=result.utilization,
        jain_fairness=jain_index([t.hit_rate for t in per_tenant]),
        per_tenant=tuple(per_tenant))
