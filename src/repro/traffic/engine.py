"""The admission/scheduling loop: Eq. 3 as a served policy.

:class:`TrafficEngine` replays a timestamped job stream against the
fitted platform models (an Eq.-1 :class:`~repro.core.model.OffloadModel`
plus a :class:`~repro.core.decision.HostExecutionModel` per kernel —
exactly what :func:`repro.workload.characterize_platform` fits) and a
virtual-time :class:`~repro.traffic.occupancy.FabricOccupancy`.  Each
job gets a deadline ``arrival + slack × t̂_host(N)``; the policy under
test decides where it runs:

- :class:`TrafficAlwaysHost` / :class:`TrafficAlwaysOffload` — the
  static baselines.  The host is one serial server (a FIFO queue);
  offloads reserve clusters.
- :class:`TrafficModelDriven` — E9's policy applied online: per job,
  the faster *predicted* side at the runtime-optimal width, blind to
  queues and deadlines.
- :class:`TrafficDeadlineAware` — the paper's Eq. 3 served online:
  :func:`~repro.core.decision.min_clusters_for_deadline` gives the
  minimum width meeting the job's remaining budget, the occupancy
  model widens it past queued reservations if needed, the host absorbs
  jobs whose deadline Eq. 3 cannot meet at any width, and jobs no
  placement can serve in time are shed at admission instead of wasting
  capacity on a guaranteed miss.

Service durations are model predictions rounded up to whole cycles;
nothing here consumes randomness, so a scenario's outcome is a pure
function of the job stream and the fitted models.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.decision import HostExecutionModel, min_clusters_for_deadline
from repro.core.model import OffloadModel
from repro.errors import DecisionError, TrafficError
from repro.traffic.occupancy import FabricOccupancy
from repro.workload import JobSpec

#: Placement kinds a :class:`TrafficOutcome` can record.
PLACEMENT_OFFLOAD = "offload"
PLACEMENT_HOST = "host"
PLACEMENT_SHED = "shed"


@dataclasses.dataclass(frozen=True)
class TrafficOutcome:
    """One job's fate under a policy."""

    spec: JobSpec
    #: ``"offload"``, ``"host"`` or ``"shed"``.
    placement: str
    #: Offload width (0 for host and shed placements).
    num_clusters: int
    #: Admission deadline: ``arrival + slack × t̂_host(N)``.
    deadline_cycle: int
    #: Service start (shed jobs never start; both stay at -1).
    start_cycle: int = -1
    end_cycle: int = -1

    @property
    def admitted(self) -> bool:
        return self.placement != PLACEMENT_SHED

    @property
    def sojourn_cycles(self) -> int:
        """Arrival-to-completion time (admitted jobs only)."""
        if not self.admitted:
            raise TrafficError("a shed job has no sojourn time")
        return self.end_cycle - self.spec.arrival_cycle

    @property
    def missed_deadline(self) -> bool:
        """Shed jobs count as misses — nobody served them in time."""
        return (not self.admitted
                or self.end_cycle > self.deadline_cycle)


@dataclasses.dataclass(frozen=True)
class TrafficResult:
    """A job stream served under one policy."""

    policy_name: str
    arrival_name: str
    capacity: int
    slack: float
    outcomes: typing.Tuple[TrafficOutcome, ...]
    #: Total cluster-cycles reserved on the fabric.
    busy_cluster_cycles: int

    @property
    def horizon_cycle(self) -> int:
        """End of the scenario: the last completion (or deadline)."""
        return max(
            (o.end_cycle if o.admitted else o.deadline_cycle
             for o in self.outcomes),
            default=0)

    @property
    def utilization(self) -> float:
        """Cluster-cycles busy over ``[0, horizon)``."""
        horizon = self.horizon_cycle
        if horizon <= 0:
            return 0.0
        return self.busy_cluster_cycles / (self.capacity * horizon)


class TrafficPolicy:
    """Base class: answers "where does this job run, and when"."""

    name = "traffic_policy"

    def resolved_name(self, capacity: int) -> str:
        """The policy's name on a ``capacity``-cluster fabric (fixed
        widths report the width that actually runs, as in the workload
        layer)."""
        return self.name

    def place(self, job: JobSpec, deadline: int,
              engine: "TrafficEngine") -> TrafficOutcome:
        raise NotImplementedError


class TrafficAlwaysHost(TrafficPolicy):
    """Queue every job on the single host server."""

    name = "always_host"

    def place(self, job: JobSpec, deadline: int,
              engine: "TrafficEngine") -> TrafficOutcome:
        return engine.host_outcome(job, deadline)


class TrafficAlwaysOffload(TrafficPolicy):
    """Offload every job at one fixed width (clamped to the fabric)."""

    name = "always_offload"

    def __init__(self, num_clusters: int = 32) -> None:
        if num_clusters <= 0:
            raise TrafficError(
                f"offload width must be positive, got {num_clusters}")
        self.num_clusters = num_clusters
        self.name = f"always_offload_{num_clusters}"

    def resolved_name(self, capacity: int) -> str:
        return f"always_offload_{min(self.num_clusters, capacity)}"

    def place(self, job: JobSpec, deadline: int,
              engine: "TrafficEngine") -> TrafficOutcome:
        width = min(self.num_clusters, engine.capacity)
        return engine.offload_outcome(job, deadline, width)


class TrafficModelDriven(TrafficPolicy):
    """E9's adaptive policy served online, blind to queues.

    Per job: offload at the runtime-optimal width when the model
    predicts that beats the host's *service time*, else run on the
    host.  No deadline or occupancy awareness — this is what a system
    with the paper's model but no admission control would do.
    """

    name = "model_driven"

    def place(self, job: JobSpec, deadline: int,
              engine: "TrafficEngine") -> TrafficOutcome:
        model = engine.offload_model(job)
        host = engine.host_model(job)
        best_m = model.best_m(job.n, engine.capacity)
        if model.predict(best_m, job.n) < host.predict(job.n):
            return engine.offload_outcome(job, deadline, best_m)
        return engine.host_outcome(job, deadline)


class TrafficDeadlineAware(TrafficPolicy):
    """Online Eq. 3: admit at the minimum width meeting the deadline.

    The offline inversion
    (:func:`~repro.core.decision.min_clusters_for_deadline`) bounds the
    search from below — no narrower width could meet the deadline even
    on an idle fabric — and the occupancy model widens past it when
    queued reservations would push a narrow admission over the
    deadline (a wider offload is shorter, and a different width may
    find a different hole).  Jobs whose deadline Eq. 3 cannot meet at
    any width fall back to the host; when the host queue cannot meet
    it either, the job is shed at admission.
    """

    name = "deadline_aware"

    def place(self, job: JobSpec, deadline: int,
              engine: "TrafficEngine") -> TrafficOutcome:
        model = engine.offload_model(job)
        arrival = job.arrival_cycle
        budget = deadline - arrival
        m_lo: typing.Optional[int]
        try:
            m_lo = min_clusters_for_deadline(model, job.n, budget,
                                             engine.capacity)
        except DecisionError:
            m_lo = None   # infeasible even on an idle fabric
        if m_lo is not None:
            for m in range(m_lo, engine.capacity + 1):
                duration = engine.duration(model, m, job.n)
                if duration > budget:
                    # Non-monotone models (d > 0): wider can be slower.
                    continue
                start = engine.occupancy.earliest_start(arrival, duration, m)
                if start + duration <= deadline:
                    return engine.offload_outcome(job, deadline, m,
                                                  start=start,
                                                  duration=duration)
        outcome = engine.host_outcome(job, deadline, peek=True)
        if outcome.end_cycle <= deadline:
            return engine.host_outcome(job, deadline)
        return TrafficOutcome(spec=job, placement=PLACEMENT_SHED,
                              num_clusters=0, deadline_cycle=deadline)


class TrafficEngine:
    """Serve a timestamped job stream under one policy.

    ``offload_models`` / ``host_models`` map kernel names to fitted
    models (pass a :class:`repro.workload.ModelDriven` to
    :meth:`from_platform` to reuse a characterization).  ``slack``
    scales the predicted host runtime into each job's deadline, so
    slack 1.0 means "as fast as the host would be, unqueued" and
    larger values are progressively laxer.
    """

    def __init__(self, offload_models: typing.Mapping[str, OffloadModel],
                 host_models: typing.Mapping[str, HostExecutionModel],
                 capacity: int, slack: float = 4.0) -> None:
        if capacity <= 0:
            raise TrafficError(
                f"fabric capacity must be positive, got {capacity}")
        if slack <= 0:
            raise TrafficError(f"deadline slack must be positive, got {slack}")
        self.offload_models = dict(offload_models)
        self.host_models = dict(host_models)
        self.capacity = int(capacity)
        self.slack = float(slack)
        self.occupancy = FabricOccupancy(capacity)
        self._host_free_cycle = 0

    @classmethod
    def from_platform(cls, platform, capacity: int,
                      slack: float = 4.0) -> "TrafficEngine":
        """Build from a characterized platform (e.g.
        :class:`repro.workload.ModelDriven`)."""
        return cls(platform.offload_models, platform.host_models,
                   capacity=capacity, slack=slack)

    # ------------------------------------------------------------------
    # Model access and timing helpers (the policies' vocabulary)
    # ------------------------------------------------------------------
    def offload_model(self, job: JobSpec) -> OffloadModel:
        try:
            return self.offload_models[job.kernel_name]
        except KeyError:
            raise TrafficError(
                f"platform was not characterized for kernel "
                f"{job.kernel_name!r}") from None

    def host_model(self, job: JobSpec) -> HostExecutionModel:
        try:
            return self.host_models[job.kernel_name]
        except KeyError:
            raise TrafficError(
                f"platform was not characterized for kernel "
                f"{job.kernel_name!r}") from None

    @staticmethod
    def duration(model: OffloadModel, m: int, n: int) -> int:
        """Offload service time at width m, in whole cycles."""
        return max(1, math.ceil(model.predict(m, n)))

    def deadline_for(self, job: JobSpec) -> int:
        """``arrival + slack × t̂_host(N)`` — every policy's target."""
        host = self.host_model(job)
        return job.arrival_cycle + max(
            1, math.ceil(self.slack * host.predict(job.n)))

    # ------------------------------------------------------------------
    # Placement primitives
    # ------------------------------------------------------------------
    def host_outcome(self, job: JobSpec, deadline: int,
                     peek: bool = False) -> TrafficOutcome:
        """Queue the job on the serial host server (``peek`` computes
        the outcome without committing the queue)."""
        duration = max(1, math.ceil(self.host_model(job).predict(job.n)))
        start = max(job.arrival_cycle, self._host_free_cycle)
        if not peek:
            self._host_free_cycle = start + duration
        return TrafficOutcome(
            spec=job, placement=PLACEMENT_HOST, num_clusters=0,
            deadline_cycle=deadline, start_cycle=start,
            end_cycle=start + duration)

    def offload_outcome(self, job: JobSpec, deadline: int, m: int,
                        start: typing.Optional[int] = None,
                        duration: typing.Optional[int] = None
                        ) -> TrafficOutcome:
        """Reserve ``m`` clusters at the earliest feasible start."""
        model = self.offload_model(job)
        if duration is None:
            duration = self.duration(model, m, job.n)
        if start is None:
            start = self.occupancy.earliest_start(
                job.arrival_cycle, duration, m)
        self.occupancy.reserve(start, duration, m)
        return TrafficOutcome(
            spec=job, placement=PLACEMENT_OFFLOAD, num_clusters=m,
            deadline_cycle=deadline, start_cycle=start,
            end_cycle=start + duration)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, jobs: typing.Sequence[JobSpec], policy: TrafficPolicy,
            arrival_name: str = "") -> TrafficResult:
        """Admit every job in arrival order and return the outcomes.

        The engine is single-shot per run: occupancy and the host queue
        reset so policies never see each other's reservations.
        """
        if not jobs:
            raise TrafficError("empty traffic scenario")
        self.occupancy = FabricOccupancy(self.capacity)
        self._host_free_cycle = 0
        ordered = sorted(jobs, key=lambda job: job.arrival_cycle)
        outcomes = []
        for job in ordered:
            self.occupancy.prune(job.arrival_cycle)
            outcomes.append(policy.place(job, self.deadline_for(job), self))
        return TrafficResult(
            policy_name=policy.resolved_name(self.capacity),
            arrival_name=arrival_name, capacity=self.capacity,
            slack=self.slack, outcomes=tuple(outcomes),
            busy_cluster_cycles=self.occupancy.busy_cluster_cycles)
