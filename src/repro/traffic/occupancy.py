"""Virtual-time occupancy of the cluster fabric.

The traffic engine never event-simulates contention: it treats the
fabric's M clusters as a reservable resource over *virtual time* (the
arrival clock, in cycles).  A job admitted at width m for d cycles
holds m clusters for the interval ``[start, start + d)``;
:meth:`FabricOccupancy.earliest_start` answers the scheduling question
"from when could m clusters run for d cycles without exceeding
capacity", which is what the admission loop needs to test a candidate
width against a deadline.

The candidate start times are the query's ``not_before`` plus every
existing reservation's end — between those instants concurrent usage
can only stay flat or rise, so the earliest feasible start is always
one of them.  Reservations that ended before the current arrival are
pruned as the clock advances (admission proceeds in arrival order), so
the active set stays small even for long scenarios.
"""

from __future__ import annotations

import typing

from repro.errors import TrafficError


class FabricOccupancy:
    """Clusters as a reservable resource over virtual time."""

    def __init__(self, num_clusters: int) -> None:
        if num_clusters <= 0:
            raise TrafficError(
                f"fabric capacity must be positive, got {num_clusters}")
        self.capacity = int(num_clusters)
        #: Active reservations as ``(start, end, clusters)``; ``end``
        #: exclusive.  Kept unordered — queries scan it.
        self._reservations: typing.List[typing.Tuple[int, int, int]] = []
        #: Total cluster-cycles ever reserved (for utilization metrics).
        self.busy_cluster_cycles = 0

    def __len__(self) -> int:
        return len(self._reservations)

    def prune(self, now: int) -> None:
        """Drop reservations that ended at or before ``now``.

        Safe once no future query's ``not_before`` can precede ``now``
        — i.e. when admission runs in arrival order.
        """
        self._reservations = [
            entry for entry in self._reservations if entry[1] > now]

    def peak_usage(self, start: int, end: int) -> int:
        """Maximum concurrent cluster usage over ``[start, end)``."""
        if end <= start:
            return 0
        points = {start}
        for s, e, _m in self._reservations:
            if s < end and e > start:
                points.add(max(s, start))
        peak = 0
        for t in points:
            usage = sum(m for s, e, m in self._reservations if s <= t < e)
            peak = max(peak, usage)
        return peak

    def earliest_start(self, not_before: int, duration: int, m: int) -> int:
        """Earliest ``t >= not_before`` fitting ``m`` clusters for
        ``duration`` cycles."""
        if m <= 0:
            raise TrafficError(f"reservation width must be positive, got {m}")
        if m > self.capacity:
            raise TrafficError(
                f"cannot reserve {m} clusters on a {self.capacity}-cluster "
                "fabric")
        if duration <= 0:
            return int(not_before)
        candidates = sorted(
            {int(not_before)}
            | {e for _s, e, _m in self._reservations if e > not_before})
        for t in candidates:
            if self.peak_usage(t, t + duration) + m <= self.capacity:
                return t
        raise TrafficError(   # pragma: no cover - the last candidate
            "no feasible start found")  # (all reservations ended) fits

    def reserve(self, start: int, duration: int, m: int) -> None:
        """Commit ``m`` clusters for ``[start, start + duration)``."""
        if duration <= 0:
            raise TrafficError(
                f"reservation duration must be positive, got {duration}")
        if self.peak_usage(start, start + duration) + m > self.capacity:
            raise TrafficError(
                f"reserving {m} clusters at cycle {start} would exceed the "
                f"{self.capacity}-cluster fabric")
        self._reservations.append((int(start), int(start + duration), int(m)))
        self.busy_cluster_cycles += int(m) * int(duration)

    def utilization(self, horizon_cycles: int) -> float:
        """Fraction of cluster-cycles busy over ``[0, horizon)``."""
        if horizon_cycles <= 0:
            return 0.0
        return self.busy_cluster_cycles / (self.capacity * horizon_cycles)
