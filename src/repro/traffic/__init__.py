"""Traffic-driven scenario engine: multi-tenant job streams served online.

ROADMAP item 4 — turn the paper's decision model from a figure into a
*served policy*.  The package layers four pieces on top of the workload
and decision layers:

- :mod:`repro.traffic.arrivals` — stochastic arrival processes
  (Poisson, Markov-modulated bursty, recorded-trace replay) generating
  timestamped, per-tenant :class:`repro.workload.JobSpec` streams from
  a single RNG;
- :mod:`repro.traffic.occupancy` — a virtual-time occupancy model of
  the cluster fabric (clusters as a reservable resource over arrival
  time);
- :mod:`repro.traffic.engine` — the admission/scheduling loop: each
  arriving job gets a deadline (slack × predicted host runtime), and
  the deadline-aware policy inverts the fitted Eq.-1 model online
  (:func:`repro.core.decision.min_clusters_for_deadline`) to admit it
  at the minimum feasible width, queueing behind reservations, falling
  back to the host when Eq. 3 is infeasible, and shedding jobs no
  placement can serve in time;
- :mod:`repro.traffic.metrics` — deadline-miss rate, p50/p99 sojourn,
  cluster utilization and Jain's fairness index, per policy and per
  tenant.

Everything is closed-form over the fitted models (no event simulation
per job), so a thousand-job scenario runs in milliseconds and the same
seed reproduces byte-identical metrics.  Experiment E13
(:func:`repro.experiments.traffic_experiment`, ``repro traffic``)
compares the policies under all three arrival processes.
"""

from __future__ import annotations

from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
    generate_traffic,
)
from repro.traffic.engine import (
    TrafficAlwaysHost,
    TrafficAlwaysOffload,
    TrafficDeadlineAware,
    TrafficEngine,
    TrafficModelDriven,
    TrafficOutcome,
    TrafficPolicy,
    TrafficResult,
)
from repro.traffic.metrics import (
    TenantMetrics,
    TrafficMetrics,
    compute_metrics,
)
from repro.traffic.occupancy import FabricOccupancy

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "generate_traffic",
    "FabricOccupancy",
    "TrafficPolicy",
    "TrafficAlwaysHost",
    "TrafficAlwaysOffload",
    "TrafficModelDriven",
    "TrafficDeadlineAware",
    "TrafficEngine",
    "TrafficOutcome",
    "TrafficResult",
    "TenantMetrics",
    "TrafficMetrics",
    "compute_metrics",
]
