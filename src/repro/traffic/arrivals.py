"""Stochastic job arrivals: the traffic engine's front end.

Three arrival processes cover the sustained-load regimes the follow-up
paper (Taming Offload Overheads, arXiv:2505.05911) analyses:

- :class:`PoissonArrivals` — memoryless open traffic, the M/G/k
  baseline every queueing result is stated against;
- :class:`BurstyArrivals` — a Markov-modulated on/off process: bursts
  of closely spaced jobs separated by idle gaps, the shape real
  fine-grained offload streams have (one application phase issues many
  small jobs, then computes);
- :class:`TraceArrivals` — recorded-trace replay: a captured list of
  arrival offsets replayed (periodically, if the scenario outlasts the
  recording), for when the question is "what would this policy have
  done on *that* day".

:func:`generate_traffic` turns any process into a timestamped,
per-tenant :class:`~repro.workload.JobSpec` stream.  One
``numpy.random.Generator`` seeded from the scenario seed drives every
draw — arrival gaps, tenant assignment, kernel mix, sizes and per-job
input seeds — so a scenario is one integer to reproduce.
"""

from __future__ import annotations

import typing

import numpy

from repro.errors import TrafficError
from repro.workload import JobSpec


class ArrivalProcess:
    """Base class: produces nondecreasing arrival cycles.

    Subclasses either implement :meth:`interarrival_cycles` (stochastic
    processes — arrivals are the running sum of gaps) or override
    :meth:`arrival_cycles` outright (trace replay).
    """

    name = "arrivals"

    def interarrival_cycles(self, rng: numpy.random.Generator) -> float:
        """Gap to the next arrival, in cycles (may be fractional)."""
        raise NotImplementedError

    def arrival_cycles(self, num_jobs: int,
                       rng: numpy.random.Generator) -> typing.List[int]:
        """``num_jobs`` nondecreasing absolute arrival cycles."""
        if num_jobs <= 0:
            raise TrafficError(
                f"traffic needs at least one job, got {num_jobs}")
        now = 0.0
        times = []
        for _ in range(num_jobs):
            gap = float(self.interarrival_cycles(rng))
            if gap < 0:
                raise TrafficError(
                    f"{self.name}: negative interarrival gap {gap}")
            now += gap
            times.append(int(now))
        return times


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with exponential interarrival gaps."""

    name = "poisson"

    def __init__(self, mean_interarrival_cycles: float) -> None:
        if mean_interarrival_cycles <= 0:
            raise TrafficError(
                f"mean interarrival must be positive, got "
                f"{mean_interarrival_cycles}")
        self.mean_interarrival_cycles = float(mean_interarrival_cycles)

    def interarrival_cycles(self, rng: numpy.random.Generator) -> float:
        return rng.exponential(self.mean_interarrival_cycles)


class BurstyArrivals(ArrivalProcess):
    """Markov-modulated on/off arrivals: bursts separated by idle gaps.

    While ON, gaps are exponential with mean
    ``burst_interarrival_cycles``; after each job the process leaves
    the burst with probability ``1 / mean_burst_jobs``, inserting an
    exponential OFF gap of mean ``mean_idle_cycles`` before the next
    burst.  Mean rate is comparable to a Poisson process of mean gap
    ``burst_interarrival + idle / burst_jobs``, but arrivals cluster —
    which is what stresses admission control.
    """

    name = "bursty"

    def __init__(self, burst_interarrival_cycles: float,
                 mean_burst_jobs: float,
                 mean_idle_cycles: float) -> None:
        if burst_interarrival_cycles <= 0 or mean_idle_cycles <= 0:
            raise TrafficError(
                "burst interarrival and idle gaps must be positive, got "
                f"{burst_interarrival_cycles} and {mean_idle_cycles}")
        if mean_burst_jobs < 1:
            raise TrafficError(
                f"mean burst length must be >= 1 job, got {mean_burst_jobs}")
        self.burst_interarrival_cycles = float(burst_interarrival_cycles)
        self.mean_burst_jobs = float(mean_burst_jobs)
        self.mean_idle_cycles = float(mean_idle_cycles)

    def interarrival_cycles(self, rng: numpy.random.Generator) -> float:
        gap = rng.exponential(self.burst_interarrival_cycles)
        if rng.random() < 1.0 / self.mean_burst_jobs:
            gap += rng.exponential(self.mean_idle_cycles)
        return gap


class TraceArrivals(ArrivalProcess):
    """Replay a recorded list of arrival offsets.

    ``offsets`` are nondecreasing cycles within one recorded period;
    when the scenario asks for more jobs than the recording holds, the
    trace repeats shifted by ``period_cycles`` per lap.  No randomness
    is consumed for arrival times (the RNG still drives the job mix),
    so two policies replaying the same trace see identical timestamps.
    """

    name = "trace"

    def __init__(self, offsets: typing.Sequence[int],
                 period_cycles: typing.Optional[int] = None) -> None:
        offsets = [int(value) for value in offsets]
        if not offsets:
            raise TrafficError("a recorded trace needs at least one arrival")
        if any(value < 0 for value in offsets):
            raise TrafficError("trace offsets must be non-negative")
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise TrafficError("trace offsets must be nondecreasing")
        if period_cycles is None:
            period_cycles = offsets[-1] + 1
        if period_cycles <= offsets[-1]:
            raise TrafficError(
                f"trace period {period_cycles} must exceed the last "
                f"recorded offset {offsets[-1]}")
        self.offsets = offsets
        self.period_cycles = int(period_cycles)

    def arrival_cycles(self, num_jobs: int,
                       rng: numpy.random.Generator) -> typing.List[int]:
        if num_jobs <= 0:
            raise TrafficError(
                f"traffic needs at least one job, got {num_jobs}")
        times = []
        for index in range(num_jobs):
            lap, slot = divmod(index, len(self.offsets))
            times.append(lap * self.period_cycles + self.offsets[slot])
        return times


def generate_traffic(process: ArrivalProcess, num_jobs: int,
                     tenants: int = 2,
                     kernels: typing.Sequence[str] = ("daxpy", "memcpy"),
                     min_n: int = 16, max_n: int = 4096,
                     seed: int = 0) -> typing.List[JobSpec]:
    """A timestamped multi-tenant job stream from one arrival process.

    Sizes are log-uniform over ``[min_n, max_n]`` (the workload layer's
    fine-grained shape), tenants are drawn uniformly per job, and
    per-job input seeds come from the same generator — one RNG, one
    scenario.  Jobs come back sorted by arrival cycle.
    """
    if tenants <= 0:
        raise TrafficError(f"traffic needs at least one tenant, got {tenants}")
    if not kernels:
        raise TrafficError("traffic needs at least one kernel")
    if not 0 < min_n <= max_n:
        raise TrafficError(f"invalid size range [{min_n}, {max_n}]")
    rng = numpy.random.default_rng(seed)
    times = process.arrival_cycles(num_jobs, rng)
    jobs = []
    for arrival in times:
        kernel = str(rng.choice(list(kernels)))
        n = int(numpy.exp(rng.uniform(numpy.log(min_n), numpy.log(max_n))))
        n = max(min_n, min(max_n, n))
        jobs.append(JobSpec(
            kernel_name=kernel, n=n,
            seed=int(rng.integers(0, 2**63)),
            tenant=int(rng.integers(0, tenants)),
            arrival_cycle=int(arrival)))
    return jobs
