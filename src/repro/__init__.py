"""repro: reproduction of "Optimizing Offload Performance in
Heterogeneous MPSoCs" (Colagrande & Benini, DATE 2024).

The package provides, bottom-up:

- :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
- :mod:`repro.mem`, :mod:`repro.noc` — memory subsystem and interconnect
  models (including the paper's multicast extension);
- :mod:`repro.host`, :mod:`repro.cluster`, :mod:`repro.soc` — the
  Manticore-class MPSoC: CVA6-like host, Snitch-like compute clusters,
  and the credit-counter synchronization unit;
- :mod:`repro.kernels` — device kernels (DAXPY and friends) with
  functional NumPy execution plus calibrated timing models;
- :mod:`repro.runtime` — baseline and extended (multicast + HW sync)
  offload runtimes;
- :mod:`repro.core` — the paper's contribution: offload measurement
  sweeps, the analytic runtime model (Eq. 1), MAPE validation (Eq. 2),
  and the offload decision solver (Eq. 3);
- :mod:`repro.analysis` — fitting, tables and ASCII charts used by the
  benchmarks to regenerate every figure in the paper.

Quickstart::

    from repro import ManticoreSystem, SoCConfig, offload_daxpy

    system = ManticoreSystem(SoCConfig(num_clusters=32))
    result = offload_daxpy(system, n=1024, num_clusters=8)
    print(result.runtime_cycles)
"""

from repro.core.decision import (
    FabricDecision,
    FabricOption,
    OffloadDecision,
    choose_fabric,
    min_clusters_for_deadline,
)
from repro.core.mape import mape, mape_table
from repro.core.model import (
    OffloadModel,
    PAPER_DAXPY_MODEL,
    TileClassModel,
    fit_class_models,
)
from repro.core.offload import (
    HostRunResult,
    OffloadResult,
    offload,
    offload_daxpy,
    run_on_host,
)
from repro.core.concurrent import (
    ConcurrentJob,
    ConcurrentOffloadResult,
    offload_concurrent,
)
from repro.core.overlap import OverlappedResult, offload_overlapped
from repro.core.tiling import TiledOffloadResult, offload_tiled
from repro.core.cache import SweepCache
from repro.core.executor import SweepExecutor
from repro.core.sweep import SweepPoint, SweepResult, sweep
from repro.energy import EnergyBreakdown, EnergyMeter, PowerBudget
from repro.errors import (
    ConfigError,
    DecisionError,
    KernelError,
    ModelError,
    OffloadError,
    ReproError,
    SimulationError,
)
from repro.kernels.registry import get_kernel, kernel_names
from repro.runtime.api import RUNTIME_VARIANTS, make_runtime
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.soc.tiles import TileClass, TileGroup, get_tile_class

__version__ = "1.0.0"

__all__ = [
    "ConcurrentJob",
    "ConcurrentOffloadResult",
    "ConfigError",
    "EnergyBreakdown",
    "EnergyMeter",
    "HostRunResult",
    "PowerBudget",
    "TiledOffloadResult",
    "DecisionError",
    "FabricDecision",
    "FabricOption",
    "KernelError",
    "ManticoreSystem",
    "ModelError",
    "OffloadDecision",
    "OffloadError",
    "OffloadModel",
    "OffloadResult",
    "OverlappedResult",
    "PAPER_DAXPY_MODEL",
    "ReproError",
    "RUNTIME_VARIANTS",
    "SimulationError",
    "SoCConfig",
    "SweepCache",
    "SweepExecutor",
    "SweepPoint",
    "SweepResult",
    "TileClass",
    "TileClassModel",
    "TileGroup",
    "choose_fabric",
    "fit_class_models",
    "get_kernel",
    "get_tile_class",
    "kernel_names",
    "make_runtime",
    "mape",
    "mape_table",
    "min_clusters_for_deadline",
    "offload",
    "offload_concurrent",
    "offload_daxpy",
    "offload_overlapped",
    "offload_tiled",
    "run_on_host",
    "sweep",
]
