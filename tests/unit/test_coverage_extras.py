"""Focused tests for subtle semantic distinctions and small gaps."""

import numpy
import pytest

from repro.core.decision import HostExecutionModel
from repro.core.model import OffloadModel
from repro.core.offload import offload
from repro.errors import OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.workload import JobSpec, ModelDriven


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


# ----------------------------------------------------------------------
# Stencil: double-bufferable but NOT tileable — and why
# ----------------------------------------------------------------------
def test_stencil_double_buffered_is_exact():
    """Double buffering keeps the *full* input snapshot per cluster, so
    chunk boundaries see true neighbours — unlike tiling, which hands
    each tile an isolated sub-array and would clamp at tile edges.
    That is exactly why stencil3 allows dbuf but sets tileable=False."""
    rng = numpy.random.default_rng(21)
    x = rng.normal(size=300)
    scalars = {"a": 1.0, "b": -2.0, "c": 1.0}
    phased = offload(ext_system(), "stencil3", 300, 2, scalars=scalars,
                     inputs={"x": x})
    dbuf = offload(ext_system(), "stencil3", 300, 2, scalars=scalars,
                   inputs={"x": x}, exec_mode="double_buffered")
    numpy.testing.assert_array_equal(phased.outputs["y"],
                                     dbuf.outputs["y"])
    assert dbuf.verified is True


def test_stencil_remains_untileable():
    from repro.core.tiling import offload_tiled
    with pytest.raises(OffloadError, match="not tileable"):
        offload_tiled(ext_system(), "stencil3", 300, 2,
                      scalars={"a": 1.0, "b": 1.0, "c": 1.0})


# ----------------------------------------------------------------------
# Model-driven policy with a dispatch-term (baseline-like) model
# ----------------------------------------------------------------------
def test_model_driven_picks_interior_m_with_dispatch_term():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325,
                         dispatch_coeff=11.0)
    host = HostExecutionModel(cycles_per_element=4.0)
    policy = ModelDriven({"daxpy": model}, {"daxpy": host})
    placement = policy.place(JobSpec("daxpy", 4096), fabric_clusters=32)
    assert placement.offload
    # sqrt(0.325*4096/11) = 11: interior, not the full fabric.
    assert 8 <= placement.num_clusters <= 14


# ----------------------------------------------------------------------
# Simulator conveniences
# ----------------------------------------------------------------------
def test_simulator_any_of_empty_triggers():
    from repro.sim import Simulator
    sim = Simulator()
    combo = sim.any_of([])
    sim.run(until=combo)
    assert combo.value == (None, None)


def test_timer_value_is_fire_time():
    from repro.sim import Simulator
    sim = Simulator()
    sim.schedule(5, lambda arg: None)
    timer = sim.timer(20)
    sim.run()
    assert timer.value == 20


# ----------------------------------------------------------------------
# Per-offload trace windows on a shared system with mixed operations
# ----------------------------------------------------------------------
def test_trace_window_isolation_across_mixed_operations():
    from repro.core.offload import run_on_host
    system = ext_system()
    first = offload(system, "daxpy", 128, 2)
    run_on_host(system, "scale", 64)
    second = offload(system, "memcpy", 128, 4)
    assert len(first.trace.clusters) == 2
    assert len(second.trace.clusters) == 4
    assert second.trace.start_cycle > first.trace.end_cycle


# ----------------------------------------------------------------------
# Config feature/variant interactions
# ----------------------------------------------------------------------
def test_with_features_round_trip_all_pairs():
    base = SoCConfig.extended()
    for multicast in (False, True):
        for hw_sync in (False, True):
            config = base.with_features(multicast=multicast,
                                        hw_sync=hw_sync)
            assert config.multicast == multicast
            assert config.hw_sync == hw_sync
            system = ManticoreSystem(
                SoCConfig(num_clusters=2, multicast=multicast,
                          hw_sync=hw_sync))
            result = offload(system, "daxpy", 32, 2)
            assert result.verified is True


def test_energy_meter_counts_concurrent_launch_once():
    from repro.core.concurrent import ConcurrentJob, offload_concurrent
    from repro.energy import EnergyMeter
    system = ext_system()
    meter = EnergyMeter(system)
    meter.start()
    offload_concurrent(system, [ConcurrentJob("daxpy", 256, 4, seed=1),
                                ConcurrentJob("scale", 256, 4, seed=2)])
    report = meter.stop()
    assert report.total > 0
    assert report.memory == pytest.approx(
        1.2 * (system.read_channel.bytes_moved
               + system.write_channel.bytes_moved))
