"""Unit tests for the benchmark regression gate (tools/check_bench.py)."""

import importlib.util
import json
import pathlib

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parents[2]
         / "tools" / "check_bench.py")
_spec = importlib.util.spec_from_file_location("check_bench", _TOOL)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _report(**benches):
    return {"benchmarks": [
        {"name": name, "extra_info": extra}
        for name, extra in benches.items()
    ]}


def test_within_tolerance_passes():
    reference = _report(sweep={"points_per_sec": 100.0})
    current = _report(sweep={"points_per_sec": 91.0})
    failures, lines = check_bench.compare(reference, current, 0.10)
    assert failures == []
    assert any("ok" in line for line in lines)


def test_regression_past_tolerance_fails():
    reference = _report(sweep={"points_per_sec": 100.0})
    current = _report(sweep={"points_per_sec": 89.9})
    failures, _lines = check_bench.compare(reference, current, 0.10)
    assert len(failures) == 1
    assert "sweep.points_per_sec" in failures[0]


def test_improvement_passes():
    reference = _report(ab={"naive_points_per_sec": 50.0,
                            "optimized_points_per_sec": 100.0})
    current = _report(ab={"naive_points_per_sec": 55.0,
                          "optimized_points_per_sec": 140.0})
    failures, _lines = check_bench.compare(reference, current, 0.10)
    assert failures == []


def test_one_sided_benchmarks_and_keys_are_skipped():
    reference = _report(gone={"points_per_sec": 10.0},
                        shared={"points_per_sec": 10.0})
    current = _report(new={"points_per_sec": 10.0},
                      shared={"points_per_sec": 10.0,
                              "extra_points_per_sec": 1.0})
    failures, lines = check_bench.compare(reference, current, 0.10)
    assert failures == []
    text = "\n".join(lines)
    assert "only in reference" in text
    assert "new benchmark" in text
    assert "only in current" in text


def test_non_throughput_extra_info_is_ignored():
    reference = _report(ab={"speedup": 2.34, "grid_points": 192})
    current = _report(ab={"speedup": 1.0, "grid_points": 10})
    failures, lines = check_bench.compare(reference, current, 0.10)
    assert failures == []
    assert lines == ["  (no comparable throughput figures)"]


def test_main_exit_codes(tmp_path, capsys):
    reference = tmp_path / "ref.json"
    current = tmp_path / "cur.json"
    reference.write_text(json.dumps(_report(
        sweep={"points_per_sec": 100.0})))

    current.write_text(json.dumps(_report(sweep={"points_per_sec": 95.0})))
    assert check_bench.main(
        [str(current), "--reference", str(reference)]) == 0
    assert "no regressions" in capsys.readouterr().out

    current.write_text(json.dumps(_report(sweep={"points_per_sec": 50.0})))
    assert check_bench.main(
        [str(current), "--reference", str(reference)]) == 1
    assert "regressed" in capsys.readouterr().err


def test_main_require_fails_on_missing_benchmark(tmp_path, capsys):
    reference = tmp_path / "ref.json"
    current = tmp_path / "cur.json"
    reference.write_text(json.dumps(_report(
        sweep={"points_per_sec": 100.0})))
    current.write_text(json.dumps(_report(sweep={"points_per_sec": 95.0})))

    # Present benchmark satisfies the requirement.
    assert check_bench.main(
        [str(current), "--reference", str(reference),
         "--require", "sweep"]) == 0
    capsys.readouterr()

    # A required benchmark missing from the current report fails even
    # though every shared figure is within tolerance.
    assert check_bench.main(
        [str(current), "--reference", str(reference),
         "--require", "sweep", "--require", "renamed_ab"]) == 1
    assert "renamed_ab required but missing" in capsys.readouterr().err

    # A benchmark without any throughput figure does not count either.
    current.write_text(json.dumps(_report(sweep={"speedup": 2.0})))
    assert check_bench.main(
        [str(current), "--reference", str(reference),
         "--require", "sweep"]) == 1


def test_main_rejects_bad_tolerance(tmp_path):
    current = tmp_path / "cur.json"
    current.write_text(json.dumps(_report()))
    with pytest.raises(SystemExit):
        check_bench.main([str(current), "--tolerance", "1.5"])


def test_committed_snapshot_is_a_valid_reference():
    """The checked-in BENCH_sweep.json must stay consumable."""
    with check_bench.DEFAULT_REFERENCE.open() as handle:
        reference = json.load(handle)
    figures = check_bench._throughputs(reference)
    assert "test_sweep_point_throughput" in figures
    failures, _lines = check_bench.compare(reference, reference, 0.10)
    assert failures == []
