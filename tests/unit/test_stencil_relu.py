"""Kernel-specific tests for stencil3 (halo traffic) and relu."""

import numpy
import pytest

from repro.core.offload import offload
from repro.kernels import get_kernel, split_range
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system():
    return ManticoreSystem(SoCConfig.extended(num_clusters=8))


# ----------------------------------------------------------------------
# Stencil halo accounting
# ----------------------------------------------------------------------
def test_stencil_halo_traffic_exceeds_partition():
    """Splitting a stencil adds one halo element per interior edge."""
    kernel = get_kernel("stencil3")
    n, parts = 96, 6
    whole = kernel.slice_bytes_in(0, n, n)
    split = sum(kernel.slice_bytes_in(s.lo, s.hi, n)
                for s in split_range(n, parts))
    # 6 slices -> 5 interior boundaries -> 10 halo elements.
    assert split - whole == 10 * 8


def test_stencil_boundary_slices_have_one_sided_halo():
    kernel = get_kernel("stencil3")
    n = 64
    assert kernel.slice_bytes_in(0, 16, n) == (16 + 1) * 8
    assert kernel.slice_bytes_in(16, 48, n) == (32 + 2) * 8
    assert kernel.slice_bytes_in(48, 64, n) == (16 + 1) * 8
    assert kernel.slice_bytes_in(0, 64, 64) == 64 * 8  # no halo when whole


def test_stencil_functional_against_numpy():
    n = 100
    rng = numpy.random.default_rng(5)
    x = rng.normal(size=n)
    result = offload(ext_system(), "stencil3", n, 4,
                     scalars={"a": 0.25, "b": 0.5, "c": 0.25},
                     inputs={"x": x})
    padded = numpy.concatenate(([x[0]], x, [x[-1]]))
    expected = 0.25 * padded[:-2] + 0.5 * padded[1:-1] + 0.25 * padded[2:]
    numpy.testing.assert_allclose(result.outputs["y"], expected, rtol=1e-12)


def test_stencil_result_independent_of_split():
    """Halo exchange must make the result split-invariant."""
    rng = numpy.random.default_rng(6)
    x = rng.normal(size=61)
    scalars = {"a": 1.0, "b": -2.0, "c": 1.0}  # discrete Laplacian
    narrow = offload(ext_system(), "stencil3", 61, 1, scalars=scalars,
                     inputs={"x": x})
    wide = offload(ext_system(), "stencil3", 61, 7, scalars=scalars,
                   inputs={"x": x})
    numpy.testing.assert_array_equal(narrow.outputs["y"], wide.outputs["y"])


def test_stencil_smoothing_preserves_mean_interior():
    """A (1/4, 1/2, 1/4) stencil is an averaging filter."""
    x = numpy.ones(50)
    result = offload(ext_system(), "stencil3", 50, 4,
                     scalars={"a": 0.25, "b": 0.5, "c": 0.25},
                     inputs={"x": x})
    numpy.testing.assert_allclose(result.outputs["y"], numpy.ones(50))


# ----------------------------------------------------------------------
# ReLU
# ----------------------------------------------------------------------
def test_relu_functional():
    x = numpy.array([-2.0, -0.5, 0.0, 0.5, 2.0])
    result = offload(ext_system(), "relu", 5, 2, inputs={"x": x})
    numpy.testing.assert_array_equal(result.outputs["y"],
                                     [0.0, 0.0, 0.0, 0.5, 2.0])


def test_relu_is_in_place():
    kernel = get_kernel("relu")
    assert kernel.output_alias("y") == "x"
    # In-place: TCDM footprint is input-only.
    assert kernel.slice_tcdm_bytes(0, 100, 100) == 100 * 8


def test_relu_double_buffered():
    rng = numpy.random.default_rng(8)
    x = rng.normal(size=400)
    result = offload(ext_system(), "relu", 400, 4, inputs={"x": x},
                     exec_mode="double_buffered")
    numpy.testing.assert_array_equal(result.outputs["y"],
                                     numpy.maximum(x, 0.0))


def test_relu_has_zero_flops():
    assert get_kernel("relu").flops(100) == 0
