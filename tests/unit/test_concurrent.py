"""Unit tests for concurrent space-shared offloads."""

import numpy
import pytest

from repro.core.concurrent import (
    ConcurrentJob,
    offload_concurrent,
)
from repro.core.offload import offload, offload_daxpy
from repro.errors import OffloadError
from repro.noc.packet import TransactionKind
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def base_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.baseline(**overrides))


def two_jobs(n=256, m=4, kernels=("daxpy", "memcpy")):
    return [ConcurrentJob(kernels[0], n, m, seed=1),
            ConcurrentJob(kernels[1], n, m, seed=2)]


def test_two_jobs_verify_functionally():
    result = offload_concurrent(ext_system(), two_jobs())
    assert all(job.verified for job in result.jobs)
    assert result.jobs[0].first_cluster == 0
    assert result.jobs[1].first_cluster == 4


def test_results_match_isolated_offloads():
    concurrent = offload_concurrent(ext_system(), two_jobs())
    alone_daxpy = offload(ext_system(), "daxpy", 256, 4, seed=1)
    alone_memcpy = offload(ext_system(), "memcpy", 256, 4, seed=2)
    numpy.testing.assert_array_equal(concurrent.jobs[0].outputs["y"],
                                     alone_daxpy.outputs["y"])
    numpy.testing.assert_array_equal(concurrent.jobs[1].outputs["y"],
                                     alone_memcpy.outputs["y"])


def test_makespan_beats_back_to_back():
    system = ext_system()
    first = offload_daxpy(system, n=2048, num_clusters=4, seed=1)
    second = offload_daxpy(system, n=2048, num_clusters=4, seed=2)
    sequential = first.runtime_cycles + second.runtime_cycles
    concurrent = offload_concurrent(
        ext_system(), [ConcurrentJob("daxpy", 2048, 4, seed=1),
                       ConcurrentJob("daxpy", 2048, 4, seed=2)])
    assert concurrent.makespan_cycles < sequential


def test_single_interrupt_covers_all_jobs():
    system = ext_system()
    offload_concurrent(system, two_jobs())
    assert system.syncunit.interrupts_fired == 1
    assert system.syncunit.count == 8  # 4 + 4 increments


def test_works_on_baseline_hardware_with_per_job_flags():
    system = base_system()
    result = offload_concurrent(system, two_jobs())
    assert all(job.verified for job in result.jobs)
    assert result.variant == "baseline"
    # Two flags polled, no sync-unit traffic.
    assert system.syncunit.count == 0
    assert system.noc.count(TransactionKind.AMO_ADD) == 8


def test_three_way_launch():
    jobs = [ConcurrentJob("daxpy", 128, 2, seed=1),
            ConcurrentJob("scale", 128, 2, seed=2),
            ConcurrentJob("vecsum", 128, 4, seed=3)]
    result = offload_concurrent(ext_system(), jobs)
    assert all(job.verified for job in result.jobs)
    assert [j.first_cluster for j in result.jobs] == [0, 2, 4]


def test_per_job_completion_cycles_are_within_window():
    result = offload_concurrent(ext_system(), two_jobs())
    for job in result.jobs:
        assert result.start_cycle < job.completed_cycle < result.end_cycle


def test_empty_launch_rejected():
    with pytest.raises(OffloadError):
        offload_concurrent(ext_system(), [])


def test_overwide_launch_rejected():
    with pytest.raises(OffloadError, match="clusters"):
        offload_concurrent(ext_system(), [ConcurrentJob("daxpy", 64, 5),
                                          ConcurrentJob("daxpy", 64, 4)])


def test_tcdm_precheck_applies_per_job():
    with pytest.raises(OffloadError, match="TCDM"):
        offload_concurrent(ext_system(), [
            ConcurrentJob("daxpy", 16384, 1),
            ConcurrentJob("daxpy", 64, 1),
        ])


def test_double_buffered_job_in_concurrent_launch():
    jobs = [ConcurrentJob("daxpy", 4096, 2, seed=1,
                          exec_mode="double_buffered"),
            ConcurrentJob("memcpy", 256, 2, seed=2)]
    result = offload_concurrent(ext_system(), jobs)
    assert all(job.verified for job in result.jobs)


def test_result_string():
    result = offload_concurrent(ext_system(), two_jobs())
    text = str(result)
    assert "daxpy+memcpy" in text and "8 clusters" in text


def test_sequential_after_concurrent_reuses_system():
    system = ext_system()
    offload_concurrent(system, two_jobs())
    plain = offload_daxpy(system, n=128, num_clusters=8)
    assert plain.verified is True
