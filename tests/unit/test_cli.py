"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_shows_every_experiment():
    code, text = run_cli("list")
    assert code == 0
    for name in ("fig1-left", "fig1-right", "fit", "mape", "decision",
                 "ablation-features", "ablation-dispatch", "kernels",
                 "ablation-poll"):
        assert name in text


def test_offload_command_prints_result_and_phases():
    code, text = run_cli("offload", "--kernel", "daxpy", "--n", "256",
                         "--clusters", "4", "--fabric", "8")
    assert code == 0
    assert "daxpy(n=256) on 4 clusters" in text
    assert "dispatch" in text and "total" in text


def test_offload_command_baseline_variant():
    code, text = run_cli("offload", "--kernel", "memcpy", "--n", "64",
                         "--clusters", "2", "--fabric", "4",
                         "--variant", "baseline")
    assert code == 0
    assert "[baseline]" in text


def test_offload_command_rejects_bad_width():
    code, text = run_cli("offload", "--n", "64", "--clusters", "8",
                         "--fabric", "4")
    assert code == 1
    assert "error:" in text


def test_fig1_left_small_fabric():
    code, text = run_cli("fig1-left", "--clusters", "4")
    assert code == 0
    assert "Fig. 1 (left)" in text
    assert "baseline" in text


def test_mape_small_fabric():
    code, text = run_cli("mape", "--clusters", "4")
    assert code == 0
    assert "MAPE" in text


def test_sweep_to_stdout_is_csv():
    code, text = run_cli("sweep", "--kernel", "daxpy", "--n", "64", "128",
                         "--m", "1", "2", "--clusters", "4")
    assert code == 0
    lines = text.strip().splitlines()
    assert lines[0].startswith("kernel,n,num_clusters")
    assert len(lines) == 5  # header + 2x2 grid


def test_sweep_to_file(tmp_path):
    target = tmp_path / "grid.csv"
    code, text = run_cli("sweep", "--kernel", "memcpy", "--n", "64",
                         "--m", "2", "--clusters", "4",
                         "--csv", str(target))
    assert code == 0
    assert "1 points written" in text
    assert target.read_text().startswith("kernel,")


def test_sweep_rejects_overwide_grid():
    code, text = run_cli("sweep", "--n", "64", "--m", "16",
                         "--clusters", "4")
    assert code == 1
    assert "error:" in text


def test_report_writes_all_sections(tmp_path):
    target = tmp_path / "report.md"
    code, text = run_cli("report", "--out", str(target), "--clusters", "4")
    assert code == 0
    content = target.read_text()
    assert content.startswith("# Reproduction report")
    for section in ("fig1-left", "mape", "scheduler", "concurrency"):
        assert f"## {section}" in content


def _stats_run(tile_class, tile_group, *, points, planned, fallbacks,
               calibrated):
    """A synthetic executor stats record with every collected key."""
    predictable = planned + fallbacks
    return {
        "points": points, "tile_group": tile_group,
        "tile_class": tile_class, "elapsed_seconds": 0.5,
        "points_per_second": points / 0.5, "cache_hits": 0,
        "cache_misses": points, "simulated_points": points - planned,
        "planned_points": planned, "batch_fallback_points": fallbacks,
        "batch_plan_hit_rate": (planned / predictable if predictable
                                else 0.0),
        "prefixes_calibrated": calibrated, "prefixes_predicted": 1,
        "mmodels_fitted": 1, "holdout_fallbacks": 0,
        "calibration_store_hits": 0, "calibration_store_misses": 1,
        "cache_evictions": 0, "pool_hits": 2, "pool_builds": 1,
        "pool_restores": 2, "pool_dropped": 0, "sim_resumes": 10,
    }


def test_stats_per_tile_class_breakdown(monkeypatch):
    from repro import cli
    from repro.core import executor

    runs = [
        _stats_run("snitch", "little", points=24, planned=20,
                   fallbacks=0, calibrated=4),
        _stats_run("vecwide", "big", points=24, planned=10,
                   fallbacks=10, calibrated=4),
    ]
    monkeypatch.setattr(executor, "drain_run_stats", lambda: runs)
    out = io.StringIO()
    cli._print_run_stats(out)
    text = out.getvalue()
    assert "sweep statistics (2 sweeps):" in text
    assert "points      48" in text
    assert "30 planned" in text and "10 fallbacks" in text
    assert "per tile class:" in text
    assert ("snitch       1 sweeps, 24 points, 20 planned, 0 fallbacks, "
            "4 calibrated (engagement 100.0%)") in text
    assert ("vecwide      1 sweeps, 24 points, 10 planned, 10 fallbacks, "
            "4 calibrated (engagement 50.0%)") in text


def test_stats_mixed_spans_count_as_their_own_class(monkeypatch):
    from repro import cli
    from repro.core import executor

    runs = [_stats_run("mixed", None, points=8, planned=0, fallbacks=8,
                       calibrated=0)]
    monkeypatch.setattr(executor, "drain_run_stats", lambda: runs)
    out = io.StringIO()
    cli._print_run_stats(out)
    text = out.getvalue()
    assert ("mixed        1 sweeps, 8 points, 0 planned, 8 fallbacks, "
            "0 calibrated (engagement 0.0%)") in text


def test_fabric_command_selects_classes():
    code, text = run_cli("fabric", "--clusters", "8")
    assert code == 0
    assert "E12" in text
    assert "snitch" in text and "vecwide" in text
    assert "Fabric selection" in text


def test_traffic_command_reports_and_exports_csv(tmp_path):
    target = tmp_path / "traffic.csv"
    code, text = run_cli("traffic", "--clusters", "4", "--num-jobs", "24",
                         "--tenants", "2", "--seed", "11",
                         "--csv", str(target))
    assert code == 0
    assert "E13" in text
    for policy in ("always_host", "always_offload_4", "model_driven",
                   "deadline_aware"):
        assert policy in text
    content = target.read_text()
    assert content.startswith("arrival,policy,tenant,")
    assert "poisson" in content and "bursty" in content \
        and "trace" in content


def test_unknown_command_exits_nonzero():
    with pytest.raises(SystemExit):
        run_cli("frobnicate")


def test_missing_command_exits_nonzero():
    with pytest.raises(SystemExit):
        run_cli()
