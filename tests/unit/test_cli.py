"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_shows_every_experiment():
    code, text = run_cli("list")
    assert code == 0
    for name in ("fig1-left", "fig1-right", "fit", "mape", "decision",
                 "ablation-features", "ablation-dispatch", "kernels",
                 "ablation-poll"):
        assert name in text


def test_offload_command_prints_result_and_phases():
    code, text = run_cli("offload", "--kernel", "daxpy", "--n", "256",
                         "--clusters", "4", "--fabric", "8")
    assert code == 0
    assert "daxpy(n=256) on 4 clusters" in text
    assert "dispatch" in text and "total" in text


def test_offload_command_baseline_variant():
    code, text = run_cli("offload", "--kernel", "memcpy", "--n", "64",
                         "--clusters", "2", "--fabric", "4",
                         "--variant", "baseline")
    assert code == 0
    assert "[baseline]" in text


def test_offload_command_rejects_bad_width():
    code, text = run_cli("offload", "--n", "64", "--clusters", "8",
                         "--fabric", "4")
    assert code == 1
    assert "error:" in text


def test_fig1_left_small_fabric():
    code, text = run_cli("fig1-left", "--clusters", "4")
    assert code == 0
    assert "Fig. 1 (left)" in text
    assert "baseline" in text


def test_mape_small_fabric():
    code, text = run_cli("mape", "--clusters", "4")
    assert code == 0
    assert "MAPE" in text


def test_sweep_to_stdout_is_csv():
    code, text = run_cli("sweep", "--kernel", "daxpy", "--n", "64", "128",
                         "--m", "1", "2", "--clusters", "4")
    assert code == 0
    lines = text.strip().splitlines()
    assert lines[0].startswith("kernel,n,num_clusters")
    assert len(lines) == 5  # header + 2x2 grid


def test_sweep_to_file(tmp_path):
    target = tmp_path / "grid.csv"
    code, text = run_cli("sweep", "--kernel", "memcpy", "--n", "64",
                         "--m", "2", "--clusters", "4",
                         "--csv", str(target))
    assert code == 0
    assert "1 points written" in text
    assert target.read_text().startswith("kernel,")


def test_sweep_rejects_overwide_grid():
    code, text = run_cli("sweep", "--n", "64", "--m", "16",
                         "--clusters", "4")
    assert code == 1
    assert "error:" in text


def test_report_writes_all_sections(tmp_path):
    target = tmp_path / "report.md"
    code, text = run_cli("report", "--out", str(target), "--clusters", "4")
    assert code == 0
    content = target.read_text()
    assert content.startswith("# Reproduction report")
    for section in ("fig1-left", "mape", "scheduler", "concurrency"):
        assert f"## {section}" in content


def test_unknown_command_exits_nonzero():
    with pytest.raises(SystemExit):
        run_cli("frobnicate")


def test_missing_command_exits_nonzero():
    with pytest.raises(SystemExit):
        run_cli()
