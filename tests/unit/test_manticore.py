"""Unit tests for the ManticoreSystem builder and address helpers."""

import pytest

from repro.errors import MemoryError_
from repro.soc.config import SoCConfig
from repro.soc.manticore import (
    CLUSTER_PERIPH_BASE,
    CLUSTER_PERIPH_STRIDE,
    ManticoreSystem,
)


def small_system(**overrides):
    return ManticoreSystem(SoCConfig.extended(num_clusters=4, **overrides))


def test_builds_requested_cluster_count():
    system = small_system()
    assert len(system.clusters) == 4
    assert all(c.num_workers == 8 for c in system.clusters)


def test_address_map_has_all_regions():
    system = small_system()
    names = {region.name for region in system.address_map.regions}
    assert "dram" in names
    assert "syncunit" in names
    for index in range(4):
        assert f"cluster{index}.periph" in names
        assert f"cluster{index}.tcdm" in names


def test_mailbox_addresses_are_strided():
    system = small_system()
    assert system.mailbox_addr(0) == CLUSTER_PERIPH_BASE
    assert system.mailbox_addr(3) == (CLUSTER_PERIPH_BASE
                                      + 3 * CLUSTER_PERIPH_STRIDE)
    with pytest.raises(IndexError):
        system.mailbox_addr(4)


def test_mailbox_addrs_for_multicast():
    system = small_system()
    addrs = system.mailbox_addrs(3)
    assert addrs == tuple(system.mailbox_addr(i) for i in range(3))
    with pytest.raises(IndexError):
        system.mailbox_addrs(5)
    with pytest.raises(IndexError):
        system.mailbox_addrs(0)


def test_mailbox_write_through_map_reaches_cluster():
    system = small_system()
    system.run()   # park the DM cores so the ring is not a lost doorbell
    system.address_map.write_word(system.mailbox_addr(2), 0xBEEF)
    assert system.clusters[2].mailbox.job_ptr == 0xBEEF


def test_syncunit_addresses_route_to_unit():
    system = small_system()
    system.address_map.write_word(system.syncunit_threshold_addr, 3)
    assert system.syncunit.threshold == 3
    system.address_map.write_word(system.syncunit_increment_addr, 1)
    assert system.address_map.read_word(system.syncunit_count_addr) == 1


def test_unmapped_address_rejected():
    system = small_system()
    with pytest.raises(MemoryError_):
        system.address_map.read_word(0x6000_0000)


def test_clusters_share_memory_channels():
    system = small_system()
    assert all(c.dma.read_channel is system.read_channel
               for c in system.clusters)
    assert all(c.dma.write_channel is system.write_channel
               for c in system.clusters)


def test_fresh_system_time_is_zero():
    assert small_system().sim.now == 0


def test_run_drains_idle_system():
    system = small_system()
    assert system.run() == 0  # only parked DM cores, no events
