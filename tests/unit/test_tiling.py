"""Unit tests for tiled offloads."""

import numpy
import pytest

from repro.core.offload import offload_daxpy
from repro.core.tiling import TiledOffloadResult, max_phased_tile, offload_tiled
from repro.errors import OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def test_max_phased_tile_daxpy():
    # DAXPY stages 16 bytes/element in place: 128 KiB TCDM -> 8192/cluster.
    assert max_phased_tile("daxpy", 1, 128 * 1024) == 8192
    assert max_phased_tile("daxpy", 4, 128 * 1024) == 4 * 8192


def test_max_phased_tile_rejects_oversized_elements():
    with pytest.raises(OffloadError):
        max_phased_tile("daxpy", 1, 8)


def test_tiled_functional_result():
    rng = numpy.random.default_rng(4)
    n = 1000
    x, y = rng.normal(size=n), rng.normal(size=n)
    result = offload_tiled(ext_system(), "daxpy", n, 4, tile_elements=256,
                           scalars={"a": 3.0}, inputs={"x": x, "y": y})
    numpy.testing.assert_allclose(result.outputs["y"], 3.0 * x + y,
                                  rtol=1e-12)
    assert result.verified is True
    assert result.num_tiles == 4  # ceil(1000/256)


def test_single_tile_matches_plain_offload():
    plain = offload_daxpy(ext_system(), n=512, num_clusters=4, seed=1,
                          a=1.0)
    tiled = offload_tiled(ext_system(), "daxpy", 512, 4, tile_elements=512,
                          seed=1)
    assert tiled.num_tiles == 1
    assert tiled.total_cycles == plain.runtime_cycles
    numpy.testing.assert_array_equal(tiled.outputs["y"], plain.outputs["y"])


def test_default_tile_size_is_tcdm_bound():
    result = offload_tiled(ext_system(num_clusters=2), "daxpy", 40_000, 2)
    assert result.tile_elements == 2 * 8192
    assert result.num_tiles == 3
    assert result.verified is True


def test_every_tile_pays_the_offload_overhead():
    result = offload_tiled(ext_system(), "daxpy", 1024, 4,
                           tile_elements=256)
    # Four tiles of equal size: equal cost each, all above the constant
    # overhead floor.
    assert len(set(result.per_tile_cycles)) == 1
    assert min(result.per_tile_cycles) > 360


def test_untileable_kernels_rejected():
    for kernel in ("vecsum", "dot", "gemv", "stencil3"):
        with pytest.raises(OffloadError, match="not tileable"):
            offload_tiled(ext_system(), kernel, 256, 4)


def test_invalid_tile_size_rejected():
    with pytest.raises(OffloadError):
        offload_tiled(ext_system(), "daxpy", 256, 4, tile_elements=0)


def test_tiled_unlocks_tcdm_exceeding_jobs():
    system = ext_system(num_clusters=2)
    with pytest.raises(OffloadError, match="TCDM"):
        offload_daxpy(system, n=40_000, num_clusters=2)
    result = offload_tiled(ext_system(num_clusters=2), "daxpy", 40_000, 2)
    assert result.verified is True


def test_result_string():
    result = offload_tiled(ext_system(), "memcpy", 512, 2,
                           tile_elements=128)
    text = str(result)
    assert "4 tiles" in text
