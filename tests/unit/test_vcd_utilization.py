"""Unit tests for VCD export and the utilization report."""

import pytest

from repro.analysis.utilization import collect_utilization, utilization_report
from repro.analysis.vcd import _identifier, trace_to_vcd, write_vcd
from repro.core.offload import offload_daxpy
from repro.sim import Simulator, TraceRecorder
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ran_system():
    system = ManticoreSystem(SoCConfig.extended(num_clusters=4))
    offload_daxpy(system, n=256, num_clusters=4)
    return system


# ----------------------------------------------------------------------
# VCD export
# ----------------------------------------------------------------------
def test_identifier_sequence_is_unique_and_printable():
    idents = [_identifier(i) for i in range(500)]
    assert len(set(idents)) == 500
    assert all(33 <= ord(ch) <= 126 for ident in idents for ch in ident)
    assert _identifier(0) == "!"


def test_vcd_structure():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    recorder.record("host", "start")
    sim.schedule(10, lambda arg: recorder.record("host", "stop"))
    sim.run()
    vcd = trace_to_vcd(recorder)
    assert "$timescale 1ns $end" in vcd
    assert "$var wire 1 ! start $end" in vcd
    assert "$enddefinitions $end" in vcd
    assert "#0" in vcd and "#10" in vcd
    # The pulse falls one cycle after it rises.
    assert "#1\n" in vcd and "#11\n" in vcd


def test_vcd_pulse_ordering_on_repeated_labels():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    recorder.record("x", "tick")
    sim.schedule(1, lambda arg: recorder.record("x", "tick"))
    sim.run()
    vcd = trace_to_vcd(recorder)
    # At cycle 1 the fall from the first pulse precedes the new rise.
    block = vcd.split("#1\n", 1)[1].split("#", 1)[0]
    assert block.index("0!") < block.index("1!")


def test_vcd_of_full_offload_covers_all_sources(tmp_path):
    system = ran_system()
    vcd = trace_to_vcd(system.trace)
    assert "$scope module host $end" in vcd
    for index in range(4):
        assert f"$scope module cluster{index} $end" in vcd
    path = tmp_path / "offload.vcd"
    write_vcd(system.trace, str(path))
    assert path.read_text() == vcd


def test_vcd_rejects_empty_trace():
    recorder = TraceRecorder(Simulator())
    with pytest.raises(ValueError):
        trace_to_vcd(recorder)


# ----------------------------------------------------------------------
# Utilization
# ----------------------------------------------------------------------
def test_utilization_lists_active_resources():
    system = ran_system()
    usages = collect_utilization(system)
    names = [usage.name for usage in usages]
    assert "mem.read" in names
    assert "mem.write" in names
    assert "noc.host_port" in names
    for usage in usages:
        assert usage.requests > 0
        assert 0.0 <= usage.utilization <= 1.0


def test_utilization_skips_idle_by_default():
    system = ManticoreSystem(SoCConfig.extended(num_clusters=4))
    assert collect_utilization(system) == []
    everything = collect_utilization(system, include_idle=True)
    assert len(everything) == 4 + 4  # channels, host, amo + 4 cluster ports


def test_utilization_sorted_by_busy_cycles():
    usages = collect_utilization(ran_system())
    busy = [usage.busy_cycles for usage in usages]
    assert busy == sorted(busy, reverse=True)


def test_utilization_report_renders():
    text = utilization_report(ran_system())
    assert "resource utilization" in text
    assert "mem.read" in text
    assert "%" in text


def test_utilization_report_idle_system():
    system = ManticoreSystem(SoCConfig.extended(num_clusters=4))
    assert "(no traffic)" in utilization_report(system)
