"""Unit tests for SoC configuration validation and presets."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.soc.config import SoCConfig


def test_defaults_validate():
    config = SoCConfig()
    assert config.num_clusters == 32
    assert config.cores_per_cluster == 8
    assert not config.multicast
    assert not config.hw_sync


def test_baseline_preset():
    config = SoCConfig.baseline(num_clusters=16)
    assert config.num_clusters == 16
    assert not config.multicast and not config.hw_sync


def test_extended_preset():
    config = SoCConfig.extended()
    assert config.multicast and config.hw_sync


def test_with_features():
    config = SoCConfig.extended().with_features(multicast=True, hw_sync=False)
    assert config.multicast and not config.hw_sync
    # The original is unchanged (frozen dataclass).
    assert SoCConfig.extended().hw_sync


def test_total_cores_counts_dm_cores():
    # The paper's 32-cluster fabric has 288 cores (9 per cluster).
    assert SoCConfig(num_clusters=32, cores_per_cluster=8).total_cores == 288


def test_positive_fields_validated():
    with pytest.raises(ConfigError):
        SoCConfig(num_clusters=0)
    with pytest.raises(ConfigError):
        SoCConfig(cores_per_cluster=0)
    with pytest.raises(ConfigError):
        SoCConfig(tcdm_bytes=0)
    with pytest.raises(ConfigError):
        SoCConfig(mem_read_width_bytes=0)
    with pytest.raises(ConfigError):
        SoCConfig(noc_store_occupancy=0)


def test_non_negative_fields_validated():
    with pytest.raises(ConfigError):
        SoCConfig(host_setup_cycles=-1)
    with pytest.raises(ConfigError):
        SoCConfig(cluster_wake_latency=-1)
    with pytest.raises(ConfigError):
        SoCConfig(syncunit_irq_latency=-1)


def test_fabric_size_limit():
    with pytest.raises(ConfigError):
        SoCConfig(num_clusters=2048)


def test_noc_params_reflect_features():
    assert SoCConfig.extended().noc_params().multicast_enabled
    assert not SoCConfig.baseline().noc_params().multicast_enabled


def test_noc_params_carry_latencies():
    config = SoCConfig(noc_request_latency=3, noc_store_occupancy=5)
    params = config.noc_params()
    assert params.request_latency == 3
    assert params.store_occupancy == 5


def test_describe():
    text = SoCConfig.extended(num_clusters=4).describe()
    assert "4 clusters" in text
    assert "multicast" in text
    assert "baseline" in SoCConfig.baseline().describe()


def test_config_is_frozen():
    config = SoCConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.num_clusters = 5
