"""Unit tests for the top-level offload API."""

import numpy
import pytest

from repro.core.offload import offload, offload_daxpy
from repro.errors import OffloadError
from repro.kernels.registry import kernel_names
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def test_daxpy_functional_result():
    system = ext_system()
    rng = numpy.random.default_rng(7)
    x = rng.normal(size=100)
    y = rng.normal(size=100)
    result = offload(system, "daxpy", 100, 4, scalars={"a": 3.0},
                     inputs={"x": x, "y": y})
    numpy.testing.assert_allclose(result.outputs["y"], 3.0 * x + y,
                                  rtol=1e-12)
    assert result.verified is True


def test_default_scalars_are_one():
    system = ext_system()
    x = numpy.ones(16)
    y = numpy.zeros(16)
    result = offload(system, "daxpy", 16, 2, inputs={"x": x, "y": y})
    numpy.testing.assert_allclose(result.outputs["y"], x)


def test_generated_inputs_are_deterministic_by_seed():
    a = offload_daxpy(ext_system(), n=64, num_clusters=2, seed=42)
    b = offload_daxpy(ext_system(), n=64, num_clusters=2, seed=42)
    numpy.testing.assert_array_equal(a.outputs["y"], b.outputs["y"])
    assert a.runtime_cycles == b.runtime_cycles


def test_runtime_cycles_deterministic():
    runs = {offload_daxpy(ext_system(), n=512, num_clusters=4).runtime_cycles
            for _ in range(3)}
    assert len(runs) == 1


@pytest.mark.parametrize("kernel", kernel_names())
def test_every_kernel_offloads_and_verifies(kernel):
    system = ext_system()
    result = offload(system, kernel, 64, 4)
    assert result.verified is True
    assert result.runtime_cycles > 0


def test_too_many_clusters_rejected():
    with pytest.raises(OffloadError):
        offload_daxpy(ext_system(num_clusters=4), n=64, num_clusters=8)


def test_zero_clusters_rejected():
    with pytest.raises(OffloadError):
        offload_daxpy(ext_system(), n=64, num_clusters=0)


def test_tcdm_capacity_precheck():
    # 64 KiB TCDM: a single-cluster daxpy of 8192 elements needs 128 KiB.
    system = ext_system(tcdm_bytes=64 * 1024)
    with pytest.raises(OffloadError, match="TCDM"):
        offload_daxpy(system, n=8192, num_clusters=1)
    # The same job fits when split across more clusters.
    result = offload_daxpy(ext_system(tcdm_bytes=64 * 1024), n=8192,
                           num_clusters=4)
    assert result.verified is True


def test_wrong_input_length_rejected():
    system = ext_system()
    with pytest.raises(OffloadError, match="elements"):
        offload(system, "daxpy", 64, 2,
                inputs={"x": numpy.zeros(64), "y": numpy.zeros(32)})


def test_missing_input_rejected():
    system = ext_system()
    with pytest.raises(OffloadError, match="missing input"):
        offload(system, "daxpy", 64, 2, inputs={"x": numpy.zeros(64)})


def test_unknown_kernel_rejected():
    from repro.errors import KernelError
    with pytest.raises(KernelError):
        offload(ext_system(), "fft", 64, 2)


def test_bad_scalars_rejected():
    from repro.errors import KernelError
    with pytest.raises(KernelError):
        offload(ext_system(), "daxpy", 64, 2, scalars={"alpha": 1.0})


def test_reduction_kernel_partials():
    system = ext_system()
    x = numpy.arange(40, dtype=float)
    result = offload(system, "vecsum", 40, 4, inputs={"x": x})
    partials = result.outputs["partials"]
    assert partials.shape == (4,)
    assert partials.sum() == pytest.approx(x.sum())


def test_gemv_end_to_end():
    system = ext_system()
    n = 24
    rng = numpy.random.default_rng(3)
    matrix = rng.normal(size=(n, n))
    x = rng.normal(size=n)
    result = offload(system, "gemv", n, 4,
                     inputs={"A": matrix.ravel(), "x": x})
    numpy.testing.assert_allclose(result.outputs["y"], matrix @ x,
                                  rtol=1e-10)


def test_sequential_offloads_reuse_system():
    system = ext_system()
    first = offload_daxpy(system, n=128, num_clusters=2)
    second = offload_daxpy(system, n=128, num_clusters=4)
    third = offload(system, "memcpy", 64, 8)
    assert first.verified and second.verified and third.verified
    assert [c.jobs_completed for c in system.clusters] == [3, 3, 2, 2,
                                                           1, 1, 1, 1]


def test_more_clusters_than_elements():
    result = offload_daxpy(ext_system(), n=3, num_clusters=8)
    assert result.verified is True


def test_result_string():
    result = offload_daxpy(ext_system(), n=64, num_clusters=2)
    text = str(result)
    assert "daxpy" in text and "2 clusters" in text


def test_verify_false_skips_check():
    result = offload_daxpy(ext_system(), n=64, num_clusters=2, verify=False)
    assert result.verified is None


def test_max_cycles_guard():
    with pytest.raises(OffloadError, match="exceeded"):
        offload_daxpy(ext_system(), n=1024, num_clusters=2, max_cycles=10)


def test_baseline_variant_on_extended_hardware_matches_baseline_soc():
    """Software-selected baseline == baseline hardware, cycle for cycle."""
    on_ext = offload_daxpy(ext_system(num_clusters=8), n=512,
                           num_clusters=4, variant="baseline")
    on_base = offload_daxpy(
        ManticoreSystem(SoCConfig.baseline(num_clusters=8)), n=512,
        num_clusters=4)
    assert on_ext.runtime_cycles == on_base.runtime_cycles
