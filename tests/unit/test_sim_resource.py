"""Unit tests for SerialResource and ThroughputChannel timing."""

import pytest

from repro.errors import SimulationError
from repro.sim import SerialResource, Simulator, ThroughputChannel


def test_single_request_completes_after_service_time():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    done = res.request(10)
    sim.run(until=done)
    assert sim.now == 10
    assert done.value == 10


def test_back_to_back_requests_serialize():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    first = res.request(10)
    second = res.request(10)
    sim.run(until=second)
    assert first.value == 10
    assert second.value == 20


def test_request_after_idle_starts_immediately():
    sim = Simulator()
    res = SerialResource(sim, "bus")

    def body():
        yield from res.acquire(5)   # finishes at 5
        yield 100                   # idle gap
        finish = yield from res.acquire(5)
        return finish

    proc = sim.spawn(body())
    sim.run()
    assert proc.value == 110


def test_zero_cycle_request_completes_now():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    done = res.request(0)
    sim.run(until=done)
    assert sim.now == 0


def test_negative_service_time_rejected():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    with pytest.raises(SimulationError):
        res.request(-1)


def test_fifo_order_among_same_cycle_requesters():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    finishes = []

    def requester(tag):
        finish = yield from res.acquire(4)
        finishes.append((tag, finish))

    for tag in ["a", "b", "c"]:
        sim.spawn(requester(tag))
    sim.run()
    assert finishes == [("a", 4), ("b", 8), ("c", 12)]


def test_busy_cycles_and_requests_accounting():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    res.request(3)
    res.request(7)
    sim.run()
    assert res.busy_cycles == 10
    assert res.requests == 2


def test_utilization():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    assert res.utilization() == 0.0
    res.request(10)
    sim.run()
    sim.schedule(10, lambda arg: None)
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_channel_cycles_for_exact_and_partial_beats():
    sim = Simulator()
    chan = ThroughputChannel(sim, width_bytes=64, name="hbm")
    assert chan.cycles_for(0) == 0
    assert chan.cycles_for(1) == 1
    assert chan.cycles_for(64) == 1
    assert chan.cycles_for(65) == 2
    assert chan.cycles_for(16 * 1024) == 256  # the paper's N/4 for N=1024


def test_channel_negative_bytes_rejected():
    sim = Simulator()
    chan = ThroughputChannel(sim, width_bytes=64)
    with pytest.raises(SimulationError):
        chan.cycles_for(-8)


def test_channel_width_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ThroughputChannel(sim, width_bytes=0)


def test_channel_transfers_contend():
    sim = Simulator()
    chan = ThroughputChannel(sim, width_bytes=64, name="hbm")
    # Two clusters each moving 512 bytes at the same time: aggregate
    # service is serialized, 8 + 8 cycles.
    first = chan.transfer(512)
    second = chan.transfer(512)
    sim.run(until=second)
    assert first.value == 8
    assert second.value == 16
    assert chan.bytes_moved == 1024


def test_next_free_tracks_clock_when_idle():
    sim = Simulator()
    res = SerialResource(sim, "bus")
    res.request(5)
    sim.run()
    sim.schedule(20, lambda arg: None)
    sim.run()
    assert res.next_free == sim.now
