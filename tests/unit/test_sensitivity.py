"""Unit tests for the parameter-sensitivity tool."""

import pytest

from repro.analysis.sensitivity import sensitivity
from repro.errors import ConfigError


def test_memory_width_moves_only_the_memory_coefficient():
    result = sensitivity("mem_read_width_bytes", [32, 64, 128],
                         n_values=(256, 1024), m_values=(1, 4, 16),
                         num_clusters=16)
    mem = result.coefficient("mem_coeff")
    # Halving the width roughly doubles the *inbound* share of the
    # memory coefficient (the write channel stays at 64 B/cycle).
    assert mem[32] > 1.8 * mem[128]
    compute = result.coefficient("compute_coeff")
    values = list(compute.values())
    assert max(values) - min(values) < 0.1 * max(values)
    assert result.most_sensitive_coefficient() == "mem_coeff"


def test_dispatch_occupancy_moves_the_dispatch_coefficient():
    result = sensitivity("noc_store_occupancy", [4, 8, 16],
                         design="baseline",
                         n_values=(256, 1024), m_values=(1, 4, 16),
                         num_clusters=16)
    dispatch = result.coefficient("dispatch_coeff")
    assert dispatch[16] > dispatch[8] > dispatch[4]
    # Slope tracks occupancy + the 2-cycle address calculation.
    assert dispatch[8] == pytest.approx(10.0, abs=1.5)


def test_host_setup_moves_only_the_constant():
    result = sensitivity("host_setup_cycles", [58, 158],
                         n_values=(256, 1024), m_values=(1, 4),
                         num_clusters=8)
    t0 = result.coefficient("t0")
    assert t0[158] - t0[58] == pytest.approx(100, abs=2)
    assert result.most_sensitive_coefficient() == "t0"


def test_render_includes_parameter_name():
    result = sensitivity("host_setup_cycles", [58],
                         n_values=(256, 512), m_values=(1, 4),
                         num_clusters=8)
    text = result.render()
    assert "host_setup_cycles" in text
    assert "most sensitive" in text


def test_validation():
    with pytest.raises(ConfigError, match="no field"):
        sensitivity("warp_factor", [1])
    with pytest.raises(ConfigError, match="at least one"):
        sensitivity("host_setup_cycles", [])
    with pytest.raises(ConfigError, match="unknown design"):
        sensitivity("host_setup_cycles", [58], design="quantum")
