"""Unit tests for measurement sweeps."""

import pytest

from repro.core.sweep import SweepPoint, SweepResult, sweep
from repro.errors import OffloadError
from repro.soc.config import SoCConfig


CFG = SoCConfig.extended(num_clusters=8)


def small_sweep(**kwargs):
    kwargs.setdefault("n_values", [64, 128])
    kwargs.setdefault("m_values", [1, 4])
    return sweep(CFG, "daxpy", **kwargs)


def test_sweep_covers_the_grid():
    result = small_sweep()
    assert len(result) == 4
    assert result.n_values() == [64, 128]
    assert result.m_values() == [1, 4]
    assert set(result.runtime_grid()) == {(1, 64), (4, 64), (1, 128),
                                          (4, 128)}


def test_sweep_points_carry_phases():
    result = small_sweep()
    for point in result:
        assert point.variant == "extended"
        assert point.phases["total"] == point.runtime_cycles


def test_sweep_progress_callback():
    seen = []
    small_sweep(progress=seen.append)
    assert len(seen) == 4
    assert all(isinstance(p, SweepPoint) for p in seen)


def test_sweep_validation():
    with pytest.raises(OffloadError):
        sweep(CFG, "daxpy", [], [1])
    with pytest.raises(OffloadError):
        sweep(CFG, "daxpy", [64], [])
    with pytest.raises(OffloadError):
        sweep(CFG, "daxpy", [64], [16])  # wider than the 8-cluster fabric


def test_runtimes_by_m():
    result = small_sweep()
    by_m = result.runtimes_by_m(64)
    assert sorted(by_m) == [1, 4]
    assert by_m[4] < by_m[1]


def test_runtime_lookup():
    result = small_sweep()
    assert result.runtime(64, 4) == result.runtimes_by_m(64)[4]
    with pytest.raises(OffloadError):
        result.runtime(999, 4)


def test_filter():
    result = small_sweep()
    only = result.filter(n=64, num_clusters=4)
    assert len(only) == 1
    assert result.filter(kernel_name="gemv").points == ()
    assert len(result.filter(variant="extended")) == 4


def test_duplicate_grid_points_detected():
    result = small_sweep()
    doubled = result.merged(result)
    with pytest.raises(OffloadError):
        doubled.runtime_grid()
    with pytest.raises(OffloadError):
        doubled.runtimes_by_m(64)
    with pytest.raises(OffloadError):
        doubled.runtime(64, 4)


def test_triples_for_fitting():
    result = small_sweep()
    triples = result.triples()
    assert len(triples) == 4
    m, n, t = triples[0]
    assert isinstance(t, float)
    assert result.runtime(n, m) == t


def test_speedup_grid_between_variants():
    ext = small_sweep()
    base = sweep(SoCConfig.baseline(num_clusters=8), "daxpy",
                 [64, 128], [1, 4])
    grid = ext.speedup_grid(base)
    assert set(grid) == {(1, 64), (4, 64), (1, 128), (4, 128)}
    assert all(value > 0 for value in grid.values())


def test_speedup_grid_requires_shared_points():
    ext = small_sweep()
    other = sweep(CFG, "daxpy", [32], [2])
    with pytest.raises(OffloadError):
        ext.speedup_grid(other)


def test_merged_concatenates():
    a = small_sweep()
    b = sweep(CFG, "memcpy", [64], [2])
    merged = a.merged(b)
    assert len(merged) == 5
    assert len(merged.filter(kernel_name="memcpy")) == 1
