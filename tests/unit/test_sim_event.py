"""Unit tests for events and wait combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Simulator


def test_event_starts_untriggered():
    sim = Simulator()
    event = sim.event("e")
    assert not event.triggered


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_trigger_sets_value():
    sim = Simulator()
    event = sim.event()
    event.trigger(123)
    assert event.triggered
    assert event.value == 123


def test_double_trigger_raises():
    sim = Simulator()
    event = sim.event()
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_trigger_returns_self():
    sim = Simulator()
    event = sim.event()
    assert event.trigger("v") is event


def test_callback_runs_through_queue_not_synchronously():
    sim = Simulator()
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.trigger("x")
    assert seen == []  # not yet: must go through the event queue
    sim.run()
    assert seen == ["x"]


def test_callback_added_after_trigger_still_runs():
    sim = Simulator()
    event = sim.event()
    event.trigger("late")
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["late"]


def test_callbacks_run_in_registration_order():
    sim = Simulator()
    event = sim.event()
    seen = []
    for i in range(5):
        event.add_callback(lambda e, i=i: seen.append(i))
    event.trigger()
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_all_of_waits_for_every_child():
    sim = Simulator()
    events = [sim.event(f"e{i}") for i in range(3)]
    combo = AllOf(sim, events)
    sim.schedule(1, lambda arg: events[0].trigger("a"))
    sim.schedule(5, lambda arg: events[2].trigger("c"))
    sim.schedule(9, lambda arg: events[1].trigger("b"))
    sim.run(until=combo)
    assert sim.now == 9
    assert combo.value == ["a", "b", "c"]  # child order, not firing order


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    combo = AllOf(sim, [])
    sim.run(until=combo)
    assert sim.now == 0


def test_any_of_fires_on_first_child():
    sim = Simulator()
    events = [sim.event(f"e{i}") for i in range(3)]
    combo = AnyOf(sim, events)
    sim.schedule(4, lambda arg: events[1].trigger("winner"))
    sim.schedule(8, lambda arg: events[0].trigger("loser"))
    sim.run(until=combo)
    assert sim.now == 4
    assert combo.value == (1, "winner")


def test_any_of_with_already_triggered_child():
    sim = Simulator()
    ready = sim.event()
    ready.trigger("now")
    pending = sim.event()
    combo = AnyOf(sim, [pending, ready])
    sim.run(until=combo)
    assert combo.value == (1, "now")


def test_all_of_with_already_triggered_children():
    sim = Simulator()
    events = [sim.event() for _ in range(2)]
    for i, event in enumerate(events):
        event.trigger(i)
    combo = AllOf(sim, events)
    sim.run(until=combo)
    assert combo.value == [0, 1]


def test_combinators_via_simulator_helpers():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    all_combo = sim.all_of([a, b])
    any_combo = sim.any_of([a, b])
    sim.schedule(2, lambda arg: a.trigger(1))
    sim.schedule(6, lambda arg: b.trigger(2))
    sim.run()
    assert any_combo.value == (0, 1)
    assert all_combo.value == [1, 2]
