"""Unit tests for the trace recorder."""

import pytest

from repro.sim import Simulator, TraceRecorder


def make_recorder():
    sim = Simulator()
    return sim, TraceRecorder(sim)


def test_records_are_timestamped():
    sim, rec = make_recorder()
    rec.record("host", "start")
    sim.schedule(10, lambda arg: rec.record("host", "end"))
    sim.run()
    assert [(r.cycle, r.label) for r in rec] == [(0, "start"), (10, "end")]


def test_disabled_recorder_stays_empty():
    sim = Simulator()
    rec = TraceRecorder(sim, enabled=False)
    rec.record("host", "start")
    assert len(rec) == 0


def test_filter_by_source_and_label():
    sim, rec = make_recorder()
    rec.record("host", "store")
    rec.record("cluster0", "store")
    rec.record("host", "load")
    assert len(rec.filter(source="host")) == 2
    assert len(rec.filter(label="store")) == 2
    assert len(rec.filter(source="host", label="store")) == 1


def test_first_and_last():
    sim, rec = make_recorder()
    rec.record("a", "tick", 1)
    sim.schedule(5, lambda arg: rec.record("b", "tick", 2))
    sim.run()
    assert rec.first("tick").data == 1
    assert rec.last("tick").data == 2
    assert rec.first("missing") is None
    assert rec.last("missing") is None


def test_cycle_of_and_span():
    sim, rec = make_recorder()
    rec.record("host", "dispatch_start")
    sim.schedule(37, lambda arg: rec.record("host", "dispatch_done"))
    sim.run()
    assert rec.cycle_of("dispatch_start") == 0
    assert rec.span("dispatch_start", "dispatch_done") == 37


def test_cycle_of_missing_label_raises():
    _sim, rec = make_recorder()
    with pytest.raises(KeyError):
        rec.cycle_of("never")


def test_labels_in_first_appearance_order():
    _sim, rec = make_recorder()
    rec.record("x", "b")
    rec.record("x", "a")
    rec.record("x", "b")
    assert rec.labels() == ["b", "a"]


def test_clear():
    _sim, rec = make_recorder()
    rec.record("x", "a")
    rec.clear()
    assert len(rec) == 0
