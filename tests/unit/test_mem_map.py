"""Unit tests for the address map and MMIO routing."""

import pytest

from repro.errors import MemoryError_
from repro.mem import AddressMap, MainMemory, MmioDevice, Region


class CountingDevice(MmioDevice):
    """Test device: +0 readable counter, +8 write-to-increment."""

    def __init__(self):
        self.count = 0

    def read_register(self, offset):
        if offset == 0:
            return self.count
        return super().read_register(offset)

    def write_register(self, offset, value):
        if offset == 8:
            self.count += value
            return
        super().write_register(offset, value)


def make_map():
    amap = AddressMap()
    mem = MainMemory(size_bytes=4096, base=0x8000_0000)
    amap.add(Region("dram", mem.base, mem.size_bytes, mem))
    device = CountingDevice()
    amap.add_device("counter", 0x0200_0000, 0x1000, device)
    return amap, mem, device


def test_region_lookup_by_address():
    amap, mem, _dev = make_map()
    assert amap.region_at(0x8000_0000).name == "dram"
    assert amap.region_at(0x0200_0008).name == "counter"


def test_unmapped_address_raises():
    amap, _mem, _dev = make_map()
    with pytest.raises(MemoryError_):
        amap.region_at(0x4000_0000)


def test_region_lookup_by_name():
    amap, _mem, _dev = make_map()
    assert amap.region_named("dram").base == 0x8000_0000
    with pytest.raises(KeyError):
        amap.region_named("nope")


def test_overlapping_regions_rejected():
    amap, _mem, _dev = make_map()
    other = MainMemory(size_bytes=64, base=0x8000_0100)
    with pytest.raises(MemoryError_):
        amap.add(Region("overlap", other.base, other.size_bytes, other))


def test_duplicate_names_rejected():
    amap, _mem, _dev = make_map()
    other = MainMemory(size_bytes=64, base=0x9000_0000)
    with pytest.raises(MemoryError_):
        amap.add(Region("dram", other.base, other.size_bytes, other))


def test_invalid_region_shapes_rejected():
    mem = MainMemory(size_bytes=64, base=0)
    with pytest.raises(MemoryError_):
        Region("bad", 0, 0, mem)
    with pytest.raises(MemoryError_):
        Region("bad", -8, 64, mem)


def test_routed_word_access_to_memory():
    amap, mem, _dev = make_map()
    amap.write_word(0x8000_0010, 77)
    assert mem.read_word(0x8000_0010) == 77
    assert amap.read_word(0x8000_0010) == 77


def test_routed_mmio_write_triggers_side_effect():
    amap, _mem, dev = make_map()
    amap.write_word(0x0200_0008, 3)
    amap.write_word(0x0200_0008, 2)
    assert dev.count == 5
    assert amap.read_word(0x0200_0000) == 5


def test_mmio_unknown_register_raises():
    amap, _mem, _dev = make_map()
    with pytest.raises(MemoryError_):
        amap.read_word(0x0200_0010)
    with pytest.raises(MemoryError_):
        amap.write_word(0x0200_0000, 1)  # counter register is read-only


def test_amo_add_returns_old_value():
    amap, mem, _dev = make_map()
    mem.write_word(0x8000_0020, 10)
    old = amap.amo_add(0x8000_0020, 5)
    assert old == 10
    assert mem.read_word(0x8000_0020) == 15


def test_regions_sorted_by_base():
    amap, _mem, _dev = make_map()
    bases = [r.base for r in amap.regions]
    assert bases == sorted(bases)
    assert len(amap) == 2


def test_base_mmio_device_rejects_everything():
    device = MmioDevice()
    with pytest.raises(MemoryError_):
        device.read_register(0)
    with pytest.raises(MemoryError_):
        device.write_register(0, 1)
