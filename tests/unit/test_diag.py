"""Unit tests for the simulation-integrity layer (:mod:`repro.sim.diag`)."""

import pytest

from repro import flags
from repro.errors import CycleLimitError, DeadlockError, ProtocolError
from repro.sim import (
    AccessAuditor,
    AllOf,
    AnyOf,
    QuiescenceAudit,
    Simulator,
    TraceRecorder,
)
from repro.sim.diag import build_report, classify_wait


# ----------------------------------------------------------------------
# Wait classification
# ----------------------------------------------------------------------
def test_classify_wait_by_naming_convention():
    sim = Simulator()
    cases = {
        "mailbox3.ring": ("mailbox", "mailbox3.ring"),
        "irq.syncunit": ("irq", "syncunit"),
        "fabric_barrier.g0.gen1": ("barrier", "fabric_barrier.g0.gen1"),
        "cluster0.barrier.gen2": ("barrier", "cluster0.barrier.gen2"),
        "mem.read-done@120": ("resource", "mem.read-done@120"),
        "timer@55": ("timer", "timer@55"),
        "something.else": ("event", "something.else"),
    }
    for name, expected in cases.items():
        assert classify_wait(sim.event(name=name)) == expected, name


def test_classify_wait_structural_kinds():
    sim = Simulator()

    def body():
        yield 1

    process = sim.spawn(body(), name="worker")
    assert classify_wait(process) == ("join", "process 'worker'")
    kind, detail = classify_wait(
        AllOf(sim, [sim.event(name="a"), sim.event(name="b")]))
    assert kind == "all-of"
    assert "a" in detail and "b" in detail
    kind, _ = classify_wait(AnyOf(sim, [sim.event(name="a")]))
    assert kind == "any-of"
    assert classify_wait(7) == ("delay", "7 cycles")
    assert classify_wait(object())[0] == "unknown"
    sim.run()


# ----------------------------------------------------------------------
# Deadlock / cycle-limit reports
# ----------------------------------------------------------------------
def test_deadlock_report_names_blocked_processes():
    sim = Simulator()
    never = sim.event(name="mailbox0.ring")
    goal = sim.event(name="goal")

    def parked():
        yield never

    sim.spawn(parked(), name="dm-core")
    with pytest.raises(DeadlockError) as info:
        sim.run(until=goal)
    report = info.value.report
    assert report.reason == "deadlock"
    assert report.awaited == "goal"
    entry = report.blocked_named("dm-core")
    assert entry.wait_kind == "mailbox"
    assert entry.wait_detail == "mailbox0.ring"
    assert "dm-core" in str(info.value)


def test_cycle_limit_report_carries_trace_tail():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    goal = sim.event(name="goal")

    def spinner():
        while True:
            recorder.record("spinner", "tick")
            yield 10

    sim.spawn(spinner(), name="spinner")
    with pytest.raises(CycleLimitError) as info:
        sim.run(until=goal, max_cycles=100)
    report = info.value.report
    assert report.reason == "cycle-limit"
    assert report.cycle >= 100
    assert report.trace_tail
    assert report.trace_tail[-1].label == "tick"
    assert "tick" in report.describe()


def test_report_excludes_delayed_and_finished_processes():
    sim = Simulator()

    def quick():
        yield 1

    def parked():
        yield sim.event(name="never")

    sim.spawn(quick(), name="quick")
    sim.spawn(parked(), name="parked")
    sim.run()
    report = build_report(sim, reason="deadlock")
    assert [b.name for b in report.blocked] == ["parked"]
    with pytest.raises(KeyError):
        report.blocked_named("quick")


def test_joined_process_reports_as_join_wait():
    sim = Simulator()

    def stuck():
        yield sim.event(name="never")

    def joiner(target):
        yield target

    target = sim.spawn(stuck(), name="stuck")
    sim.spawn(joiner(target), name="joiner")
    sim.run()
    report = build_report(sim, reason="deadlock")
    assert report.blocked_named("joiner").wait_kind == "join"
    assert report.blocked_named("stuck").wait_kind == "event"


# ----------------------------------------------------------------------
# Quiescence audit collector
# ----------------------------------------------------------------------
def test_quiescence_audit_collects_mismatches_only():
    audit = QuiescenceAudit()
    audit.expect("sim", "pending callbacks", 0, 0)
    audit.expect("syncunit", "armed", False, True)
    audit.expect("irq", "pending lines", (), ("syncunit",))
    report = audit.report()
    assert not report.ok
    assert len(report.violations) == 2
    assert report.violations[0].component == "syncunit"
    assert "expected False, found True" in report.describe()


def test_quiescence_report_ok_when_clean():
    report = QuiescenceAudit().report()
    assert report.ok
    assert report.describe() == "system is quiescent"


# ----------------------------------------------------------------------
# MMIO access auditor
# ----------------------------------------------------------------------
def test_auditor_records_without_raising_by_default(monkeypatch):
    monkeypatch.delenv(flags.STRICT_ENV, raising=False)
    auditor = AccessAuditor()
    auditor.report(device="Mailbox", kind="lost-doorbell", offset=0,
                   value=42, detail="nobody waiting")
    auditor.report(device="SyncUnit", kind="stale-credit", offset=0x10)
    assert auditor.count() == 2
    assert auditor.count("stale-credit") == 1
    assert "lost-doorbell" in auditor.violations[0].describe()
    auditor.clear()
    assert auditor.count() == 0


def test_auditor_instance_strict_mode_raises():
    auditor = AccessAuditor(strict=True)
    with pytest.raises(ProtocolError, match="lost-doorbell"):
        auditor.report(device="Mailbox", kind="lost-doorbell", offset=0)
    # The violation is still recorded for the post-mortem.
    assert auditor.count("lost-doorbell") == 1


def test_auditor_env_strict_mode(monkeypatch):
    monkeypatch.setenv(flags.STRICT_ENV, "1")
    auditor = AccessAuditor()
    assert auditor.strict
    with pytest.raises(ProtocolError):
        auditor.report(device="SyncUnit", kind="stale-credit", offset=0x10)


def test_auditor_never_raises_on_fatal_records(monkeypatch):
    # Fatal anomalies already raise at the device; the auditor must not
    # double-raise (which would change the exception type under strict).
    monkeypatch.setenv(flags.STRICT_ENV, "1")
    auditor = AccessAuditor()
    auditor.report(device="SyncUnit", kind="unknown-offset-read",
                   offset=0x100, fatal=True)
    assert auditor.count() == 1


def test_auditor_stamps_cycles_from_its_simulator(monkeypatch):
    monkeypatch.delenv(flags.STRICT_ENV, raising=False)
    sim = Simulator()
    auditor = AccessAuditor(sim)

    def body():
        yield 42
        auditor.report(device="Mailbox", kind="lost-doorbell", offset=0)

    sim.spawn(body(), name="p")
    sim.run()
    assert auditor.violations[0].cycle == 42
