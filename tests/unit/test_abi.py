"""Unit tests for the job-descriptor ABI."""

import pytest

from repro import abi
from repro.errors import OffloadError
from repro.kernels.registry import kernel_names


def make_descriptor(**overrides):
    fields = dict(
        kernel_name="daxpy", n=1024, num_clusters=8,
        sync_mode=abi.SYNC_MODE_SYNCUNIT, completion_addr=0x0200_0010,
        scalars={"a": 2.5},
        input_addrs={"x": 0x8000_0000, "y": 0x8000_2000},
        output_addrs={"y": 0x8000_2000})
    fields.update(overrides)
    return abi.JobDescriptor(**fields)


def test_kernel_id_roundtrip_for_every_kernel():
    for name in kernel_names():
        assert abi.kernel_from_id(abi.kernel_id(name)).name == name


def test_kernel_id_unknown_kernel():
    with pytest.raises(OffloadError):
        abi.kernel_id("warp_drive")


def test_kernel_from_invalid_id():
    with pytest.raises(OffloadError):
        abi.kernel_from_id(-1)
    with pytest.raises(OffloadError):
        abi.kernel_from_id(10_000)


def test_float_bits_roundtrip():
    for value in [0.0, 1.0, -2.5, 3.141592653589793, 1e300, -1e-300]:
        assert abi.bits_to_float(abi.float_to_bits(value)) == value


def test_encode_decode_roundtrip():
    desc = make_descriptor()
    words = abi.encode_descriptor(desc)
    assert len(words) == desc.words
    decoded = abi.decode_descriptor(words)
    assert decoded == desc


def test_encode_decode_roundtrip_multi_scalar_kernel():
    desc = make_descriptor(kernel_name="axpby",
                           scalars={"a": 1.5, "b": -0.25})
    assert abi.decode_descriptor(abi.encode_descriptor(desc)) == desc


def test_decode_tolerates_trailing_padding():
    desc = make_descriptor()
    words = abi.encode_descriptor(desc) + [0, 0, 0]
    assert abi.decode_descriptor(words) == desc


def test_decode_truncated_header():
    with pytest.raises(OffloadError):
        abi.decode_descriptor([0, 1, 2])


def test_decode_truncated_body():
    words = abi.encode_descriptor(make_descriptor())
    with pytest.raises(OffloadError):
        abi.decode_descriptor(words[:-1])


def test_decode_inconsistent_scalar_count():
    words = abi.encode_descriptor(make_descriptor())
    words[7] = 3  # daxpy has exactly one scalar
    with pytest.raises(OffloadError):
        abi.decode_descriptor(words)


def test_descriptor_validation():
    with pytest.raises(OffloadError):
        make_descriptor(n=0)
    with pytest.raises(OffloadError):
        make_descriptor(num_clusters=0)
    with pytest.raises(OffloadError):
        make_descriptor(sync_mode=7)
    with pytest.raises(OffloadError):
        make_descriptor(scalars={})
    with pytest.raises(OffloadError):
        make_descriptor(scalars={"a": 1.0, "zz": 2.0})
    with pytest.raises(OffloadError):
        make_descriptor(input_addrs={"x": 0})
    with pytest.raises(OffloadError):
        make_descriptor(output_addrs={"nope": 0})


def test_descriptor_words_matches_layout():
    desc = make_descriptor()
    # daxpy: 8 header + 1 scalar + 2 inputs + 1 output = 12
    assert desc.words == 12
    assert abi.descriptor_words(desc.kernel) == 12


def test_sync_mode_constants_are_distinct():
    assert abi.SYNC_MODE_AMO != abi.SYNC_MODE_SYNCUNIT


def test_exec_mode_roundtrip_and_validation():
    desc = make_descriptor(exec_mode=abi.EXEC_MODE_DOUBLE_BUFFERED)
    assert abi.decode_descriptor(abi.encode_descriptor(desc)) == desc
    with pytest.raises(OffloadError):
        make_descriptor(exec_mode=9)


def test_first_cluster_roundtrip_and_validation():
    desc = make_descriptor(first_cluster=16)
    decoded = abi.decode_descriptor(abi.encode_descriptor(desc))
    assert decoded.first_cluster == 16
    with pytest.raises(OffloadError):
        make_descriptor(first_cluster=-1)


def test_first_cluster_defaults_to_zero():
    assert make_descriptor().first_cluster == 0
