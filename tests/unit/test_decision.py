"""Unit tests for the offload decision solver (Eq. 3 and extensions)."""

import math

import pytest

from repro.core.decision import (
    EnergyModel,
    HostExecutionModel,
    OffloadDecision,
    decide_offload,
    min_clusters_for_deadline,
)
from repro.core.model import OffloadModel, PAPER_DAXPY_MODEL
from repro.errors import DecisionError


def paper_eq3(n, t_max):
    """The paper's Eq. 3, verbatim."""
    return math.ceil(2.6 * n / (8 * (t_max - 367 - n / 4)))


@pytest.mark.parametrize("n,t_max", [
    (1024, 700.0), (1024, 800.0), (1024, 1000.0),
    (512, 550.0), (256, 450.0), (768, 650.0),
])
def test_matches_paper_eq3_closed_form(n, t_max):
    got = min_clusters_for_deadline(PAPER_DAXPY_MODEL, n, t_max)
    assert got == max(1, paper_eq3(n, t_max))


def test_minimality_property():
    model = PAPER_DAXPY_MODEL
    for t_max in (650.0, 700.0, 900.0, 1100.0):
        m_min = min_clusters_for_deadline(model, 1024, t_max)
        assert model.predict(m_min, 1024) <= t_max
        if m_min > 1:
            assert model.predict(m_min - 1, 1024) > t_max


def test_loose_deadline_needs_one_cluster():
    assert min_clusters_for_deadline(PAPER_DAXPY_MODEL, 1024, 10_000.0) == 1


def test_deadline_below_serial_floor_is_infeasible():
    # Serial floor at N=1024 is 623 cycles; 600 can never be met.
    with pytest.raises(DecisionError, match="serial floor"):
        min_clusters_for_deadline(PAPER_DAXPY_MODEL, 1024, 600.0)


def test_deadline_needing_more_than_fabric():
    # Slightly above the floor: requires enormous M.
    with pytest.raises(DecisionError, match="more than the fabric"):
        min_clusters_for_deadline(PAPER_DAXPY_MODEL, 1024, 624.0,
                                  max_clusters=32)


def test_invalid_arguments():
    with pytest.raises(DecisionError):
        min_clusters_for_deadline(PAPER_DAXPY_MODEL, 1024, 700.0,
                                  max_clusters=0)
    with pytest.raises(DecisionError):
        min_clusters_for_deadline(PAPER_DAXPY_MODEL, 1024, -5.0)


def test_deadline_exactly_at_serial_floor_is_infeasible():
    # All coefficients are binary fractions, so the serial floor
    # 400 + 0.25*1024 = 656.0 is exact: a deadline *equal* to it leaves
    # zero budget for the parallel term and can never be met.
    model = OffloadModel(t0=400, mem_coeff=0.25, compute_coeff=0.25)
    with pytest.raises(DecisionError, match="serial floor"):
        min_clusters_for_deadline(model, 1024, 656.0)


def test_deadline_exactly_on_a_cluster_count_boundary():
    # predict(8, 1024) = 400 + 256 + 256/8 = 688.0 exactly (binary
    # fractions): the deadline equals the M=8 runtime, so Eq. 3 must
    # return 8 — neither 9 (ceil rounding up across the boundary) nor 7.
    model = OffloadModel(t0=400, mem_coeff=0.25, compute_coeff=0.25)
    assert model.predict(8, 1024) == 688.0
    assert min_clusters_for_deadline(model, 1024, 688.0) == 8
    assert model.predict(7, 1024) > 688.0


def test_dispatch_search_exact_boundaries():
    # predict(m, 1024) = 356 + 8m + 512/m: 484.0 at the optimum m=8,
    # 516.0 at both m=4 and m=16 (exact floats).  The minimum feasible
    # width is the answer even when wider widths are feasible too.
    model = OffloadModel(t0=100, mem_coeff=0.25, compute_coeff=0.5,
                         dispatch_coeff=8.0)
    assert min_clusters_for_deadline(model, 1024, 484.0) == 8
    assert min_clusters_for_deadline(model, 1024, 516.0) == 4


def test_search_path_with_dispatch_term():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325,
                         dispatch_coeff=11.0)
    m_min = min_clusters_for_deadline(model, 1024, 800.0)
    assert model.predict(m_min, 1024) <= 800.0
    if m_min > 1:
        assert model.predict(m_min - 1, 1024) > 800.0


def test_search_path_infeasible_reports_best():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325,
                         dispatch_coeff=11.0)
    with pytest.raises(DecisionError, match="best achievable"):
        min_clusters_for_deadline(model, 1024, 700.0)


# ----------------------------------------------------------------------
# Host-vs-accelerator decision
# ----------------------------------------------------------------------
def test_host_model_prediction():
    host = HostExecutionModel(cycles_per_element=3.0, setup_cycles=10.0)
    assert host.predict(100) == pytest.approx(310.0)
    from repro.errors import ModelError
    with pytest.raises(ModelError):
        host.predict(-1)


def test_small_jobs_stay_on_host():
    decision = decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(), n=32)
    assert not decision.offload
    assert decision.num_clusters == 0
    # Host: 10 + 96 = 106 cycles, far below the ~400-cycle offload floor.
    assert decision.predicted_cycles == pytest.approx(106.0)


def test_large_jobs_offload():
    decision = decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(),
                              n=4096)
    assert decision.offload
    assert decision.num_clusters >= 1
    assert decision.speedup_vs_host > 1.0


def test_runtime_objective_picks_global_minimum():
    decision = decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(),
                              n=4096, max_clusters=32)
    # With no dispatch term the offload optimum is the full fabric.
    assert decision.num_clusters == 32


def test_deadline_filters_options():
    # A deadline only wide offloads can meet.
    decision = decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(),
                              n=1024, t_max=700.0)
    assert decision.offload
    assert decision.num_clusters >= 6


def test_impossible_deadline_raises():
    with pytest.raises(DecisionError):
        decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(), n=1024,
                       t_max=100.0)


def test_energy_objective_prefers_narrower_offload():
    energy = EnergyModel(host_active_power=300.0, host_idle_power=30.0,
                         cluster_power=25.0)
    runtime_choice = decide_offload(
        PAPER_DAXPY_MODEL, HostExecutionModel(), n=4096, max_clusters=32)
    energy_choice = decide_offload(
        PAPER_DAXPY_MODEL, HostExecutionModel(), n=4096, max_clusters=32,
        energy_model=energy, objective="energy")
    assert energy_choice.num_clusters <= runtime_choice.num_clusters
    assert energy_choice.predicted_energy is not None


def test_energy_objective_requires_model():
    with pytest.raises(DecisionError):
        decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(), n=64,
                       objective="energy")


def test_unknown_objective():
    with pytest.raises(DecisionError):
        decide_offload(PAPER_DAXPY_MODEL, HostExecutionModel(), n=64,
                       objective="latency")


def test_energy_accounting():
    energy = EnergyModel(host_active_power=2.0, host_idle_power=1.0,
                         cluster_power=0.5)
    host = HostExecutionModel(cycles_per_element=1.0, setup_cycles=0.0)
    assert energy.host_energy(host, 100) == pytest.approx(200.0)
    model = OffloadModel(t0=0, mem_coeff=0, compute_coeff=1.0)
    # t(2, 100) = 50; power = 1 + 2*0.5 = 2 -> 100.
    assert energy.offload_energy(model, 2, 100) == pytest.approx(100.0)


def test_decision_dataclass_speedup():
    decision = OffloadDecision(offload=True, num_clusters=4,
                               predicted_cycles=500.0, host_cycles=1000.0)
    assert decision.speedup_vs_host == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Fabric selection: choose (class, M) under a deadline and budget
# ----------------------------------------------------------------------

def _fabric_options():
    from repro.core.decision import FabricOption
    # slow-but-cheap class vs fast-but-expensive class; curves cross
    slow = OffloadModel(t0=100, mem_coeff=0.25, compute_coeff=2.0,
                        label="slow")
    fast = OffloadModel(t0=600, mem_coeff=0.25, compute_coeff=0.5,
                        label="fast")
    return [FabricOption(tile_class="slow", model=slow, max_clusters=8,
                         tile_area_mm2=1.0, tile_power=25.0),
            FabricOption(tile_class="fast", model=fast, max_clusters=8,
                         tile_area_mm2=4.0, tile_power=60.0)]


def test_choose_fabric_prefers_cheap_class_when_it_meets_deadline():
    from repro.core.decision import choose_fabric
    decision = choose_fabric(_fabric_options(), n=256, t_max=500.0,
                             objective="area")
    assert decision.tile_class == "slow"
    assert decision.cost == decision.num_clusters * 1.0
    assert decision.predicted_cycles <= 500.0
    assert "slow" in decision.outcomes and "fast" in decision.outcomes


def test_choose_fabric_switches_class_when_deadline_tightens():
    from repro.core.decision import choose_fabric
    options = _fabric_options()
    # At n=8192 the slow class needs > 8 clusters to hit 3500 cycles;
    # the fast class's lower compute coefficient wins despite its cost.
    decision = choose_fabric(options, n=8192, t_max=3500.0,
                             objective="area")
    assert decision.tile_class == "fast"
    assert decision.outcomes["slow"].startswith("infeasible")


def test_choose_fabric_objectives_change_the_winner():
    from repro.core.decision import FabricOption, choose_fabric
    few_hungry = FabricOption(
        tile_class="hungry",
        model=OffloadModel(t0=100, mem_coeff=0.0, compute_coeff=0.5),
        max_clusters=8, tile_area_mm2=1.0, tile_power=100.0)
    many_frugal = FabricOption(
        tile_class="frugal",
        model=OffloadModel(t0=100, mem_coeff=0.0, compute_coeff=2.0),
        max_clusters=8, tile_area_mm2=1.0, tile_power=10.0)
    by_power = choose_fabric([few_hungry, many_frugal], n=512,
                             t_max=400.0, objective="power")
    by_clusters = choose_fabric([few_hungry, many_frugal], n=512,
                                t_max=400.0, objective="clusters")
    assert by_power.tile_class == "frugal"
    assert by_clusters.tile_class == "hungry"


def test_choose_fabric_all_infeasible_reports_every_class():
    from repro.core.decision import choose_fabric
    with pytest.raises(DecisionError) as err:
        choose_fabric(_fabric_options(), n=8192, t_max=50.0,
                      objective="area")
    assert "slow" in str(err.value) and "fast" in str(err.value)


def test_choose_fabric_input_validation():
    from repro.core.decision import FabricOption, choose_fabric
    options = _fabric_options()
    with pytest.raises(DecisionError, match="at least one"):
        choose_fabric([], n=64, t_max=100.0)
    with pytest.raises(DecisionError, match="unknown fabric objective"):
        choose_fabric(options, n=64, t_max=1000.0, objective="beauty")
    with pytest.raises(DecisionError, match="duplicate fabric option"):
        choose_fabric(options + [options[0]], n=64, t_max=1000.0)
    with pytest.raises(DecisionError, match="max_clusters"):
        FabricOption(tile_class="x", model=PAPER_DAXPY_MODEL,
                     max_clusters=0)


def test_fabric_decision_str_reads_naturally():
    from repro.core.decision import choose_fabric
    decision = choose_fabric(_fabric_options(), n=256, t_max=500.0,
                             objective="area")
    text = str(decision)
    assert "slow" in text and "cycles" in text and "cost" in text
