"""Unit tests for host-side kernel execution (the don't-offload path)."""

import numpy
import pytest

from repro.core.decision import HostExecutionModel
from repro.core.offload import offload, run_on_host
from repro.errors import ModelError
from repro.kernels.registry import get_kernel, kernel_names
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


@pytest.mark.parametrize("kernel", kernel_names())
def test_every_kernel_runs_on_host_and_verifies(kernel):
    result = run_on_host(ext_system(), kernel, 48)
    assert result.verified is True
    assert result.runtime_cycles > 0


def test_host_daxpy_functional_result():
    rng = numpy.random.default_rng(2)
    x, y = rng.normal(size=64), rng.normal(size=64)
    result = run_on_host(ext_system(), "daxpy", 64, scalars={"a": -1.5},
                         inputs={"x": x, "y": y})
    numpy.testing.assert_allclose(result.outputs["y"], -1.5 * x + y,
                                  rtol=1e-12)


def test_host_runtime_matches_kernel_host_timing():
    kernel = get_kernel("daxpy")
    result = run_on_host(ext_system(), "daxpy", 100, verify=False)
    assert result.runtime_cycles == kernel.host_compute_cycles(100)


def test_host_runtime_linear_in_n():
    r64 = run_on_host(ext_system(), "daxpy", 64, verify=False)
    r128 = run_on_host(ext_system(), "daxpy", 128, verify=False)
    r256 = run_on_host(ext_system(), "daxpy", 256, verify=False)
    assert (r256.runtime_cycles - r128.runtime_cycles
            == 2 * (r128.runtime_cycles - r64.runtime_cycles))


def test_host_loses_to_offload_on_large_jobs():
    host = run_on_host(ext_system(), "daxpy", 2048, verify=False)
    accel = offload(ext_system(), "daxpy", 2048, 8, verify=False)
    assert accel.runtime_cycles < host.runtime_cycles


def test_host_wins_on_tiny_jobs():
    host = run_on_host(ext_system(), "daxpy", 16, verify=False)
    accel = offload(ext_system(), "daxpy", 16, 8, verify=False)
    assert host.runtime_cycles < accel.runtime_cycles


def test_host_reduction_is_single_slice():
    x = numpy.arange(30, dtype=float)
    result = run_on_host(ext_system(), "vecsum", 30, inputs={"x": x})
    assert result.outputs["partials"].shape == (1,)
    assert result.outputs["partials"][0] == pytest.approx(x.sum())


def test_gemv_host_cycles_scale_quadratically():
    kernel = get_kernel("gemv")
    small = kernel.host_compute_cycles(32)
    large = kernel.host_compute_cycles(64)
    setup = kernel.host_timing.setup_cycles
    assert (large - setup) == 4 * (small - setup)


def test_host_model_fit_recovers_measured_rate():
    points = []
    for n in (64, 128, 256, 512):
        result = run_on_host(ext_system(), "daxpy", n, verify=False)
        points.append((n, float(result.runtime_cycles)))
    model = HostExecutionModel.fit(points)
    kernel = get_kernel("daxpy")
    assert model.cycles_per_element == pytest.approx(
        kernel.host_timing.cycles_per_element, rel=1e-6)
    assert model.predict(1024) == pytest.approx(
        kernel.host_compute_cycles(1024), rel=1e-3)


def test_host_model_fit_validation():
    with pytest.raises(ModelError):
        HostExecutionModel.fit([(64, 100.0)])
    with pytest.raises(ModelError):
        HostExecutionModel.fit([(64, 100.0), (64, 100.0)])
    with pytest.raises(ModelError):
        HostExecutionModel.fit([(10, 1000.0), (100, 10.0)])  # negative rate


def test_host_run_result_string():
    result = run_on_host(ext_system(), "memcpy", 32)
    assert "on the host" in str(result)
