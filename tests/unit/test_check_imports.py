"""The import-layering lint: clean on the real tree, sharp on bad ones."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_imports.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_imports", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_the_real_tree_is_clean(capsys):
    assert checker.main([str(CHECKER), str(REPO_ROOT / "src" / "repro")]) == 0


def _fake_tree(tmp_path, files):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for relpath, body in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.parent != root and not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(body)
    return root


def test_upward_import_is_flagged(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "sim/event.py": "from repro.core.offload import offload\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 1
    assert "upward dependency" in capsys.readouterr().out


def test_cross_module_private_import_is_flagged(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "core/offload.py": "from repro.runtime.api import _secret\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 1
    assert "private name '_secret'" in capsys.readouterr().out


def test_same_module_private_import_is_allowed(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "core/offload.py": "from repro.core.staging import _helper\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 0


def test_function_level_imports_are_exempt(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "soc/config.py": (
            "def features():\n"
            "    from repro.runtime.strategies import variant_features\n"
            "    return variant_features()\n"),
    })
    assert checker.main([str(CHECKER), str(root)]) == 0


def test_unknown_module_is_flagged(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "mystery.py": "import repro.errors\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 1
    assert "not in the layer table" in capsys.readouterr().out


def test_diag_submodule_allowlist_is_enforced(tmp_path, capsys):
    # repro.sim.diag is imported by the kernel itself, so importing the
    # kernel (or anything outside its allowlist) from it is a cycle.
    root = _fake_tree(tmp_path, {
        "sim/diag.py": "from repro.sim.kernel import Simulator\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 1
    assert "SUBMODULE_RULES" in capsys.readouterr().out


def test_diag_submodule_allowlist_permits_leaf_imports(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "sim/diag.py": ("from repro import flags\n"
                        "from repro.errors import ProtocolError\n"
                        "from repro.sim.event import Event\n"),
    })
    assert checker.main([str(CHECKER), str(root)]) == 0


def test_tiles_submodule_allowlist_is_enforced(tmp_path, capsys):
    # repro.soc.tiles must stay leaf-like: cluster/soc/core all build
    # on it, so depending on soc.config from it recreates the cycle.
    root = _fake_tree(tmp_path, {
        "soc/tiles.py": "from repro.soc.config import SoCConfig\n",
    })
    assert checker.main([str(CHECKER), str(root)]) == 1
    assert "repro.soc.tiles" in capsys.readouterr().out


def test_tiles_submodule_allowlist_permits_leaf_imports(tmp_path, capsys):
    root = _fake_tree(tmp_path, {
        "soc/tiles.py": ("from repro.errors import ConfigError\n"
                         "from repro.kernels.base import KernelTiming\n"),
    })
    assert checker.main([str(CHECKER), str(root)]) == 0
