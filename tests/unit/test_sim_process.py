"""Unit tests for generator-coroutine processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_process_delay_advances_time():
    sim = Simulator()
    log = []

    def body():
        log.append(sim.now)
        yield 10
        log.append(sim.now)
        yield 5
        log.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert log == [0, 10, 15]


def test_process_zero_delay_resumes_same_cycle():
    sim = Simulator()
    log = []

    def body():
        yield 0
        log.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert log == [0]


def test_process_negative_delay_raises():
    sim = Simulator()

    def body():
        yield -3

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_bad_yield_type_raises():
    sim = Simulator()

    def body():
        yield "soon"

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_process_waits_on_event_and_gets_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def body():
        value = yield event
        got.append((sim.now, value))

    sim.spawn(body())
    sim.schedule(7, lambda arg: event.trigger("payload"))
    sim.run()
    assert got == [(7, "payload")]


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def child():
        yield 4
        return 99

    def parent():
        value = yield sim.spawn(child())
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(4, 99)]


def test_join_already_finished_process():
    sim = Simulator()
    results = []

    def child():
        return 7
        yield  # pragma: no cover - makes this a generator

    def parent():
        proc = sim.spawn(child())
        yield 10  # let the child finish first
        value = yield proc
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(10, 7)]


def test_process_is_event_for_combinators():
    sim = Simulator()

    def worker(delay, tag):
        yield delay
        return tag

    procs = [sim.spawn(worker(d, t)) for d, t in [(3, "a"), (9, "b"), (6, "c")]]
    combo = sim.all_of(procs)
    sim.run(until=combo)
    assert sim.now == 9
    assert combo.value == ["a", "b", "c"]


def test_process_exception_propagates():
    sim = Simulator()

    def body():
        yield 1
        raise ValueError("model bug")

    proc = sim.spawn(body())
    with pytest.raises(ValueError, match="model bug"):
        sim.run()
    assert isinstance(proc.failure, ValueError)


def test_finished_flag():
    sim = Simulator()

    def body():
        yield 5

    proc = sim.spawn(body())
    assert not proc.finished
    sim.run()
    assert proc.finished


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def ping():
        for _ in range(3):
            log.append(("ping", sim.now))
            yield 2

    def pong():
        for _ in range(3):
            log.append(("pong", sim.now))
            yield 2

    sim.spawn(ping())
    sim.spawn(pong())
    sim.run()
    # Spawn order decides same-cycle order: ping always before pong.
    assert log == [
        ("ping", 0), ("pong", 0),
        ("ping", 2), ("pong", 2),
        ("ping", 4), ("pong", 4),
    ]


def test_yield_from_subroutine_composition():
    sim = Simulator()
    log = []

    def sub(n):
        yield n
        return n * 2

    def body():
        a = yield from sub(3)
        b = yield from sub(4)
        log.append((sim.now, a + b))

    sim.spawn(body())
    sim.run()
    assert log == [(7, 14)]


def test_named_processes_get_default_names():
    sim = Simulator()

    def body():
        yield 1

    p1 = sim.spawn(body())
    p2 = sim.spawn(body(), name="custom")
    assert p1.name == "process-1"
    assert p2.name == "custom"
    sim.run()
