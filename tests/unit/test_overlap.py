"""Unit tests for co-operative host/accelerator overlapped execution."""

import numpy
import pytest

from repro.core.offload import offload_daxpy, run_on_host
from repro.core.overlap import offload_overlapped
from repro.kernels import get_kernel
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem


def ext_system(**overrides):
    overrides.setdefault("num_clusters", 8)
    return ManticoreSystem(SoCConfig.extended(**overrides))


def test_both_jobs_verify():
    result = offload_overlapped(ext_system(), "daxpy", 512, 4,
                                "scale", 128)
    assert result.verified is True
    assert result.accel_kernel == "daxpy"
    assert result.host_kernel == "scale"


def test_results_match_isolated_runs():
    overlapped = offload_overlapped(ext_system(), "daxpy", 256, 4,
                                    "scale", 64, seed=9)
    alone_accel = offload_daxpy(ext_system(), n=256, num_clusters=4,
                                seed=9, a=1.0)
    numpy.testing.assert_array_equal(overlapped.accel_outputs["y"],
                                     alone_accel.outputs["y"])


def test_small_host_work_is_completely_hidden():
    """Host work shorter than the accelerator job costs nothing extra."""
    plain = offload_daxpy(ext_system(), n=4096, num_clusters=4,
                          verify=False)
    overlapped = offload_overlapped(ext_system(), "daxpy", 4096, 4,
                                    "scale", 64, verify=False)
    # Total equals the plain offload (give or take the WFI fall-through).
    assert overlapped.total_cycles <= plain.runtime_cycles + 24
    assert overlapped.host_work_cycles > 0


def test_large_host_work_dominates_and_wait_vanishes():
    overlapped = offload_overlapped(ext_system(), "daxpy", 512, 8,
                                    "scale", 4096, verify=False)
    host_cycles = get_kernel("scale").host_compute_cycles(4096)
    assert overlapped.host_work_cycles == host_cycles
    # The accelerator finished long before the host: near-zero wait
    # (the pending-IRQ fall-through costs only the wake latency).
    assert overlapped.exposed_wait_cycles <= 24


def test_overlap_always_beats_sequential():
    for host_n in (64, 512, 2048):
        system = ext_system()
        accel = offload_daxpy(system, n=2048, num_clusters=8)
        host = run_on_host(system, "scale", host_n)
        sequential = accel.runtime_cycles + host.runtime_cycles
        overlapped = offload_overlapped(ext_system(), "daxpy", 2048, 8,
                                        "scale", host_n, verify=False)
        assert overlapped.total_cycles < sequential


def test_overlap_on_baseline_hardware_polls_late():
    """Polling variants overlap too: the host just starts polling after
    its own work instead of immediately."""
    system = ManticoreSystem(SoCConfig.baseline(num_clusters=8))
    result = offload_overlapped(system, "daxpy", 1024, 4, "scale", 128)
    assert result.verified is True
    assert system.host.slept_cycles == 0  # no WFI on baseline


def test_pending_irq_falls_through_after_host_work():
    """The race the level-pending semantics solve: the IRQ fires while
    the host is busy; WFI must not sleep forever."""
    system = ext_system()
    result = offload_overlapped(system, "daxpy", 256, 8, "scale", 8192,
                                verify=False)
    # Host work (~24k cycles) dwarfs the job (~800): the interrupt was
    # pending long before the WFI executed.
    assert result.exposed_wait_cycles <= 24
    assert system.syncunit.interrupts_fired == 1


def test_result_string():
    result = offload_overlapped(ext_system(), "daxpy", 256, 2,
                                "memcpy", 64, verify=False)
    assert "overlapped with host" in str(result)
