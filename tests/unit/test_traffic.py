"""Unit tests for the traffic engine: arrivals, occupancy, admission."""

import numpy
import pytest

from repro.core.decision import HostExecutionModel, min_clusters_for_deadline
from repro.core.model import OffloadModel
from repro.errors import TrafficError
from repro.traffic import (
    BurstyArrivals,
    FabricOccupancy,
    PoissonArrivals,
    TraceArrivals,
    TrafficAlwaysHost,
    TrafficAlwaysOffload,
    TrafficDeadlineAware,
    TrafficEngine,
    TrafficModelDriven,
    compute_metrics,
    generate_traffic,
)
from repro.traffic.metrics import jain_index
from repro.workload import JobSpec

# Synthetic fitted models with round coefficients: offload floor ~364
# cycles, host at 4 cycles/element.  Small jobs can never offload in
# time; large jobs parallelize well.
MODEL = OffloadModel(t0=360, mem_coeff=0.25, compute_coeff=0.4)
HOST = HostExecutionModel(cycles_per_element=4.0, setup_cycles=16.0)


def engine(capacity=32, slack=3.0):
    return TrafficEngine({"daxpy": MODEL}, {"daxpy": HOST},
                         capacity=capacity, slack=slack)


def job(n, arrival, tenant=0):
    return JobSpec("daxpy", n, tenant=tenant, arrival_cycle=arrival)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def test_poisson_arrivals_are_nondecreasing_and_near_the_mean():
    rng = numpy.random.default_rng(0)
    times = PoissonArrivals(100.0).arrival_cycles(2000, rng)
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert times[-1] / 2000 == pytest.approx(100.0, rel=0.1)


def test_poisson_rejects_nonpositive_mean():
    with pytest.raises(TrafficError):
        PoissonArrivals(0.0)


def test_bursty_arrivals_cluster_more_than_poisson():
    rng = numpy.random.default_rng(1)
    bursty = BurstyArrivals(10.0, mean_burst_jobs=8.0,
                            mean_idle_cycles=2000.0)
    times = bursty.arrival_cycles(2000, rng)
    gaps = numpy.diff(times)
    # On/off modulation: gap variance far exceeds the exponential's
    # (where std == mean).
    assert gaps.std() > 2 * gaps.mean()


def test_bursty_validation():
    with pytest.raises(TrafficError):
        BurstyArrivals(0.0, 8.0, 100.0)
    with pytest.raises(TrafficError):
        BurstyArrivals(10.0, 0.5, 100.0)


def test_trace_arrivals_replay_periodically():
    trace = TraceArrivals([0, 10, 50], period_cycles=100)
    rng = numpy.random.default_rng(0)
    assert trace.arrival_cycles(7, rng) == [0, 10, 50, 100, 110, 150, 200]


def test_trace_validation():
    with pytest.raises(TrafficError):
        TraceArrivals([])
    with pytest.raises(TrafficError):
        TraceArrivals([5, 3])
    with pytest.raises(TrafficError):
        TraceArrivals([-1, 3])
    with pytest.raises(TrafficError):
        TraceArrivals([0, 50], period_cycles=50)


def test_trace_consumes_no_randomness_for_times():
    rng_a = numpy.random.default_rng(7)
    rng_b = numpy.random.default_rng(7)
    trace = TraceArrivals([0, 30])
    trace.arrival_cycles(10, rng_a)
    # rng_a untouched: both generators continue identically.
    assert rng_a.integers(0, 2**32) == rng_b.integers(0, 2**32)


def test_generate_traffic_is_deterministic_and_sorted():
    process = PoissonArrivals(100.0)
    first = generate_traffic(process, 50, tenants=3, kernels=("daxpy",),
                             seed=9)
    second = generate_traffic(process, 50, tenants=3, kernels=("daxpy",),
                              seed=9)
    assert first == second
    assert all(b.arrival_cycle >= a.arrival_cycle
               for a, b in zip(first, first[1:]))
    assert {j.tenant for j in first} <= {0, 1, 2}
    assert len({j.seed for j in first}) == 50   # per-job input seeds


def test_generate_traffic_validation():
    process = PoissonArrivals(10.0)
    with pytest.raises(TrafficError):
        generate_traffic(process, 0)
    with pytest.raises(TrafficError):
        generate_traffic(process, 5, tenants=0)
    with pytest.raises(TrafficError):
        generate_traffic(process, 5, kernels=())
    with pytest.raises(TrafficError):
        generate_traffic(process, 5, min_n=0)


# ----------------------------------------------------------------------
# Fabric occupancy
# ----------------------------------------------------------------------
def test_empty_fabric_starts_immediately():
    occ = FabricOccupancy(8)
    assert occ.earliest_start(100, 50, 8) == 100


def test_occupancy_packs_up_to_capacity_then_queues():
    occ = FabricOccupancy(8)
    occ.reserve(0, 100, 4)
    occ.reserve(0, 100, 4)
    # Full until cycle 100: a third job waits for the earliest end.
    assert occ.earliest_start(0, 10, 1) == 100
    # Back-to-back full-width reservation pushes the wait further.
    occ.reserve(100, 50, 8)
    assert occ.earliest_start(0, 10, 1) == 150


def test_occupancy_finds_holes_between_reservations():
    occ = FabricOccupancy(8)
    occ.reserve(0, 100, 6)
    occ.reserve(200, 100, 6)
    # Two clusters are free throughout; six fit only in [100, 200).
    assert occ.earliest_start(0, 50, 2) == 0
    assert occ.earliest_start(0, 100, 6) == 100
    # A 150-cycle six-wide job cannot fit the hole: it must wait.
    assert occ.earliest_start(0, 150, 6) == 300


def test_occupancy_validation_and_overflow():
    occ = FabricOccupancy(4)
    with pytest.raises(TrafficError):
        FabricOccupancy(0)
    with pytest.raises(TrafficError):
        occ.earliest_start(0, 10, 0)
    with pytest.raises(TrafficError):
        occ.earliest_start(0, 10, 5)
    with pytest.raises(TrafficError):
        occ.reserve(0, 0, 1)
    occ.reserve(0, 10, 4)
    with pytest.raises(TrafficError):
        occ.reserve(5, 10, 1)   # would exceed capacity mid-interval


def test_occupancy_prune_drops_finished_reservations():
    occ = FabricOccupancy(4)
    occ.reserve(0, 10, 2)
    occ.reserve(5, 10, 2)
    assert len(occ) == 2
    occ.prune(10)
    assert len(occ) == 1
    assert occ.busy_cluster_cycles == 40   # accounting survives pruning


def test_occupancy_utilization():
    occ = FabricOccupancy(4)
    occ.reserve(0, 100, 2)
    assert occ.utilization(100) == pytest.approx(0.5)
    assert occ.utilization(0) == 0.0


# ----------------------------------------------------------------------
# Engine + policies
# ----------------------------------------------------------------------
def test_engine_validation():
    with pytest.raises(TrafficError):
        TrafficEngine({}, {}, capacity=0)
    with pytest.raises(TrafficError):
        TrafficEngine({}, {}, capacity=8, slack=0.0)
    with pytest.raises(TrafficError):
        TrafficAlwaysOffload(0)
    with pytest.raises(TrafficError):
        engine().run([], TrafficAlwaysHost())


def test_engine_unknown_kernel():
    eng = engine()
    with pytest.raises(TrafficError, match="characterized"):
        eng.run([JobSpec("memcpy", 64)], TrafficAlwaysHost())


def test_always_host_queues_serially():
    eng = engine()
    # Host time for n=100: 16 + 400 = 416 cycles each.
    result = eng.run([job(100, 0), job(100, 0)], TrafficAlwaysHost())
    first, second = result.outcomes
    assert (first.start_cycle, first.end_cycle) == (0, 416)
    assert (second.start_cycle, second.end_cycle) == (416, 832)
    assert result.utilization == 0.0   # no clusters ever reserved


def test_always_offload_resolved_name_reports_clamped_width():
    eng = engine(capacity=8)
    result = eng.run([job(1024, 0)], TrafficAlwaysOffload(32))
    assert result.policy_name == "always_offload_8"
    assert result.outcomes[0].num_clusters == 8


def test_model_driven_routes_small_jobs_to_host():
    eng = engine()
    result = eng.run([job(16, 0), job(4096, 0)], TrafficModelDriven())
    small, large = result.outcomes
    assert small.placement == "host"
    assert large.placement == "offload"
    assert large.num_clusters == 32   # runtime-optimal width, d=0


def test_deadline_aware_matches_offline_eq3_on_an_idle_fabric():
    # Sparse stream: every arrival finds the fabric idle, so the online
    # admission must pick exactly the offline inversion's width.
    eng = engine()
    jobs = [job(n, arrival=i * 1_000_000)
            for i, n in enumerate((512, 1024, 2048, 4096, 3000, 777))]
    result = eng.run(jobs, TrafficDeadlineAware())
    for outcome in result.outcomes:
        assert outcome.placement == "offload"
        budget = outcome.deadline_cycle - outcome.spec.arrival_cycle
        offline = min_clusters_for_deadline(MODEL, outcome.spec.n,
                                            budget, 32)
        assert outcome.num_clusters == offline
        assert outcome.end_cycle <= outcome.deadline_cycle


def test_deadline_aware_widens_past_queued_reservations():
    eng = engine(capacity=8)
    # Occupy 6 of 8 clusters for a long time; a job that needs 1
    # cluster offline must widen (or wait) and still meet its deadline.
    eng.occupancy.reserve(0, 50_000, 6)
    arrival_job = job(2048, 0)
    deadline = eng.deadline_for(arrival_job)
    outcome = TrafficDeadlineAware().place(arrival_job, deadline, eng)
    assert outcome.placement == "offload"
    assert outcome.num_clusters <= 2   # only 2 clusters are free now
    assert outcome.end_cycle <= deadline


def test_deadline_aware_falls_back_to_host_when_eq3_infeasible():
    eng = engine(slack=1.5)
    # n=16: host is 80 cycles, deadline 120 — the ~366-cycle offload
    # floor can never meet it, so the job must run on the idle host.
    result = eng.run([job(16, 0)], TrafficDeadlineAware())
    assert result.outcomes[0].placement == "host"
    assert not result.outcomes[0].missed_deadline


def test_deadline_aware_sheds_guaranteed_misses():
    eng = engine(slack=1.0)
    # Two tiny jobs at once: the host serves one exactly on time; the
    # second would start late and is shed instead of served hopelessly.
    result = eng.run([job(16, 0), job(16, 0)], TrafficDeadlineAware())
    placements = sorted(o.placement for o in result.outcomes)
    assert placements == ["host", "shed"]
    shed = [o for o in result.outcomes if o.placement == "shed"][0]
    assert not shed.admitted
    assert shed.missed_deadline
    with pytest.raises(TrafficError):
        shed.sojourn_cycles


def test_deadline_aware_beats_always_offload_under_load():
    # A burst of wide jobs: always-offload serializes them at full
    # width; minimum-width admission space-shares and meets deadlines.
    eng = engine()
    jobs = [job(2048, arrival=i * 10) for i in range(80)]
    wide = compute_metrics(eng.run(jobs, TrafficAlwaysOffload(32)))
    aware = compute_metrics(eng.run(jobs, TrafficDeadlineAware()))
    assert aware.miss_rate < wide.miss_rate
    assert wide.miss_rate > 0.5
    assert aware.deadline_misses == 0


def test_engine_runs_are_independent_and_deterministic():
    eng = engine()
    jobs = generate_traffic(PoissonArrivals(200.0), 60, tenants=2,
                            kernels=("daxpy",), seed=5)
    first = eng.run(jobs, TrafficDeadlineAware(), arrival_name="poisson")
    second = eng.run(jobs, TrafficDeadlineAware(), arrival_name="poisson")
    assert first == second
    assert compute_metrics(first) == compute_metrics(second)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_jain_index_edges():
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    # One tenant getting everything: 1/k.
    assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_compute_metrics_aggregates_and_splits_tenants():
    eng = engine()
    jobs = [job(1024, 0, tenant=0), job(1024, 500, tenant=1),
            job(16, 1000, tenant=1)]
    metrics = compute_metrics(eng.run(jobs, TrafficModelDriven(),
                                      arrival_name="unit"))
    assert metrics.arrival_name == "unit"
    assert metrics.jobs == 3
    assert metrics.offloaded == 2
    assert metrics.shed == 0
    assert [t.tenant for t in metrics.per_tenant] == [0, 1]
    assert [t.jobs for t in metrics.per_tenant] == [1, 2]
    assert metrics.jain_fairness == pytest.approx(1.0)
    # p99 >= p50 by construction.
    assert metrics.p99_sojourn_cycles >= metrics.p50_sojourn_cycles


def test_shed_jobs_count_as_misses_in_metrics():
    eng = engine(slack=1.0)
    metrics = compute_metrics(
        eng.run([job(16, 0), job(16, 0)], TrafficDeadlineAware()))
    assert metrics.shed == 1
    assert metrics.deadline_misses == 1
    assert metrics.miss_rate == pytest.approx(0.5)
