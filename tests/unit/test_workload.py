"""Unit tests for the workload layer: streams, policies, execution."""

import pytest

from repro.core.decision import HostExecutionModel
from repro.core.model import OffloadModel
from repro.errors import KernelError, OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.workload import (
    AlwaysHost,
    AlwaysOffload,
    JobSpec,
    ModelDriven,
    Placement,
    characterize_platform,
    generate_workload,
    run_workload,
)


SMALL_CFG = SoCConfig.extended(num_clusters=8)


def small_system():
    return ManticoreSystem(SMALL_CFG)


# ----------------------------------------------------------------------
# JobSpec & generation
# ----------------------------------------------------------------------
def test_jobspec_fills_default_scalars():
    job = JobSpec(kernel_name="daxpy", n=64)
    assert job.scalars == {"a": 1.0}


def test_jobspec_validates_kernel_and_size():
    with pytest.raises(KernelError):
        JobSpec(kernel_name="daxpy", n=0)
    with pytest.raises(KernelError):
        JobSpec(kernel_name="nope", n=64)
    with pytest.raises(KernelError):
        JobSpec(kernel_name="daxpy", n=64, scalars={"zz": 1.0})


def test_generate_workload_is_reproducible():
    first = generate_workload(20, seed=3)
    second = generate_workload(20, seed=3)
    assert first == second
    different = generate_workload(20, seed=4)
    assert first != different


def test_generate_workload_respects_bounds():
    jobs = generate_workload(100, kernels=("daxpy",), min_n=32, max_n=512,
                             seed=1)
    assert len(jobs) == 100
    assert all(32 <= job.n <= 512 for job in jobs)
    assert all(job.kernel_name == "daxpy" for job in jobs)


def test_generate_workload_is_size_diverse():
    jobs = generate_workload(100, min_n=16, max_n=4096, seed=2)
    sizes = {job.n for job in jobs}
    assert len(sizes) > 50  # log-uniform draw, not constant


def test_generate_workload_validation():
    with pytest.raises(OffloadError):
        generate_workload(0)
    with pytest.raises(OffloadError):
        generate_workload(5, min_n=100, max_n=50)


def test_job_seeds_do_not_collide_across_streams(monkeypatch):
    # The old seed + index derivation made streams with adjacent seeds
    # share almost every job seed (stream 0 job 5 == stream 1 job 4).
    from repro import flags
    monkeypatch.delenv(flags.LEGACY_JOB_SEEDS_ENV, raising=False)
    first = {job.seed for job in generate_workload(50, seed=0)}
    second = {job.seed for job in generate_workload(50, seed=1)}
    assert not first & second


def test_legacy_job_seed_gate_restores_old_derivation(monkeypatch):
    from repro import flags
    monkeypatch.setenv(flags.LEGACY_JOB_SEEDS_ENV, "1")
    jobs = generate_workload(10, seed=3)
    assert [job.seed for job in jobs] == [3 + i for i in range(10)]


def test_seed_fix_leaves_kernel_and_size_stream_unchanged(monkeypatch):
    # E9's committed numbers depend on the kernel/size draws; only the
    # per-job input seeds may differ between the schemes.
    from repro import flags
    monkeypatch.delenv(flags.LEGACY_JOB_SEEDS_ENV, raising=False)
    fixed = generate_workload(30, seed=3)
    monkeypatch.setenv(flags.LEGACY_JOB_SEEDS_ENV, "1")
    legacy = generate_workload(30, seed=3)
    assert [(j.kernel_name, j.n) for j in fixed] == \
        [(j.kernel_name, j.n) for j in legacy]
    assert [j.seed for j in fixed] != [j.seed for j in legacy]


def test_jobspec_tenant_and_arrival_annotations():
    job = JobSpec("daxpy", 64, tenant=2, arrival_cycle=900)
    assert job.tenant == 2 and job.arrival_cycle == 900
    with pytest.raises(OffloadError, match="tenant"):
        JobSpec("daxpy", 64, tenant=-1)
    with pytest.raises(OffloadError, match="arrival"):
        JobSpec("daxpy", 64, arrival_cycle=-5)


def test_generate_workload_tags_the_tenant():
    jobs = generate_workload(5, seed=1, tenant=4)
    assert all(job.tenant == 4 for job in jobs)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_always_host_policy():
    placement = AlwaysHost().place(JobSpec("daxpy", 1024), 32)
    assert placement == Placement(offload=False, num_clusters=0)


def test_always_offload_clamps_to_fabric():
    policy = AlwaysOffload(num_clusters=32)
    assert policy.place(JobSpec("daxpy", 64), 8).num_clusters == 8


def test_always_offload_rejects_nonpositive_width():
    with pytest.raises(OffloadError, match="positive"):
        AlwaysOffload(num_clusters=0)


def test_resolved_name_reports_the_clamped_width():
    # The bare name claims the requested width; on a smaller fabric the
    # resolved name must report what actually runs.
    policy = AlwaysOffload(num_clusters=32)
    assert policy.name == "always_offload_32"
    assert policy.resolved_name(8) == "always_offload_8"
    assert policy.resolved_name(64) == "always_offload_32"
    assert AlwaysHost().resolved_name(8) == "always_host"


def test_workload_result_uses_the_resolved_policy_name():
    jobs = [JobSpec("daxpy", 64)]
    result = run_workload(small_system(), jobs, AlwaysOffload(32))
    assert result.policy_name == "always_offload_8"


def test_model_driven_routes_by_size():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325)
    host = HostExecutionModel(cycles_per_element=4.0, setup_cycles=14)
    policy = ModelDriven({"daxpy": model}, {"daxpy": host})
    small = policy.place(JobSpec("daxpy", 16), 32)
    large = policy.place(JobSpec("daxpy", 4096), 32)
    assert not small.offload
    assert large.offload and large.num_clusters == 32


def test_model_driven_unknown_kernel():
    policy = ModelDriven({}, {})
    with pytest.raises(OffloadError, match="characterized"):
        policy.place(JobSpec("daxpy", 64), 8)


def test_characterize_platform_builds_models_per_kernel():
    policy = characterize_platform(SMALL_CFG, ("daxpy", "memcpy"),
                                   n_values=(128, 256, 512),
                                   m_values=(1, 2, 4, 8))
    assert set(policy.offload_models) == {"daxpy", "memcpy"}
    daxpy_model = policy.offload_models["daxpy"]
    assert daxpy_model.t0 == pytest.approx(366, abs=10)
    host = policy.host_models["daxpy"]
    assert host.cycles_per_element == pytest.approx(4.0, abs=0.05)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def test_run_workload_accounts_every_job():
    jobs = generate_workload(5, kernels=("daxpy",), min_n=64, max_n=256,
                             seed=1)
    result = run_workload(small_system(), jobs, AlwaysOffload(4))
    assert len(result.outcomes) == 5
    assert result.offloaded_jobs == 5
    assert result.host_jobs == 0
    assert result.makespan_cycles == sum(o.cycles for o in result.outcomes)


def test_run_workload_host_policy_uses_host_rates():
    jobs = [JobSpec("daxpy", 100)]
    result = run_workload(small_system(), jobs, AlwaysHost())
    from repro.kernels import get_kernel
    assert result.outcomes[0].cycles == \
        get_kernel("daxpy").host_compute_cycles(100)


def test_run_workload_empty_rejected():
    with pytest.raises(OffloadError):
        run_workload(small_system(), [], AlwaysHost())


def test_workload_error_names_the_failing_job():
    from repro.errors import WorkloadError
    jobs = [JobSpec("daxpy", 64), JobSpec("daxpy", 2048)]
    with pytest.raises(WorkloadError) as err:
        # 50 cycles is far below any offload's floor: job 0 times out.
        run_workload(small_system(), jobs, AlwaysOffload(4), max_cycles=50)
    message = str(err.value)
    assert "job 0/2" in message
    assert "always_offload_4" in message
    assert "daxpy(n=64)" in message
    assert "4 clusters" in message
    assert err.value.job == jobs[0]
    assert err.value.job_index == 0
    assert err.value.placement.offload
    # The simulation post-mortem rides through from the inner failure.
    assert err.value.report is not None
    assert isinstance(err.value.__cause__, OffloadError)


def test_workload_error_on_host_placement():
    from repro.errors import WorkloadError
    with pytest.raises(WorkloadError, match="on the host") as err:
        run_workload(small_system(), [JobSpec("daxpy", 2048)], AlwaysHost(),
                     max_cycles=50)
    assert not err.value.placement.offload


def test_pool_release_is_safe_after_a_failed_job():
    from repro.errors import WorkloadError
    from repro.soc.pool import SystemPool
    pool = SystemPool()
    system = pool.acquire(SMALL_CFG)
    with pytest.raises(WorkloadError):
        run_workload(system, [JobSpec("daxpy", 2048)], AlwaysOffload(4),
                     max_cycles=50)
    dropped_before = pool.dropped
    from repro import flags
    from repro.errors import QuiescenceError
    from repro.sim import IntegrityWarning
    # The quiescence audit drops the half-run system: a warning in
    # normal mode, the documented hard error under REPRO_STRICT —
    # never a recycle.
    if flags.strict():
        with pytest.raises(QuiescenceError):
            pool.release(system)
    else:
        with pytest.warns(IntegrityWarning, match="non-quiescent"):
            pool.release(system)
    assert pool.dropped == dropped_before + 1


def test_adaptive_never_loses_to_static_policies():
    jobs = generate_workload(12, kernels=("daxpy", "memcpy"), min_n=16,
                             max_n=2048, seed=5)
    adaptive = characterize_platform(SMALL_CFG, ("daxpy", "memcpy"),
                                     n_values=(128, 512, 1024),
                                     m_values=(1, 2, 4, 8))
    adaptive_result = run_workload(small_system(), jobs, adaptive)
    for static in (AlwaysHost(), AlwaysOffload(8)):
        static_result = run_workload(small_system(), jobs, static)
        assert adaptive_result.makespan_cycles \
            <= static_result.makespan_cycles * 1.02  # model error margin


def test_mixed_placement_on_mixed_stream():
    jobs = [JobSpec("daxpy", 16), JobSpec("daxpy", 4096)]
    adaptive = characterize_platform(SMALL_CFG, ("daxpy",),
                                     n_values=(128, 512, 1024),
                                     m_values=(1, 2, 4, 8))
    result = run_workload(small_system(), jobs, adaptive)
    assert result.host_jobs == 1
    assert result.offloaded_jobs == 1
