"""Unit tests for the workload layer: streams, policies, execution."""

import pytest

from repro.core.decision import HostExecutionModel
from repro.core.model import OffloadModel
from repro.errors import KernelError, OffloadError
from repro.soc.config import SoCConfig
from repro.soc.manticore import ManticoreSystem
from repro.workload import (
    AlwaysHost,
    AlwaysOffload,
    JobSpec,
    ModelDriven,
    Placement,
    characterize_platform,
    generate_workload,
    run_workload,
)


SMALL_CFG = SoCConfig.extended(num_clusters=8)


def small_system():
    return ManticoreSystem(SMALL_CFG)


# ----------------------------------------------------------------------
# JobSpec & generation
# ----------------------------------------------------------------------
def test_jobspec_fills_default_scalars():
    job = JobSpec(kernel_name="daxpy", n=64)
    assert job.scalars == {"a": 1.0}


def test_jobspec_validates_kernel_and_size():
    with pytest.raises(KernelError):
        JobSpec(kernel_name="daxpy", n=0)
    with pytest.raises(KernelError):
        JobSpec(kernel_name="nope", n=64)
    with pytest.raises(KernelError):
        JobSpec(kernel_name="daxpy", n=64, scalars={"zz": 1.0})


def test_generate_workload_is_reproducible():
    first = generate_workload(20, seed=3)
    second = generate_workload(20, seed=3)
    assert first == second
    different = generate_workload(20, seed=4)
    assert first != different


def test_generate_workload_respects_bounds():
    jobs = generate_workload(100, kernels=("daxpy",), min_n=32, max_n=512,
                             seed=1)
    assert len(jobs) == 100
    assert all(32 <= job.n <= 512 for job in jobs)
    assert all(job.kernel_name == "daxpy" for job in jobs)


def test_generate_workload_is_size_diverse():
    jobs = generate_workload(100, min_n=16, max_n=4096, seed=2)
    sizes = {job.n for job in jobs}
    assert len(sizes) > 50  # log-uniform draw, not constant


def test_generate_workload_validation():
    with pytest.raises(OffloadError):
        generate_workload(0)
    with pytest.raises(OffloadError):
        generate_workload(5, min_n=100, max_n=50)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_always_host_policy():
    placement = AlwaysHost().place(JobSpec("daxpy", 1024), 32)
    assert placement == Placement(offload=False, num_clusters=0)


def test_always_offload_clamps_to_fabric():
    policy = AlwaysOffload(num_clusters=32)
    assert policy.place(JobSpec("daxpy", 64), 8).num_clusters == 8


def test_model_driven_routes_by_size():
    model = OffloadModel(t0=367, mem_coeff=0.25, compute_coeff=0.325)
    host = HostExecutionModel(cycles_per_element=4.0, setup_cycles=14)
    policy = ModelDriven({"daxpy": model}, {"daxpy": host})
    small = policy.place(JobSpec("daxpy", 16), 32)
    large = policy.place(JobSpec("daxpy", 4096), 32)
    assert not small.offload
    assert large.offload and large.num_clusters == 32


def test_model_driven_unknown_kernel():
    policy = ModelDriven({}, {})
    with pytest.raises(OffloadError, match="characterized"):
        policy.place(JobSpec("daxpy", 64), 8)


def test_characterize_platform_builds_models_per_kernel():
    policy = characterize_platform(SMALL_CFG, ("daxpy", "memcpy"),
                                   n_values=(128, 256, 512),
                                   m_values=(1, 2, 4, 8))
    assert set(policy.offload_models) == {"daxpy", "memcpy"}
    daxpy_model = policy.offload_models["daxpy"]
    assert daxpy_model.t0 == pytest.approx(366, abs=10)
    host = policy.host_models["daxpy"]
    assert host.cycles_per_element == pytest.approx(4.0, abs=0.05)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def test_run_workload_accounts_every_job():
    jobs = generate_workload(5, kernels=("daxpy",), min_n=64, max_n=256,
                             seed=1)
    result = run_workload(small_system(), jobs, AlwaysOffload(4))
    assert len(result.outcomes) == 5
    assert result.offloaded_jobs == 5
    assert result.host_jobs == 0
    assert result.makespan_cycles == sum(o.cycles for o in result.outcomes)


def test_run_workload_host_policy_uses_host_rates():
    jobs = [JobSpec("daxpy", 100)]
    result = run_workload(small_system(), jobs, AlwaysHost())
    from repro.kernels import get_kernel
    assert result.outcomes[0].cycles == \
        get_kernel("daxpy").host_compute_cycles(100)


def test_run_workload_empty_rejected():
    with pytest.raises(OffloadError):
        run_workload(small_system(), [], AlwaysHost())


def test_adaptive_never_loses_to_static_policies():
    jobs = generate_workload(12, kernels=("daxpy", "memcpy"), min_n=16,
                             max_n=2048, seed=5)
    adaptive = characterize_platform(SMALL_CFG, ("daxpy", "memcpy"),
                                     n_values=(128, 512, 1024),
                                     m_values=(1, 2, 4, 8))
    adaptive_result = run_workload(small_system(), jobs, adaptive)
    for static in (AlwaysHost(), AlwaysOffload(8)):
        static_result = run_workload(small_system(), jobs, static)
        assert adaptive_result.makespan_cycles \
            <= static_result.makespan_cycles * 1.02  # model error margin


def test_mixed_placement_on_mixed_stream():
    jobs = [JobSpec("daxpy", 16), JobSpec("daxpy", 4096)]
    adaptive = characterize_platform(SMALL_CFG, ("daxpy",),
                                     n_values=(128, 512, 1024),
                                     m_values=(1, 2, 4, 8))
    result = run_workload(small_system(), jobs, adaptive)
    assert result.host_jobs == 1
    assert result.offloaded_jobs == 1
