"""Unit tests for the credit-counter synchronization unit."""

import pytest

from repro.errors import ConfigError, MemoryError_
from repro.host.irq import InterruptController
from repro.sim import Simulator
from repro.soc.syncunit import (
    CLEAR_OFFSET,
    COUNT_OFFSET,
    FIRED_OFFSET,
    INCREMENT_OFFSET,
    IRQ_LINE,
    SyncUnit,
    THRESHOLD_OFFSET,
)


def make_unit(irq_latency=4):
    sim = Simulator()
    irq = InterruptController(sim, wake_latency=0)
    unit = SyncUnit(sim, irq, irq_latency=irq_latency)
    return sim, irq, unit


def test_threshold_write_arms_and_clears_count():
    _sim, _irq, unit = make_unit()
    unit.write_register(INCREMENT_OFFSET, 1)  # stray credit from before
    unit.write_register(THRESHOLD_OFFSET, 4)
    assert unit.read_register(THRESHOLD_OFFSET) == 4
    assert unit.read_register(COUNT_OFFSET) == 0
    assert unit.armed


def test_increment_counts_regardless_of_data():
    _sim, _irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 10)
    unit.write_register(INCREMENT_OFFSET, 0)
    unit.write_register(INCREMENT_OFFSET, 999)
    assert unit.read_register(COUNT_OFFSET) == 2


def test_interrupt_fires_at_threshold_after_latency():
    sim, irq, unit = make_unit(irq_latency=4)
    unit.write_register(THRESHOLD_OFFSET, 2)
    sim.schedule(10, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.schedule(30, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.run()
    assert irq.is_pending(IRQ_LINE)
    assert unit.read_register(FIRED_OFFSET) == 1
    # The raise was scheduled 4 cycles after the threshold increment.
    assert sim.now == 34


def test_interrupt_fires_once_per_arming():
    sim, irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)  # extra credit: no second IRQ
    sim.run()
    assert unit.interrupts_fired == 1
    assert irq.raise_count(IRQ_LINE) == 1


def test_rearming_allows_next_job():
    sim, irq, unit = make_unit()
    for _job in range(3):
        unit.write_register(THRESHOLD_OFFSET, 2)
        unit.write_register(INCREMENT_OFFSET, 1)
        unit.write_register(INCREMENT_OFFSET, 1)
        sim.run()
        irq.clear(IRQ_LINE)
    assert unit.interrupts_fired == 3


def test_clear_disarms():
    sim, irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 1)
    unit.write_register(CLEAR_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)
    sim.run()
    assert unit.interrupts_fired == 0
    assert not irq.is_pending(IRQ_LINE)


def test_invalid_threshold_rejected():
    _sim, _irq, unit = make_unit()
    with pytest.raises(ConfigError):
        unit.write_register(THRESHOLD_OFFSET, 0)


def test_unknown_register_rejected():
    _sim, _irq, unit = make_unit()
    with pytest.raises(MemoryError_):
        unit.read_register(0x100)
    with pytest.raises(MemoryError_):
        unit.write_register(COUNT_OFFSET, 5)  # count is read-only


def test_negative_irq_latency_rejected():
    sim = Simulator()
    irq = InterruptController(sim)
    with pytest.raises(ConfigError):
        SyncUnit(sim, irq, irq_latency=-1)
