"""Unit tests for the credit-counter synchronization unit."""

import pytest

from repro.errors import ConfigError, MemoryError_, ProtocolError
from repro.host.irq import InterruptController
from repro.sim import Simulator
from repro.soc.syncunit import (
    CLEAR_OFFSET,
    COUNT_OFFSET,
    FIRED_OFFSET,
    INCREMENT_OFFSET,
    IRQ_LINE,
    SyncUnit,
    THRESHOLD_OFFSET,
)


def make_unit(irq_latency=4):
    sim = Simulator()
    irq = InterruptController(sim, wake_latency=0)
    unit = SyncUnit(sim, irq, irq_latency=irq_latency)
    return sim, irq, unit


def test_threshold_write_arms_and_clears_count():
    _sim, _irq, unit = make_unit()
    unit.write_register(INCREMENT_OFFSET, 1)  # stray credit from before
    unit.write_register(THRESHOLD_OFFSET, 4)
    assert unit.read_register(THRESHOLD_OFFSET) == 4
    assert unit.read_register(COUNT_OFFSET) == 0
    assert unit.armed


def test_increment_counts_regardless_of_data():
    _sim, _irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 10)
    unit.write_register(INCREMENT_OFFSET, 0)
    unit.write_register(INCREMENT_OFFSET, 999)
    assert unit.read_register(COUNT_OFFSET) == 2


def test_interrupt_fires_at_threshold_after_latency():
    sim, irq, unit = make_unit(irq_latency=4)
    unit.write_register(THRESHOLD_OFFSET, 2)
    sim.schedule(10, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.schedule(30, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.run()
    assert irq.is_pending(IRQ_LINE)
    assert unit.read_register(FIRED_OFFSET) == 1
    # The raise was scheduled 4 cycles after the threshold increment.
    assert sim.now == 34


def test_interrupt_fires_once_per_arming():
    sim, irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)  # extra credit: no second IRQ
    sim.run()
    assert unit.interrupts_fired == 1
    assert irq.raise_count(IRQ_LINE) == 1


def test_rearming_allows_next_job():
    sim, irq, unit = make_unit()
    for _job in range(3):
        unit.write_register(THRESHOLD_OFFSET, 2)
        unit.write_register(INCREMENT_OFFSET, 1)
        unit.write_register(INCREMENT_OFFSET, 1)
        sim.run()
        irq.clear(IRQ_LINE)
    assert unit.interrupts_fired == 3


def test_clear_disarms():
    sim, irq, unit = make_unit()
    unit.write_register(THRESHOLD_OFFSET, 1)
    unit.write_register(CLEAR_OFFSET, 1)
    unit.write_register(INCREMENT_OFFSET, 1)
    sim.run()
    assert unit.interrupts_fired == 0
    assert not irq.is_pending(IRQ_LINE)


def test_invalid_threshold_rejected():
    # A bad runtime MMIO write is a protocol bug, not a config error.
    _sim, _irq, unit = make_unit()
    with pytest.raises(ProtocolError):
        unit.write_register(THRESHOLD_OFFSET, 0)


def test_unknown_register_rejected():
    _sim, _irq, unit = make_unit()
    with pytest.raises(MemoryError_):
        unit.read_register(0x100)
    with pytest.raises(MemoryError_):
        unit.write_register(0x100, 5)
    with pytest.raises(ProtocolError):
        unit.write_register(COUNT_OFFSET, 5)  # count is read-only


def test_negative_irq_latency_rejected():
    sim = Simulator()
    irq = InterruptController(sim)
    with pytest.raises(ConfigError):
        SyncUnit(sim, irq, irq_latency=-1)


# ----------------------------------------------------------------------
# CLEAR/reset vs in-flight interrupt delivery (the cancellation race)
# ----------------------------------------------------------------------
def test_clear_cancels_interrupt_already_in_flight():
    # The threshold-matching increment schedules the IRQ raise 4 cycles
    # out; a CLEAR landing inside that window must cancel it, or a
    # cleared unit spuriously interrupts the host on behalf of an
    # abandoned job.
    sim, irq, unit = make_unit(irq_latency=4)
    unit.write_register(THRESHOLD_OFFSET, 1)
    sim.schedule(10, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.schedule(12, lambda arg: unit.write_register(CLEAR_OFFSET, 1))
    sim.run()
    assert sim.now >= 14   # the delivery callback did run (and dropped)
    assert unit.interrupts_fired == 0
    assert not irq.is_pending(IRQ_LINE)
    assert irq.raise_count(IRQ_LINE) == 0


def test_reset_cancels_interrupt_already_in_flight():
    sim, irq, unit = make_unit(irq_latency=4)
    unit.write_register(THRESHOLD_OFFSET, 1)
    sim.schedule(10, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.schedule(12, lambda arg: unit.reset())
    sim.run()
    assert unit.interrupts_fired == 0
    assert not irq.is_pending(IRQ_LINE)


def test_rearm_does_not_cancel_previous_jobs_interrupt():
    # Re-arming for the next job is not a CLEAR: an interrupt already
    # earned by the previous arming must still be delivered.
    sim, irq, unit = make_unit(irq_latency=4)
    unit.write_register(THRESHOLD_OFFSET, 1)
    sim.schedule(10, lambda arg: unit.write_register(INCREMENT_OFFSET, 1))
    sim.schedule(12, lambda arg: unit.write_register(THRESHOLD_OFFSET, 1))
    sim.run()
    assert unit.interrupts_fired == 1
    assert irq.is_pending(IRQ_LINE)


# ----------------------------------------------------------------------
# Stale credits (increments while disarmed)
# ----------------------------------------------------------------------
def test_disarmed_increment_is_a_stale_credit_not_a_count():
    _sim, _irq, unit = make_unit()
    unit.write_register(INCREMENT_OFFSET, 1)
    assert unit.read_register(COUNT_OFFSET) == 0
    assert unit.stale_credits == 1
    # A stale credit must not pre-pay the next job's threshold.
    unit.write_register(THRESHOLD_OFFSET, 2)
    unit.write_register(INCREMENT_OFFSET, 1)
    assert unit.read_register(COUNT_OFFSET) == 1
    assert not unit.interrupts_fired


def test_stale_credit_reported_to_auditor(monkeypatch):
    from repro import flags
    from repro.sim import AccessAuditor
    monkeypatch.delenv(flags.STRICT_ENV, raising=False)
    sim = Simulator()
    irq = InterruptController(sim, wake_latency=0)
    auditor = AccessAuditor(sim)
    unit = SyncUnit(sim, irq, auditor=auditor)
    unit.write_register(INCREMENT_OFFSET, 1)
    assert auditor.count("stale-credit") == 1
    assert unit.stale_credits == 1


def test_stale_credit_raises_in_strict_mode(monkeypatch):
    from repro import flags
    from repro.sim import AccessAuditor
    monkeypatch.setenv(flags.STRICT_ENV, "1")
    sim = Simulator()
    irq = InterruptController(sim, wake_latency=0)
    unit = SyncUnit(sim, irq, auditor=AccessAuditor(sim))
    with pytest.raises(ProtocolError, match="stale-credit"):
        unit.write_register(INCREMENT_OFFSET, 1)


def test_reset_clears_stale_credits():
    _sim, _irq, unit = make_unit()
    unit.write_register(INCREMENT_OFFSET, 1)
    unit.reset()
    assert unit.stale_credits == 0
    assert not unit.armed
