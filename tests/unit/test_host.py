"""Unit tests for the host core, LSU, and interrupt controller."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.host import HostCore, InterruptController, LoadStoreUnit
from repro.mem import AddressMap, MainMemory, Region
from repro.noc import Interconnect, NocParams
from repro.sim import Simulator


BASE = 0x8000_0000

PARAMS = NocParams(
    request_latency=6, response_latency=6, store_occupancy=8,
    load_occupancy=2, multicast_enabled=True, multicast_tree_latency=3,
)


def make_host(multicast=True, wake_latency=5):
    sim = Simulator()
    amap = AddressMap()
    mem = MainMemory(size_bytes=4096, base=BASE)
    amap.add(Region("dram", mem.base, mem.size_bytes, mem))
    noc = Interconnect(sim, amap, PARAMS, num_clusters=2)
    irq = InterruptController(sim, wake_latency=wake_latency)
    irq.register_line("job_done")
    host = HostCore(sim, LoadStoreUnit(noc, multicast_capable=multicast), irq)
    return sim, mem, host, irq


def run_program(sim, host, program):
    proc = host.run_program(program)
    sim.run()
    return proc.value


def test_execute_costs_cycles():
    sim, _mem, host, _irq = make_host()

    def program():
        yield from host.execute(13)
        return sim.now

    assert run_program(sim, host, program()) == 13


def test_execute_zero_cycles_is_free():
    sim, _mem, host, _irq = make_host()

    def program():
        yield from host.execute(0)
        return sim.now

    assert run_program(sim, host, program()) == 0


def test_nonposted_store_waits_for_ack():
    sim, mem, host, _irq = make_host()

    def program():
        yield from host.store(BASE, 42)
        return sim.now

    cycles = run_program(sim, host, program())
    assert cycles == (PARAMS.store_occupancy + PARAMS.request_latency
                      + PARAMS.response_latency)
    assert mem.read_word(BASE) == 42


def test_posted_store_returns_after_port_occupancy():
    sim, mem, host, _irq = make_host()

    def program():
        yield from host.store_posted(BASE, 42)
        return sim.now

    cycles = run_program(sim, host, program())
    assert cycles == PARAMS.store_occupancy
    assert mem.read_word(BASE) == 42  # still delivered eventually


def test_posted_store_handle_exposes_delivery():
    sim, _mem, host, _irq = make_host()
    log = {}

    def program():
        handle = yield from host.store_posted(BASE, 1)
        log["posted_at"] = sim.now
        yield handle.delivered
        log["delivered_at"] = sim.now

    run_program(sim, host, program())
    assert log["delivered_at"] - log["posted_at"] == PARAMS.request_latency


def test_load_round_trip_returns_value():
    sim, mem, host, _irq = make_host()
    mem.write_word(BASE + 8, 321)

    def program():
        value = yield from host.load(BASE + 8)
        return (value, sim.now)

    value, cycles = run_program(sim, host, program())
    assert value == 321
    assert cycles == (PARAMS.load_occupancy + PARAMS.request_latency
                      + PARAMS.response_latency)


def test_multicast_store_on_capable_host():
    sim, mem, host, _irq = make_host(multicast=True)

    def program():
        yield from host.multicast_store([BASE, BASE + 8], 7)
        return sim.now

    cycles = run_program(sim, host, program())
    assert cycles == PARAMS.store_occupancy
    sim2 = sim  # delivery already happened during run()
    assert mem.read_word(BASE) == 7
    assert mem.read_word(BASE + 8) == 7


def test_multicast_store_rejected_on_baseline_host():
    sim, _mem, host, _irq = make_host(multicast=False)

    def program():
        yield from host.multicast_store([BASE], 1)

    host.run_program(program())
    with pytest.raises(ConfigError):
        sim.run()


def test_lsu_capability_must_match_noc():
    sim = Simulator()
    amap = AddressMap()
    noc = Interconnect(sim, amap, NocParams(multicast_enabled=False))
    with pytest.raises(ConfigError):
        LoadStoreUnit(noc, multicast_capable=True)


def test_wfi_sleeps_until_interrupt():
    sim, _mem, host, irq = make_host(wake_latency=5)
    sim.schedule(100, lambda arg: irq.raise_line("job_done"))

    def program():
        yield from host.wfi("job_done")
        return sim.now

    assert run_program(sim, host, program()) == 105


def test_wfi_falls_through_when_already_pending():
    sim, _mem, host, irq = make_host(wake_latency=5)
    irq.raise_line("job_done")

    def program():
        yield from host.wfi("job_done")
        return sim.now

    assert run_program(sim, host, program()) == 5


def test_wfi_consumes_pending_bit():
    sim, _mem, host, irq = make_host()
    irq.raise_line("job_done")

    def program():
        yield from host.wfi("job_done")

    run_program(sim, host, program())
    assert not irq.is_pending("job_done")


def test_irq_unknown_line_rejected():
    sim = Simulator()
    irq = InterruptController(sim)
    with pytest.raises(SimulationError):
        irq.raise_line("ghost")
    with pytest.raises(SimulationError):
        irq.is_pending("ghost")


def test_irq_duplicate_line_rejected():
    sim = Simulator()
    irq = InterruptController(sim)
    irq.register_line("x")
    with pytest.raises(SimulationError):
        irq.register_line("x")


def test_irq_negative_wake_latency_rejected():
    with pytest.raises(SimulationError):
        InterruptController(Simulator(), wake_latency=-1)


def test_irq_raise_count_and_clear():
    sim = Simulator()
    irq = InterruptController(sim)
    irq.register_line("x")
    irq.raise_line("x")
    irq.raise_line("x")
    assert irq.raise_count("x") == 2
    irq.clear("x")
    assert not irq.is_pending("x")


def test_lsu_statistics():
    sim, _mem, host, _irq = make_host()

    def program():
        yield from host.store(BASE, 1)
        yield from host.load(BASE)
        yield from host.multicast_store([BASE, BASE + 8], 2)

    run_program(sim, host, program())
    assert host.lsu.stores_issued == 1
    assert host.lsu.loads_issued == 1
    assert host.lsu.multicast_stores_issued == 1
    assert host.retired_operations == 3
